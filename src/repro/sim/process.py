"""Generator-based coroutine processes.

A process is a generator driven by the simulator.  It may yield:

* a number — sleep that many simulated time units,
* an :class:`~repro.sim.events.Event` — suspend until it triggers; the
  ``yield`` expression evaluates to the event's value,
* another :class:`Process` — join it; the ``yield`` evaluates to the
  joined process's return value,
* ``None`` — reschedule immediately (cooperative yield).

Returning from the generator completes the process; ``return value``
becomes its result.  An unhandled exception marks the process failed and
aborts the simulation run (unless another process joined it, in which
case the exception re-raises at the join site).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import ProcessError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Process:
    """A running coroutine inside the simulator.  Create via ``sim.spawn``."""

    __slots__ = (
        "sim",
        "generator",
        "alive",
        "result",
        "exception",
        "failed",
        "failure_observed",
        "_completion",
    )

    def __init__(self, sim: "Simulator", generator: Generator):
        self.sim = sim
        self.generator = generator
        self.alive = True
        self.result: Any = None
        self.exception: BaseException | None = None
        self.failed = False
        self.failure_observed = False
        self._completion = sim.event()

    @property
    def completion(self):
        """Event triggered (with the result) when the process finishes."""
        return self._completion

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield."""
        if not self.alive:
            return
        try:
            command = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised by kernel
            self._fail(exc)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        from repro.sim.events import Event  # local import avoids a cycle

        if command is None:
            self.sim.schedule(0.0, self._step, None)
        elif isinstance(command, (int, float)):
            if command < 0:
                self._fail(ProcessError(f"process slept for negative time {command}"))
                return
            self.sim.schedule(float(command), self._step, None)
        elif isinstance(command, Event):
            command.on_trigger(self._resume_from_event)
        elif isinstance(command, Process):
            command.completion.on_trigger(self._resume_from_event)
        else:
            self._fail(ProcessError(f"process yielded unsupported value {command!r}"))

    def _resume_from_event(self, value: Any) -> None:
        if isinstance(value, _Failure):
            value.observed()
            self._throw(value.exception)
        else:
            self._step(value)

    def _throw(self, exc: BaseException) -> None:
        """Re-raise a joined process's failure inside this process."""
        if not self.alive:
            return
        try:
            command = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001
            self._fail(raised)
            return
        self._dispatch(command)

    def _finish(self, value: Any) -> None:
        self.alive = False
        self.result = value
        self._completion.trigger(value)

    def _fail(self, exc: BaseException) -> None:
        self.alive = False
        self.failed = True
        self.exception = exc
        if not self._completion.triggered:
            self._completion.trigger(_Failure(exc, self))
        # Trigger callbacks (joiners) run first; the kernel re-raises
        # afterwards if no joiner observed the failure.
        self.sim._note_failure(self)


class _Failure:
    """Wrapper distinguishing a failure completion from a value completion."""

    __slots__ = ("exception", "process")

    def __init__(self, exception: BaseException, process: Process):
        self.exception = exception
        self.process = process

    def observed(self) -> None:
        """Mark the failure as handled so the kernel does not re-raise it."""
        self.process.failure_observed = True
