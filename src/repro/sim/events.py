"""One-shot value-carrying events for the simulation kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Event:
    """A one-shot event: triggered at most once, carries a value.

    Callbacks registered before the trigger run (in registration order) on
    a zero-delay timer when the event fires; callbacks registered after
    the trigger run on the next zero-delay timer.  Processes wait on
    events by ``yield``-ing them.
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiter with ``value``."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, callback, value)

    def on_trigger(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; fires immediately if already triggered."""
        if self.triggered:
            self.sim.schedule(0.0, callback, self.value)
        else:
            self._callbacks.append(callback)
