"""The discrete-event simulator core: a deterministic event heap.

Determinism guarantees:

* events at equal times fire in scheduling order (a monotone sequence
  number breaks heap ties), and
* the kernel itself never consults the wall clock or global RNG.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.errors import SchedulingError
from repro.sim.events import Event
from repro.sim.process import Process


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    A *daemon* timer (periodic housekeeping like LIGLO validity checks)
    never keeps an unbounded ``run()`` alive: the run stops when only
    daemon timers remain on the heap.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "daemon", "_sim")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        daemon: bool = False,
        sim: "Simulator | None" = None,
    ):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.daemon = daemon
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled(self)


class Simulator:
    """Deterministic discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.spawn(my_generator_process(sim))
        sim.run()
    """

    #: Never compact heaps smaller than this: the sweep is O(n) and tiny
    #: heaps recycle their cancelled entries through ordinary pops anyway.
    COMPACTION_MIN_HEAP = 64

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        self._sequence = 0
        self._running = False
        # Live (non-cancelled) timer counts, adjusted at schedule, cancel
        # and fire time — cancelled entries still sitting on the heap are
        # already excluded, so ``pending_events`` is O(1) and ``run()``
        # never mistakes a sea of cancelled timers for remaining work.
        self._regular_count = 0  # live non-daemon timers
        self._live_count = 0  # live timers of either kind
        # When set (by the sharded kernel), every schedule draws its heap
        # tie-break from this shared counter instead of the local one, so
        # entries on different shards' heaps stay globally comparable.
        self._seq_source: Callable[[], int] | None = None

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        return self._schedule(delay, callback, args, daemon=False)

    def schedule_daemon(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Timer:
        """Schedule housekeeping that must not keep ``run()`` alive."""
        return self._schedule(delay, callback, args, daemon=True)

    def _schedule(
        self, delay: float, callback: Callable[..., None], args: tuple, daemon: bool
    ) -> Timer:
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay} into the past")
        timer = Timer(self.now + delay, callback, args, daemon=daemon, sim=self)
        heapq.heappush(self._heap, (timer.time, self._next_sequence(), timer))
        self._live_count += 1
        if not daemon:
            self._regular_count += 1
        return timer

    def _next_sequence(self) -> int:
        if self._seq_source is not None:
            return self._seq_source()
        self._sequence += 1
        return self._sequence

    def _note_cancelled(self, timer: Timer) -> None:
        """A live timer was cancelled (its heap entry lingers until popped)."""
        self._live_count -= 1
        if not timer.daemon:
            self._regular_count -= 1
        # Heap compaction: suspicion-driven timer churn (fault plans
        # cancelling whole retry ladders) can leave the heap mostly
        # corpses, and every pop then pays a skip tax.  Once cancelled
        # entries outnumber live ones, sweep them out in one O(n)
        # heapify — (time, seq) keys are unchanged, so ordering is too.
        heap_len = len(self._heap)
        if heap_len >= self.COMPACTION_MIN_HEAP and heap_len > 2 * self._live_count:
            self._heap = [entry for entry in self._heap if not entry[2].cancelled]
            heapq.heapify(self._heap)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time}: simulated time is already "
                f"{self.now} ({self.now - time} late)"
            )
        return self.schedule(time - self.now, callback, *args)

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """Return an event that triggers ``delay`` from now with ``value``."""
        event = self.event()
        self.schedule(delay, event.trigger, value)
        return event

    # -- processes ----------------------------------------------------------

    def spawn(self, generator: Generator) -> Process:
        """Start a coroutine process; it runs from the current event."""
        process = Process(self, generator)
        # Kick off on a zero-delay timer so spawn() is safe mid-callback.
        self.schedule(0.0, process._step, None)
        return process

    def _note_failure(self, process: Process) -> None:
        """Called by a failing process.

        The unobserved-failure check is scheduled *after* the completion
        event's trigger callbacks, so a joiner waiting on the process gets
        to observe (and handle or re-raise) the failure first.  If nobody
        observed it, the run aborts with the original exception — errors
        never pass silently.
        """
        self.schedule(0.0, self._raise_if_unobserved, process)

    def _raise_if_unobserved(self, process: Process) -> None:
        if not process.failure_observed:
            process.failure_observed = True
            raise process.exception

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event.  Returns False if the heap is empty."""
        while self._heap:
            time, _seq, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue  # counts were adjusted when it was cancelled
            self._live_count -= 1
            if not timer.daemon:
                self._regular_count -= 1
            self.now = time
            timer.callback(*timer.args)
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Run until the work drains (or simulated time passes ``until``).

        With no ``until``, the run stops when only daemon (housekeeping)
        timers remain — a network with periodic LIGLO checks still
        quiesces.  With ``until``, everything (daemons included) runs up
        to that simulated time.  Returns the final simulated time.

        A process that dies with an unhandled exception aborts the run by
        re-raising it here, so test failures surface immediately.
        """
        if self._running:
            raise SchedulingError("simulator is already running (no recursion)")
        self._running = True
        try:
            while self._heap:
                if until is None and self._regular_count == 0:
                    break
                time = self._heap[0][0]
                if until is not None and time > until:
                    self.now = until
                    break
                self.step()
        finally:
            self._running = False
        return self.now

    def peek(self) -> float | None:
        """Time of the next pending event, or None when idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    # -- sharded-kernel hooks ------------------------------------------------

    def peek_entry(self) -> tuple[float, int] | None:
        """``(time, sequence)`` of the next pending event, or None.

        With a shared sequence source the pair is globally comparable
        across shards, which is how the sharded executor totally orders
        the heads of several heaps.
        """
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return (self._heap[0][0], self._heap[0][1])

    def inject(
        self, time: float, seq: int, callback: Callable[..., None], *args: Any
    ) -> Timer:
        """Push an event with an explicit heap tie-break sequence.

        The epoch barrier uses this to deliver a cross-shard message
        under its *origin* sequence number — the tie-break the serial
        kernel would have given the same delivery — so equal-time events
        fire in the serial order even though the entry is pushed late.
        ``time`` may precede ``self.now`` only never: arrivals are
        guaranteed ahead of the window by the lookahead bound.
        """
        if time < self.now:
            raise SchedulingError(
                f"cannot inject at t={time}: simulated time is already {self.now}"
            )
        timer = Timer(time, callback, args, daemon=False, sim=self)
        heapq.heappush(self._heap, (time, seq, timer))
        self._live_count += 1
        self._regular_count += 1
        return timer

    def drain_window(
        self, bound: float, inclusive: bool = False
    ) -> tuple[int, float | None]:
        """Fire every pending event with ``time < bound`` (``<=`` when
        ``inclusive``), daemons included, ignoring the regular-count
        stopping rule — global liveness is the sharded executor's call.

        Returns ``(fired, last_fired_time)``.  ``self.now`` is left at
        the last fired event (not advanced to ``bound``); the executor
        aligns clocks once the whole run terminates.
        """
        if self._running:
            raise SchedulingError("simulator is already running (no recursion)")
        self._running = True
        fired = 0
        last: float | None = None
        try:
            while True:
                head = self.peek()
                if head is None:
                    break
                if head > bound or (head == bound and not inclusive):
                    break
                self.step()
                fired += 1
                last = self.now
        finally:
            self._running = False
        return fired, last

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events on the heap (O(1))."""
        return self._live_count
