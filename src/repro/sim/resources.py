"""FIFO service resources: thread pools and transmission queues.

Two flavours:

* :class:`Resource` — generic acquire/release semaphore with FIFO grant
  order, for coroutine processes (``yield resource.acquire()``).
* :class:`FifoServer` — callback-style queueing server: ``submit`` a job
  with a service time; the server runs at most ``capacity`` jobs at once
  and invokes the completion callback when a job's service ends.  This is
  the workhorse for host CPUs (capacity = threads) and NICs (capacity 1).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Resource:
    """Counting semaphore with FIFO grant order."""

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    def acquire(self) -> Event:
        """Return an event that triggers when a slot is granted."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.trigger(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot; the longest-waiting acquirer (if any) gets it."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            event = self._waiters.popleft()
            event.trigger(self)
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        """Number of acquirers still waiting."""
        return len(self._waiters)


class FifoServer:
    """Queueing server: ``capacity`` parallel servers, FIFO admission.

    ``submit(service_time, callback, *args)`` enqueues a job.  When the
    job reaches a free server it is *served* for ``service_time``, after
    which ``callback(*args)`` runs.  Queueing delay is implicit, which is
    exactly how a single-threaded CPU or a NIC uplink behaves.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "server"):
        if capacity < 1:
            raise SimulationError(f"server capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.busy = 0
        self._queue: deque[tuple[float, Callable[..., None], tuple]] = deque()
        #: cumulative simulated time spent serving jobs (for utilization)
        self.busy_time = 0.0
        self.jobs_served = 0

    def submit(self, service_time: float, callback: Callable[..., None], *args: Any) -> None:
        """Enqueue one job."""
        if service_time < 0:
            raise SimulationError(f"negative service time {service_time}")
        if self.busy < self.capacity:
            self._start(service_time, callback, args)
        else:
            self._queue.append((service_time, callback, args))

    def _start(self, service_time: float, callback: Callable[..., None], args: tuple) -> None:
        self.busy += 1
        self.busy_time += service_time
        self.sim.schedule(service_time, self._complete, callback, args)

    def _complete(self, callback: Callable[..., None], args: tuple) -> None:
        self.busy -= 1
        self.jobs_served += 1
        if self._queue:
            next_time, next_callback, next_args = self._queue.popleft()
            self._start(next_time, next_callback, next_args)
        callback(*args)

    @property
    def queue_length(self) -> int:
        """Jobs admitted but not yet being served."""
        return len(self._queue)
