"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: a time-ordered event heap
(:class:`Simulator`), one-shot value-carrying :class:`Event` objects,
generator-based :class:`Process` coroutines, and FIFO
:class:`Resource`/:class:`FifoServer` primitives used to model CPU thread
pools and NIC transmission queues.
"""

from repro.sim.events import Event
from repro.sim.kernel import Simulator, Timer
from repro.sim.process import Process
from repro.sim.resources import FifoServer, Resource
from repro.sim.sharded import ShardedSimulator, ShardMessage, SharedSequence

__all__ = [
    "Simulator",
    "Timer",
    "Event",
    "Process",
    "Resource",
    "FifoServer",
    "ShardedSimulator",
    "ShardMessage",
    "SharedSequence",
]
