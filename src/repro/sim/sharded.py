"""Conservative parallel discrete-event execution over shard heaps.

One logical simulation is split into ``shard_count`` shared-nothing
:class:`~repro.sim.kernel.Simulator` instances.  Cross-shard interactions
travel as :class:`ShardMessage` stamps ``(arrival_time, origin_shard,
origin_seq)`` through per-destination outboxes, and are injected at a
deterministic *epoch barrier*: the executor opens a window ``[t, t + L)``
where ``L`` is the minimum cross-shard link latency (the classic
conservative-PDES lookahead), fires every event inside the window, then
exchanges outboxes.  Any message sent at ``s ∈ [t, t + L)`` arrives at
``s + latency >= t + L`` — never inside the window that produced it —
which is the whole safety argument.

Two executors share that protocol:

* :class:`ShardedSimulator` (this module) runs every shard in one
  process, *lockstep*: within a window it always steps the shard whose
  head event is globally smallest by ``(time, seq)``.  All shards draw
  sequence numbers from one shared counter, so that order — and therefore
  every tie-break, every shared-pool lease, every RNG draw — is exactly
  the serial kernel's.  ``shards=1`` degenerates to the plain kernel.
* :func:`repro.net.sharding.run_distributed` forks one worker process
  per shard and drains whole windows concurrently, trading the lockstep
  guarantee (equal-time cross-shard ties, shared-stream state) for real
  parallelism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SchedulingError, ShardingError
from repro.sim.events import Event
from repro.sim.kernel import Simulator, Timer
from repro.sim.process import Process


class SharedSequence:
    """A monotone counter shared by every shard's heap.

    Because each schedule — local or cross-shard — consumes exactly one
    number at exactly the point the serial kernel would have, the pair
    ``(time, seq)`` totally orders the union of all shard heaps in the
    serial kernel's firing order.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def next(self) -> int:
        self.value += 1
        return self.value


@dataclass(slots=True)
class ShardMessage:
    """A cross-shard event waiting at the epoch barrier.

    ``callback(*args)`` is what fires on the destination shard at
    ``arrival_time``; ``origin_seq`` is the sequence number the serial
    kernel would have given the same delivery, used as the heap
    tie-break on injection.  ``packet`` is set for network deliveries —
    the only form the distributed executor can ship over a pipe (the
    packet's ``raw`` is already a wire-codec frame, so the inter-shard
    transport *is* the wire format).
    """

    arrival_time: float
    origin_shard: int
    origin_seq: int
    callback: Callable[..., None]
    args: tuple
    packet: Any = None

    def stamp(self) -> tuple[float, int, int]:
        return (self.arrival_time, self.origin_shard, self.origin_seq)


@dataclass
class BarrierStats:
    """Counters the executors keep about the barrier protocol."""

    windows: int = 0
    messages: int = 0
    injected: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "windows": self.windows,
            "messages": self.messages,
            "injected": self.injected,
        }


class ShardedSimulator:
    """The single-process (lockstep) sharded executor.

    Presents the :class:`Simulator` driving surface — ``schedule``,
    ``schedule_at``, ``spawn``, ``timeout``, ``event``, ``run``, ``now``,
    ``pending_events`` — over ``shard_count`` shard kernels.  Driver
    callbacks scheduled through this facade land on shard 0, which is why
    the partitioner pins the base node (and the LIGLO servers) there.
    """

    def __init__(self, shard_count: int, lookahead: float | None = None):
        if shard_count < 1:
            raise ShardingError(f"need >= 1 shard, got {shard_count}")
        self.sequence = SharedSequence()
        self.shards = [Simulator() for _ in range(shard_count)]
        for sim in self.shards:
            sim._seq_source = self.sequence.next
        #: outboxes[d] holds messages bound for shard d, pending barrier
        self.outboxes: list[list[ShardMessage]] = [[] for _ in range(shard_count)]
        self.stats = BarrierStats()
        self._running = False
        #: fixed lookahead override (tests / harnesses without a fabric);
        #: otherwise the registered sources (shard fabrics) are consulted
        #: at every window, because fault windows can rescale latencies.
        self._fixed_lookahead = lookahead
        self._lookahead_sources: list[Callable[[], float]] = []

    # -- Simulator facade ----------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def now(self) -> float:
        return self.shards[0].now

    @property
    def pending_events(self) -> int:
        return sum(sim.pending_events for sim in self.shards) + sum(
            len(outbox) for outbox in self.outboxes
        )

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        return self.shards[0].schedule(delay, callback, *args)

    def schedule_daemon(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Timer:
        return self.shards[0].schedule_daemon(delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Timer:
        return self.shards[0].schedule_at(time, callback, *args)

    def event(self) -> Event:
        return self.shards[0].event()

    def timeout(self, delay: float, value: Any = None) -> Event:
        return self.shards[0].timeout(delay, value)

    def spawn(self, generator) -> Process:
        return self.shards[0].spawn(generator)

    def peek(self) -> float | None:
        head = self._head()
        times = [head[0]] if head is not None else []
        times.extend(
            message.arrival_time for outbox in self.outboxes for message in outbox
        )
        return min(times) if times else None

    # -- cross-shard posting -------------------------------------------------

    def register_lookahead(self, source: Callable[[], float]) -> None:
        """Register a per-shard minimum-cross-link-latency provider."""
        self._lookahead_sources.append(source)

    def lookahead(self) -> float:
        """The conservative window width: no cross-shard message can
        arrive sooner than this after its send."""
        if len(self.shards) == 1:
            return math.inf  # nothing can cross; one window spans the run
        if self._fixed_lookahead is not None:
            bound = self._fixed_lookahead
        elif self._lookahead_sources:
            bound = min(source() for source in self._lookahead_sources)
        else:
            raise ShardingError(
                "sharded executor has no lookahead: register a fabric or "
                "pass an explicit bound"
            )
        if not bound > 0.0:
            raise ShardingError(
                f"cross-shard lookahead must be positive, got {bound}: a "
                "zero-latency cross-shard link defeats conservative "
                "synchronization"
            )
        return bound

    def post(
        self,
        origin_shard: int,
        dst_shard: int,
        arrival_time: float,
        callback: Callable[..., None],
        *args: Any,
        packet: Any = None,
    ) -> None:
        """Queue a cross-shard event at the barrier.

        Consumes one sequence number — the same one the serial kernel's
        ``schedule`` would have burned for this delivery — so injection
        reproduces the serial tie-break exactly.

        While a lockstep run is live the message is injected straight
        into the destination heap: no shard clock ever passes the global
        minimum, so any in-flight arrival is still in every shard's
        future even when a fault window shrank the link latency below
        the lookahead that opened the current window.  (The distributed
        executor has no such escape hatch, which is one reason it
        refuses fault-injected workloads.)  Outside a run the message
        waits in the outbox and is flushed when ``run`` starts.
        """
        seq = self.sequence.next()
        self.stats.messages += 1
        if self._running:
            self.shards[dst_shard].inject(arrival_time, seq, callback, *args)
            self.stats.injected += 1
            return
        message = ShardMessage(arrival_time, origin_shard, seq, callback, args, packet)
        self.outboxes[dst_shard].append(message)

    def _flush_outboxes(self) -> None:
        for dst, outbox in enumerate(self.outboxes):
            if not outbox:
                continue
            sim = self.shards[dst]
            for message in outbox:
                sim.inject(
                    message.arrival_time,
                    message.origin_seq,
                    message.callback,
                    *message.args,
                )
                self.stats.injected += 1
            outbox.clear()

    # -- execution -----------------------------------------------------------

    def _head(self) -> tuple[float, int, int] | None:
        """Globally smallest pending ``(time, seq, shard)`` across heaps."""
        best: tuple[float, int] | None = None
        best_shard = -1
        for index, sim in enumerate(self.shards):
            entry = sim.peek_entry()
            if entry is not None and (best is None or entry < best):
                best = entry
                best_shard = index
        if best is None:
            return None
        return (best[0], best[1], best_shard)

    def _regular_total(self) -> int:
        """Live regular work: heap timers plus barrier-pending messages
        (the serial kernel counts an in-flight delivery as a regular
        timer from the moment it is scheduled)."""
        return sum(sim._regular_count for sim in self.shards) + sum(
            len(outbox) for outbox in self.outboxes
        )

    def run(self, until: float | None = None) -> float:
        """Serial-kernel ``run`` semantics over all shards.

        No ``until``: stops when only daemon timers (and no barrier
        messages) remain, clocks left at the last fired event.  With
        ``until``: fires everything with ``time <= until`` and aligns all
        clocks to ``until`` (when later work remains pending).
        """
        if self._running:
            raise SchedulingError("simulator is already running (no recursion)")
        self._running = True
        last_fired = self.shards[0].now
        try:
            while True:
                self._flush_outboxes()
                head = self._head()
                if head is None:
                    break
                if until is None and self._regular_total() == 0:
                    break
                if until is not None and head[0] > until:
                    last_fired = until  # serial: clock jumps to the horizon
                    break
                window_end = head[0] + self.lookahead()
                self.stats.windows += 1
                while True:
                    head = self._head()
                    if head is None or head[0] >= window_end:
                        break
                    if until is not None and head[0] > until:
                        break
                    if until is None and self._regular_total() == 0:
                        break
                    # Broadcast the global clock BEFORE firing: the callback
                    # may reach straight into another shard's objects (fault
                    # injection, driver code), and any relative `schedule`
                    # there must be anchored at *global* now — one clock,
                    # exactly the serial kernel.  Safe because the head is
                    # the global minimum: no pending event is earlier.
                    fired_at = head[0]
                    for other in self.shards:
                        if other.now < fired_at:
                            other.now = fired_at
                    self.shards[head[2]].step()
                    if fired_at > last_fired:
                        last_fired = fired_at
        finally:
            self._running = False
        for sim in self.shards:
            sim.now = last_fired
        return last_fired
