"""Scheduling a :class:`~repro.faults.plan.FaultPlan` onto the sim kernel.

The injector translates plan events into kernel timers against a built
:class:`~repro.core.builder.BestPeerNetwork` (or any object exposing
``sim``, ``network``, and named nodes/LIGLO servers).  Because the
kernel is deterministic and every stochastic choice in the plan came
from the seed, a faulted run replays bit-identically: same series, same
bytes, same hops.

Crash semantics follow the paper: a crashed *peer* releases its IP
lease (dynamic IPs) and rejoins later under a fresh one, announcing to
its LIGLO and refreshing peers; a crashed *LIGLO* keeps its address —
its address is its identity — and simply goes dark for the outage.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.errors import FaultPlanError
from repro.faults.plan import (
    KIND_LIGLO_DOWN,
    KIND_LIGLO_UP,
    KIND_LINK_WINDOW,
    KIND_NODE_CRASH,
    KIND_NODE_RESTART,
    KIND_PARTITION,
    KIND_PARTITION_HEAL,
    FaultEvent,
    FaultPlan,
)
from repro.util.tracing import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.builder import BestPeerNetwork


class SimFaultInjector:
    """Applies a fault plan to one built deployment."""

    def __init__(
        self,
        deployment: "BestPeerNetwork",
        plan: FaultPlan,
        tracer: Tracer | None = None,
    ):
        self.deployment = deployment
        self.plan = plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._nodes = {node.name: node for node in deployment.nodes}
        self._liglo_hosts = {
            server.host.name: server.host for server in deployment.liglo_servers
        }
        self._armed = False
        #: events applied so far, by kind
        self.applied: dict[str, int] = {}
        #: events that found nothing to do (e.g. crash of an offline node)
        self.skipped: dict[str, int] = {}

    # -- arming ------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every plan event relative to the current sim time."""
        if self._armed:
            raise FaultPlanError("fault plan is already armed")
        self._validate()
        self._armed = True
        sim = self.deployment.sim
        for event in self.plan:
            sim.schedule(event.time, self._fire, event)

    def _validate(self) -> None:
        for event in self.plan:
            if event.kind in (KIND_NODE_CRASH, KIND_NODE_RESTART):
                if event.target not in self._nodes:
                    raise FaultPlanError(f"plan names unknown node {event.target!r}")
            elif event.kind in (KIND_LIGLO_DOWN, KIND_LIGLO_UP):
                if event.target not in self._liglo_hosts:
                    raise FaultPlanError(
                        f"plan names unknown LIGLO host {event.target!r}"
                    )

    # -- event dispatch ----------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        handler = {
            KIND_NODE_CRASH: self._crash_node,
            KIND_NODE_RESTART: self._restart_node,
            KIND_LIGLO_DOWN: self._liglo_down,
            KIND_LIGLO_UP: self._liglo_up,
            KIND_PARTITION: self._partition,
            KIND_PARTITION_HEAL: self._heal,
            KIND_LINK_WINDOW: self._open_link_window,
        }[event.kind]
        if handler(event):
            self.applied[event.kind] = self.applied.get(event.kind, 0) + 1
        else:
            self.skipped[event.kind] = self.skipped.get(event.kind, 0) + 1
        self.tracer.record(
            self.deployment.sim.now,
            "fault",
            event.kind,
            target=event.target,
        )

    def _crash_node(self, event: FaultEvent) -> bool:
        node = self._nodes[event.target]
        if not node.host.online:
            return False  # already down (overlapping sessions in the plan)
        node.leave()
        return True

    def _restart_node(self, event: FaultEvent) -> bool:
        node = self._nodes[event.target]
        if node.host.online:
            return False
        # rejoin() honours the node's retry policy; a LIGLO that is down
        # for the whole retry budget surfaces through on_failed, which
        # here is absorbed: the node stays up with stale peers and the
        # next reconfiguration (or rejoin) repairs it.
        node.rejoin(on_failed=lambda exc: self.tracer.record(
            self.deployment.sim.now,
            "fault",
            "rejoin-degraded",
            target=event.target,
            error=str(exc),
        ))
        return True

    def _liglo_down(self, event: FaultEvent) -> bool:
        host = self._liglo_hosts[event.target]
        if not host.online:
            return False
        host.suspend()
        return True

    def _liglo_up(self, event: FaultEvent) -> bool:
        host = self._liglo_hosts[event.target]
        if not host.suspended:
            return False
        host.resume()
        return True

    def _partition(self, event: FaultEvent) -> bool:
        groups = event.get("groups")
        if not groups:
            raise FaultPlanError("partition event carries no groups")
        known = [
            tuple(name for name in group if name in self.deployment.network.hosts)
            for group in groups
        ]
        self.deployment.network.partition([g for g in known if g])
        return True

    def _heal(self, _event: FaultEvent) -> bool:
        self.deployment.network.heal_partition()
        return True

    def _open_link_window(self, event: FaultEvent) -> bool:
        network = self.deployment.network
        duration = event.get("duration")
        overrides = {}
        if event.get("loss_probability") is not None:
            overrides["loss_probability"] = event.get("loss_probability")
        if event.get("latency") is not None:
            overrides["latency"] = event.get("latency")
        src_name = event.get("src")
        if src_name is None:
            saved = network.default_link
            network.default_link = replace(saved, **overrides)
            self.deployment.sim.schedule(
                duration, self._close_default_window, saved
            )
            return True
        src = network.hosts.get(src_name)
        dst = network.hosts.get(event.get("dst"))
        if src is None or dst is None or src.address is None or dst.address is None:
            return False  # endpoint gone; the window is moot
        pair = (src.address, dst.address)
        previous = network._links.get(pair)
        base = previous if previous is not None else network.default_link
        network.set_link(*pair, replace(base, **overrides))
        self.deployment.sim.schedule(
            duration, self._close_pair_window, pair, previous
        )
        return True

    def _close_default_window(self, saved) -> None:
        self.deployment.network.default_link = saved

    def _close_pair_window(self, pair, previous) -> None:
        network = self.deployment.network
        if previous is None:
            network.clear_link(*pair)
        else:
            network.set_link(*pair, previous)
