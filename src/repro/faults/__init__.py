"""Seeded, deterministic fault injection (`repro.faults`).

The paper's premise is that peers are *transient* — they join, crash,
and come back under fresh IPs, and LIGLO plus self-reconfiguration keep
the network useful anyway.  This package makes that regime testable:

* :class:`FaultPlan` — a declarative, seed-derived timeline of node
  crashes/restarts, LIGLO outages, link partitions, and per-link
  loss/delay windows;
* :class:`SimFaultInjector` — schedules a plan onto the discrete-event
  kernel of a built deployment (bit-identical replay from the seed);
* :class:`LiveFaultShim` — a thread-timer shim applying the same plan
  shapes to the live (socket) runtime.

See ``docs/ROBUSTNESS.md`` for the fault model and determinism
guarantees.
"""

from repro.faults.injector import SimFaultInjector
from repro.faults.live import LiveFaultShim
from repro.faults.plan import (
    KIND_LIGLO_DOWN,
    KIND_LIGLO_UP,
    KIND_LINK_WINDOW,
    KIND_NODE_CRASH,
    KIND_NODE_RESTART,
    KIND_PARTITION,
    KIND_PARTITION_HEAL,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "SimFaultInjector",
    "LiveFaultShim",
    "KIND_NODE_CRASH",
    "KIND_NODE_RESTART",
    "KIND_LIGLO_DOWN",
    "KIND_LIGLO_UP",
    "KIND_PARTITION",
    "KIND_PARTITION_HEAL",
    "KIND_LINK_WINDOW",
]
