"""Applying fault plans to the live (socket/thread) runtime.

The live engine has no event kernel to replay against, so the shim
trades bit-identical timing for *plan* determinism: the same seed still
yields the same event list with the same relative times; only the
wall-clock interleaving varies.  Events fire on ``threading.Timer``
threads against caller-supplied handlers, which keeps the shim free of
any dependency on live classes — tests and demos register exactly the
handlers they need.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import FaultPlanError
from repro.faults.plan import FaultEvent, FaultPlan

Handler = Callable[[FaultEvent], Any]


class LiveFaultShim:
    """Thread-timer scheduler for a :class:`FaultPlan`.

    Usage::

        shim = LiveFaultShim(plan)
        shim.on("node-crash", lambda e: peers[e.target].close())
        shim.on("node-restart", lambda e: restart(e.target))
        shim.start()
        ...
        shim.stop()   # cancels anything still pending

    ``time_scale`` compresses the plan's simulated seconds into wall
    time (0.1 → a 30 s plan runs in 3 s), so fault batteries stay fast.
    """

    def __init__(self, plan: FaultPlan, time_scale: float = 1.0):
        if time_scale <= 0:
            raise FaultPlanError(f"time_scale must be > 0, got {time_scale}")
        self.plan = plan
        self.time_scale = time_scale
        self._handlers: dict[str, Handler] = {}
        self._timers: list[threading.Timer] = []
        self._lock = threading.Lock()
        self._started = False
        #: events fired so far, by kind (guarded by the lock)
        self.fired: dict[str, int] = {}
        #: (event, exception) pairs from handlers that raised
        self.errors: list[tuple[FaultEvent, BaseException]] = []
        #: set once every plan event has fired
        self.drained = threading.Event()
        self._remaining = len(plan)
        if self._remaining == 0:
            self.drained.set()

    def on(self, kind: str, handler: Handler) -> "LiveFaultShim":
        """Register ``handler`` for events of ``kind`` (chainable)."""
        self._handlers[kind] = handler
        return self

    def start(self) -> None:
        """Arm a timer per plan event.  Unhandled kinds fire as no-ops."""
        with self._lock:
            if self._started:
                raise FaultPlanError("live fault shim already started")
            self._started = True
            for event in self.plan:
                timer = threading.Timer(
                    event.time * self.time_scale, self._fire, args=(event,)
                )
                timer.daemon = True
                self._timers.append(timer)
                timer.start()

    def _fire(self, event: FaultEvent) -> None:
        handler = self._handlers.get(event.kind)
        try:
            if handler is not None:
                handler(event)
        except BaseException as exc:  # noqa: BLE001 - surfaced via .errors
            with self._lock:
                self.errors.append((event, exc))
        finally:
            with self._lock:
                self.fired[event.kind] = self.fired.get(event.kind, 0) + 1
                self._remaining -= 1
                if self._remaining == 0:
                    self.drained.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every event has fired (True) or ``timeout`` lapses."""
        return self.drained.wait(timeout)

    def stop(self) -> None:
        """Cancel pending timers; already-running handlers finish."""
        with self._lock:
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
