"""Fault plans: declarative, seed-derived failure timelines.

A :class:`FaultPlan` is nothing but data — a sorted tuple of
:class:`FaultEvent` rows — so it pickles across the parallel experiment
runner's worker processes and two plans generated from the same seed
compare equal.  All randomness flows through
:func:`repro.util.randomness.derive_rng`, which is the whole
determinism story: same seed, same timeline, same simulation.

Event kinds
===========

``node-crash`` / ``node-restart``
    Target is a node name.  Crash = ``leave()`` (the address lease is
    released; in-flight packets to it drop).  Restart = ``rejoin()``
    under a fresh IP, honouring the node's retry policy.
``liglo-down`` / ``liglo-up``
    Target is a LIGLO host name.  The host suspends *keeping its
    address* (a LIGLO's address is its identity), so members can reach
    it again after ``liglo-up`` without re-registering.
``partition`` / ``partition-heal``
    ``groups`` (in params) is a tuple of host-name tuples; packets
    crossing groups drop with reason ``partition``.
``link-window``
    A bounded loss/delay window on one directed host pair (params
    ``src``/``dst``) or the whole fabric (no ``src``): for ``duration``
    seconds the link's ``loss_probability``/``latency`` are overridden,
    then restored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import FaultPlanError
from repro.util.randomness import derive_rng

KIND_NODE_CRASH = "node-crash"
KIND_NODE_RESTART = "node-restart"
KIND_LIGLO_DOWN = "liglo-down"
KIND_LIGLO_UP = "liglo-up"
KIND_PARTITION = "partition"
KIND_PARTITION_HEAL = "partition-heal"
KIND_LINK_WINDOW = "link-window"

KNOWN_KINDS = frozenset(
    {
        KIND_NODE_CRASH,
        KIND_NODE_RESTART,
        KIND_LIGLO_DOWN,
        KIND_LIGLO_UP,
        KIND_PARTITION,
        KIND_PARTITION_HEAL,
        KIND_LINK_WINDOW,
    }
)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault, `time` seconds after the injector arms."""

    time: float
    kind: str
    target: str = ""
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultPlanError(f"fault at negative time {self.time}")
        if self.kind not in KNOWN_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: {sorted(KNOWN_KINDS)}"
            )

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered fault timeline."""

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0
    notes: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.time, e.kind, e.target)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last scheduled fault (0.0 for an empty plan)."""
        return self.events[-1].time if self.events else 0.0

    def kinds(self) -> dict[str, int]:
        """Event count per kind (for quick assertions and reports)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def extended(self, extra: Iterable[FaultEvent]) -> "FaultPlan":
        """A new plan with ``extra`` events merged in (re-sorted)."""
        return FaultPlan(self.events + tuple(extra), seed=self.seed, notes=self.notes)

    # -- builders ----------------------------------------------------------

    @staticmethod
    def node_session(name: str, crash_at: float, downtime: float) -> tuple[FaultEvent, FaultEvent]:
        """A crash/restart pair for one node."""
        if downtime <= 0:
            raise FaultPlanError(f"downtime must be > 0, got {downtime}")
        return (
            FaultEvent(crash_at, KIND_NODE_CRASH, name),
            FaultEvent(crash_at + downtime, KIND_NODE_RESTART, name),
        )

    @staticmethod
    def liglo_outage(name: str, down_at: float, duration: float) -> tuple[FaultEvent, FaultEvent]:
        """A bounded outage of one fixed-IP LIGLO host."""
        if duration <= 0:
            raise FaultPlanError(f"duration must be > 0, got {duration}")
        return (
            FaultEvent(down_at, KIND_LIGLO_DOWN, name),
            FaultEvent(down_at + duration, KIND_LIGLO_UP, name),
        )

    @staticmethod
    def partition_window(
        groups: Sequence[Sequence[str]], start: float, duration: float
    ) -> tuple[FaultEvent, FaultEvent]:
        """A bounded partition splitting hosts into ``groups``."""
        if duration <= 0:
            raise FaultPlanError(f"duration must be > 0, got {duration}")
        frozen = tuple(tuple(group) for group in groups)
        return (
            FaultEvent(start, KIND_PARTITION, params=(("groups", frozen),)),
            FaultEvent(start + duration, KIND_PARTITION_HEAL),
        )

    @staticmethod
    def link_window(
        start: float,
        duration: float,
        src: str | None = None,
        dst: str | None = None,
        loss_probability: float | None = None,
        latency: float | None = None,
    ) -> FaultEvent:
        """A loss/delay window on one directed pair (or the default link)."""
        if duration <= 0:
            raise FaultPlanError(f"duration must be > 0, got {duration}")
        if loss_probability is None and latency is None:
            raise FaultPlanError("link window needs loss_probability and/or latency")
        if (src is None) != (dst is None):
            raise FaultPlanError("link window needs both src and dst, or neither")
        params: list[tuple[str, Any]] = [("duration", duration)]
        if src is not None:
            params += [("src", src), ("dst", dst)]
        if loss_probability is not None:
            if not 0.0 <= loss_probability <= 1.0:
                raise FaultPlanError(
                    f"loss_probability must be in [0, 1], got {loss_probability}"
                )
            params.append(("loss_probability", loss_probability))
        if latency is not None:
            if latency < 0:
                raise FaultPlanError(f"latency must be >= 0, got {latency}")
            params.append(("latency", latency))
        return FaultEvent(start, KIND_LINK_WINDOW, params=tuple(params))

    # -- generators --------------------------------------------------------

    @classmethod
    def churn(
        cls,
        node_names: Sequence[str],
        rate: float,
        horizon: float,
        seed: int = 0,
        min_downtime: float = 0.5,
        max_downtime: float = 5.0,
        start: float = 0.0,
    ) -> "FaultPlan":
        """Session churn: a ``rate`` fraction of nodes crash and restart.

        Mirrors the session-turnover measurements of the Gnutella
        lineage (Saroiu et al.): each selected node's session ends at a
        uniform time inside ``[start, start + horizon)`` and it returns
        after a uniform downtime.  Everything is drawn from
        ``derive_rng(seed, "churn", ...)`` so the timeline replays
        bit-identically from the seed.
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultPlanError(f"churn rate must be in [0, 1], got {rate}")
        if horizon <= 0:
            raise FaultPlanError(f"horizon must be > 0, got {horizon}")
        if not 0 < min_downtime <= max_downtime:
            raise FaultPlanError(
                f"need 0 < min_downtime <= max_downtime, got "
                f"{min_downtime}/{max_downtime}"
            )
        rng = derive_rng(seed, "churn", rate, horizon, len(node_names))
        count = round(rate * len(node_names))
        victims = sorted(rng.sample(list(node_names), count))
        events: list[FaultEvent] = []
        for name in victims:
            crash_at = start + rng.uniform(0.0, horizon)
            downtime = rng.uniform(min_downtime, max_downtime)
            events.extend(cls.node_session(name, crash_at, downtime))
        return cls(
            tuple(events),
            seed=seed,
            notes=f"churn rate={rate} over {horizon}s: {count} sessions end",
        )
