"""Identifier types used across the BestPeer network.

The paper identifies a node by its *BestPeer ID* (BPID), a pair
``(LIGLOID, NodeID)`` where ``LIGLOID`` names the LIGLO server that issued
the id and ``NodeID`` is unique within that server.  Because ids are
compared, hashed, and shipped inside agents constantly, they are small
frozen dataclasses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class BPID:
    """BestPeer global identity: unique per node, stable across IP changes.

    ``liglo_id`` is the identity (in the paper: the fixed IP address) of
    the issuing LIGLO server and ``node_id`` is the serial number that
    server assigned.  Two nodes registered at *different* LIGLO servers may
    share a ``node_id``; the pair is what is globally unique.
    """

    liglo_id: str
    node_id: int

    def __str__(self) -> str:
        return f"{self.liglo_id}/{self.node_id}"


@dataclass(frozen=True, slots=True)
class AgentId:
    """Globally unique identity of one logical agent dispatch.

    All clones of a flooded agent share the same ``AgentId``; hosts use it
    to drop duplicate arrivals ("drop any incoming agent that already has a
    copy on the site").
    """

    origin: BPID
    serial: int

    def __str__(self) -> str:
        return f"agent:{self.origin}#{self.serial}"


@dataclass(frozen=True, slots=True)
class QueryId:
    """Identity of one query issued by a node (one per user request)."""

    origin: BPID
    serial: int

    def __str__(self) -> str:
        return f"query:{self.origin}#{self.serial}"


@dataclass
class SerialCounter:
    """Monotonic counter used to mint serial numbers deterministically."""

    _counter: itertools.count = field(default_factory=itertools.count)

    def next(self) -> int:
        """Return the next serial number (0, 1, 2, ...)."""
        return next(self._counter)
