"""Simulated network substrate.

Models a LAN of :class:`Host`s with leased (possibly changing) IP
addresses, per-host CPU thread pools, sender-side NIC transmission
queues, and latency/bandwidth links.  Payloads are really serialized and
gzip-compressed so transmission cost reflects true message sizes.
"""

from repro.net.address import AddressPool, IPAddress
from repro.net.link import LinkModel
from repro.net.message import Packet
from repro.net.network import Host, Network
from repro.net.sharding import (
    DistributedRunReport,
    ShardCluster,
    ShardedNetworkView,
    ShardNetwork,
    run_distributed,
)

__all__ = [
    "IPAddress",
    "AddressPool",
    "LinkModel",
    "Packet",
    "Host",
    "Network",
    "ShardCluster",
    "ShardNetwork",
    "ShardedNetworkView",
    "DistributedRunReport",
    "run_distributed",
]
