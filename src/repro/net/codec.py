"""Compact control-message wire codec.

The flood's wall-clock is dominated by pickle+gzip on *small* control
messages (LIGLO registration and validity checks, Gnutella descriptors,
fetch/data tokens, state-only agent-envelope hops).  This module gives
each such message a versioned, struct-packed binary frame::

    u8 magic (0xB7) | u8 version | u16 type id | field-by-field body

Messages opt in by registering a :class:`MessageSpec` (an ordered list
of ``(field name, field codec)`` pairs) in the module that defines them;
anything unregistered — or carrying values that do not fit the fixed
layout — falls back to the pickle+gzip path transparently.

**The codec changes wall-clock only, never simulated bytes-semantics.**
The transmission-cost model charges the real encoded size of the compact
frame for every registered message *in both codec modes*: with
``REPRO_WIRE_CODEC=pickle`` the payload bytes that cross the (simulated
or live) wire are pickle, but the charged size is still the canonical
frame size, so seeded runs produce bit-identical series, byte counts and
hop counts whichever codec is selected.  The conformance battery in
``tests/net`` pins this invariant with golden frame vectors, property
tests, and a malformed-frame fault injector.

Decoding is strict: bad magic, unsupported version, unknown type id,
truncation, value overruns, oversized frames and trailing garbage all
raise a typed :class:`~repro.errors.WireDecodeError` — never an
arbitrary exception — so delivery loops can drop-and-count corrupt
frames without crashing.
"""

from __future__ import annotations

import os
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import WireCodecError, WireDecodeError, WireEncodeError

#: Bump on ANY layout change (field added/removed/reordered/retyped, type
#: id reassigned).  The decoder rejects every other version, and the
#: golden vectors in ``tests/net/vectors/`` must be regenerated.
WIRE_FORMAT_VERSION = 1

#: First byte of every compact frame.  Chosen to collide with neither a
#: gzip stream (0x1f) nor a protocol-4 pickle (0x80) so transports can
#: tell the formats apart from the leading byte alone.
FRAME_MAGIC = 0xB7

_HEADER = struct.Struct(">BBH")
#: magic + version + type id
HEADER_SIZE = _HEADER.size

#: Control frames are small by definition; anything bigger is corrupt.
MAX_FRAME_BYTES = 1 << 20

#: Selects the wire codec: ``compact`` (default) or ``pickle``.  Checked
#: on every encode (one ``os.environ`` lookup) — like
#: ``REPRO_NO_AGENT_CACHE`` — so ``--jobs`` worker processes inherit the
#: setting through their environment with no extra plumbing.
WIRE_CODEC_ENV_VAR = "REPRO_WIRE_CODEC"
CODEC_COMPACT = "compact"
CODEC_PICKLE = "pickle"
#: Module-level default, monkeypatchable by tests.
DEFAULT_WIRE_CODEC = CODEC_COMPACT

#: Pickle protocol for the embedded-blob field codec (matches
#: :data:`repro.util.serialization.PICKLE_PROTOCOL` for size stability).
_BLOB_PICKLE_PROTOCOL = 4


def wire_codec_mode() -> str:
    """The active codec name, honouring :data:`WIRE_CODEC_ENV_VAR` per call."""
    value = os.environ.get(WIRE_CODEC_ENV_VAR)
    if not value:
        return DEFAULT_WIRE_CODEC
    normalized = value.strip().lower()
    if normalized not in (CODEC_COMPACT, CODEC_PICKLE):
        raise WireCodecError(
            f"{WIRE_CODEC_ENV_VAR}={value!r} is not one of "
            f"{CODEC_COMPACT!r}, {CODEC_PICKLE!r}"
        )
    return normalized


def _take(data: bytes, offset: int, count: int) -> tuple[bytes, int]:
    """Bounds-checked slice: the next ``count`` body bytes."""
    end = offset + count
    if end > len(data):
        raise WireDecodeError(
            f"frame truncated: need {count} bytes at offset {offset}, "
            f"have {len(data) - offset}"
        )
    return data[offset:end], end


# ---------------------------------------------------------------------------
# Field codecs
# ---------------------------------------------------------------------------


class FieldCodec:
    """Packs/unpacks one message field.  Encode-side value problems raise
    :class:`WireEncodeError` (the caller falls back to pickle); decode-side
    problems raise :class:`WireDecodeError` (the frame is corrupt)."""

    name = "field"

    def pack(self, value: Any, out: bytearray) -> None:
        raise NotImplementedError

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        raise NotImplementedError


class _Scalar(FieldCodec):
    """A fixed-width integer/float via one :mod:`struct` format."""

    def __init__(self, fmt: str, name: str):
        self._struct = struct.Struct(fmt)
        self.name = name

    def pack(self, value: Any, out: bytearray) -> None:
        try:
            out += self._struct.pack(value)
        except (struct.error, TypeError) as exc:
            raise WireEncodeError(f"{value!r} does not fit {self.name}: {exc}") from exc

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        chunk, offset = _take(data, offset, self._struct.size)
        return self._struct.unpack(chunk)[0], offset


class _Bool(FieldCodec):
    """One byte, strictly 0 or 1 (anything else marks a corrupt frame)."""

    name = "bool"

    def pack(self, value: Any, out: bytearray) -> None:
        if not isinstance(value, bool):
            raise WireEncodeError(f"{value!r} is not a bool")
        out.append(1 if value else 0)

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        chunk, offset = _take(data, offset, 1)
        if chunk[0] not in (0, 1):
            raise WireDecodeError(f"bool byte must be 0 or 1, got {chunk[0]}")
        return chunk[0] == 1, offset


class _Str(FieldCodec):
    """UTF-8 string, u16 length prefix (control strings are short)."""

    name = "str"

    def pack(self, value: Any, out: bytearray) -> None:
        if not isinstance(value, str):
            raise WireEncodeError(f"{value!r} is not a str")
        encoded = value.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise WireEncodeError(f"string of {len(encoded)} bytes exceeds u16 length")
        out += U16._struct.pack(len(encoded))  # type: ignore[attr-defined]
        out += encoded

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        length, offset = U16.unpack(data, offset)
        chunk, offset = _take(data, offset, length)
        try:
            return chunk.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise WireDecodeError(f"invalid utf-8 in string field: {exc}") from exc


class _Bytes(FieldCodec):
    """Raw byte string, u32 length prefix."""

    name = "bytes"

    def pack(self, value: Any, out: bytearray) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise WireEncodeError(f"{value!r} is not bytes")
        out += U32._struct.pack(len(value))  # type: ignore[attr-defined]
        out += value

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        length, offset = U32.unpack(data, offset)
        chunk, offset = _take(data, offset, length)
        return bytes(chunk), offset


class _PickleBlob(FieldCodec):
    """An embedded pickle for the rare variable-shape field (agent state).

    The blob skips gzip — that is the point of the compact path — but
    keeps pickle's generality for plain-data dicts.  Corrupt blobs raise
    :class:`WireDecodeError` like every other field.
    """

    name = "pickle-blob"

    def pack(self, value: Any, out: bytearray) -> None:
        try:
            blob = pickle.dumps(value, protocol=_BLOB_PICKLE_PROTOCOL)
        except Exception as exc:
            raise WireEncodeError(f"unpicklable blob field: {exc}") from exc
        out += U32._struct.pack(len(blob))  # type: ignore[attr-defined]
        out += blob

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        length, offset = U32.unpack(data, offset)
        chunk, offset = _take(data, offset, length)
        try:
            return pickle.loads(chunk), offset
        except Exception as exc:
            raise WireDecodeError(f"corrupt pickle blob: {exc}") from exc


class _Optional(FieldCodec):
    """Presence byte (strictly 0/1) followed by the inner field."""

    def __init__(self, inner: FieldCodec):
        self.inner = inner
        self.name = f"opt({inner.name})"

    def pack(self, value: Any, out: bytearray) -> None:
        if value is None:
            out.append(0)
            return
        out.append(1)
        self.inner.pack(value, out)

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        chunk, offset = _take(data, offset, 1)
        if chunk[0] == 0:
            return None, offset
        if chunk[0] != 1:
            raise WireDecodeError(f"presence byte must be 0 or 1, got {chunk[0]}")
        return self.inner.unpack(data, offset)


class _Seq(FieldCodec):
    """Homogeneous tuple, u16 count prefix."""

    def __init__(self, inner: FieldCodec):
        self.inner = inner
        self.name = f"seq({inner.name})"

    def pack(self, value: Any, out: bytearray) -> None:
        try:
            count = len(value)
        except TypeError as exc:
            raise WireEncodeError(f"{value!r} is not a sequence") from exc
        if count > 0xFFFF:
            raise WireEncodeError(f"sequence of {count} items exceeds u16 count")
        out += U16._struct.pack(count)  # type: ignore[attr-defined]
        for item in value:
            self.inner.pack(item, out)

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        count, offset = U16.unpack(data, offset)
        items = []
        for _ in range(count):
            item, offset = self.inner.unpack(data, offset)
            items.append(item)
        return tuple(items), offset


class _Pair(FieldCodec):
    """A 2-tuple of two inner fields (peer lists, keyword histograms)."""

    def __init__(self, first: FieldCodec, second: FieldCodec):
        self.first = first
        self.second = second
        self.name = f"pair({first.name},{second.name})"

    def pack(self, value: Any, out: bytearray) -> None:
        try:
            left, right = value
        except (TypeError, ValueError) as exc:
            raise WireEncodeError(f"{value!r} is not a 2-tuple") from exc
        self.first.pack(left, out)
        self.second.pack(right, out)

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        left, offset = self.first.unpack(data, offset)
        right, offset = self.second.unpack(data, offset)
        return (left, right), offset


class _Composite(FieldCodec):
    """A value object flattened to inner fields (BPID, ids, addresses)."""

    def __init__(
        self,
        name: str,
        attrs: tuple[tuple[str, FieldCodec], ...],
        build: Callable[..., Any],
    ):
        self.name = name
        self.attrs = attrs
        self.build = build

    def pack(self, value: Any, out: bytearray) -> None:
        for attr, codec in self.attrs:
            try:
                inner = getattr(value, attr)
            except AttributeError as exc:
                raise WireEncodeError(f"{value!r} has no attribute {attr!r}") from exc
            codec.pack(inner, out)

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        values = []
        for _attr, codec in self.attrs:
            value, offset = codec.unpack(data, offset)
            values.append(value)
        try:
            return self.build(*values), offset
        except Exception as exc:
            raise WireDecodeError(f"cannot build {self.name}: {exc}") from exc


#: shared primitive instances (field codecs are stateless)
U8 = _Scalar(">B", "u8")
U16 = _Scalar(">H", "u16")
U32 = _Scalar(">I", "u32")
I32 = _Scalar(">i", "i32")
I64 = _Scalar(">q", "i64")
F64 = _Scalar(">d", "f64")
BOOL = _Bool()
STR = _Str()
BYTES = _Bytes()
PICKLE_BLOB = _PickleBlob()


def opt(inner: FieldCodec) -> FieldCodec:
    """Optional field: presence byte + inner."""
    return _Optional(inner)


def seq(inner: FieldCodec) -> FieldCodec:
    """Homogeneous tuple field: u16 count + items."""
    return _Seq(inner)


def pair(first: FieldCodec, second: FieldCodec) -> FieldCodec:
    """2-tuple field."""
    return _Pair(first, second)


def composite(
    name: str,
    attrs: tuple[tuple[str, FieldCodec], ...],
    build: Callable[..., Any],
) -> FieldCodec:
    """A value-object field flattened to inner fields (answer items, ids)."""
    return _Composite(name, attrs, build)


def _make_id_codecs():
    # Deferred so this module needs nothing beyond repro.errors at import
    # time (repro.ids / repro.net.address import cleanly, but keeping the
    # import inside the factory makes the no-cycle property obvious).
    from repro.ids import BPID, AgentId, QueryId
    from repro.net.address import IPAddress
    from repro.storm.heapfile import RecordId

    bpid = _Composite("bpid", (("liglo_id", STR), ("node_id", I64)), BPID)
    ipaddr = _Composite("ipaddr", (("value", STR),), IPAddress)
    agent_id = _Composite("agent-id", (("origin", bpid), ("serial", I64)), AgentId)
    query_id = _Composite("query-id", (("origin", bpid), ("serial", I64)), QueryId)
    record_id = _Composite("record-id", (("page_id", U32), ("slot", U16)), RecordId)
    return bpid, ipaddr, agent_id, query_id, record_id


BPID_CODEC, IPADDR_CODEC, AGENT_ID_CODEC, QUERY_ID_CODEC, RECORD_ID_CODEC = (
    _make_id_codecs()
)
#: Gnutella descriptor GUID: ``(origin name, serial)``.
GUID_CODEC = pair(STR, I64)


# ---------------------------------------------------------------------------
# Message registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MessageSpec:
    """One registered control-message type: identity plus field layout."""

    type_id: int
    cls: type
    fields: tuple[tuple[str, FieldCodec], ...]
    #: canonical instance used for golden vectors and conformance tests
    sample: Callable[[], Any]
    #: value-level predicate: False routes this instance to the pickle
    #: fallback (e.g. agent envelopes that carry class source)
    compactable: Callable[[Any], bool] | None = None

    @property
    def name(self) -> str:
        return f"{self.cls.__module__}.{self.cls.__qualname__}"

    def accepts(self, message: Any) -> bool:
        """True when this instance can take the compact path."""
        if type(message) is not self.cls:
            return False
        if self.compactable is not None and not self.compactable(message):
            return False
        return True


_BY_ID: dict[int, MessageSpec] = {}
_BY_CLASS: dict[type, MessageSpec] = {}


def register(
    cls: type,
    type_id: int,
    fields: tuple[tuple[str, FieldCodec], ...],
    *,
    sample: Callable[[], Any],
    compactable: Callable[[Any], bool] | None = None,
) -> MessageSpec:
    """Register a control-message type; called at import time by the
    module that defines the message (keeping this module dependency-free).
    """
    if not 0 < type_id <= 0xFFFF:
        raise WireCodecError(f"type id {type_id:#x} outside u16 range")
    existing = _BY_ID.get(type_id)
    if existing is not None and existing.cls is not cls:
        raise WireCodecError(
            f"type id {type_id:#x} already registered for {existing.name}"
        )
    spec = MessageSpec(type_id, cls, tuple(fields), sample, compactable)
    _BY_ID[type_id] = spec
    _BY_CLASS[cls] = spec
    return spec


def lookup(cls: type) -> MessageSpec | None:
    """The spec registered for ``cls`` (None when unregistered)."""
    return _BY_CLASS.get(cls)


def spec_for_id(type_id: int) -> MessageSpec | None:
    """The spec registered under ``type_id`` (None when unknown)."""
    return _BY_ID.get(type_id)


def registered_specs() -> tuple[MessageSpec, ...]:
    """Every registered spec, ordered by type id (stable for vectors)."""
    return tuple(spec for _, spec in sorted(_BY_ID.items()))


def load_registrations() -> None:
    """Import every module that registers control messages.

    Senders register as a side effect of constructing their messages;
    decode-only processes (live endpoints, conformance tests) call this
    to make all type ids resolvable up front.
    """
    import repro.agents.envelope  # noqa: F401
    import repro.baselines.client_server  # noqa: F401
    import repro.baselines.gnutella  # noqa: F401
    import repro.core.discovery  # noqa: F401
    import repro.core.sharing  # noqa: F401
    import repro.core.shipping  # noqa: F401
    import repro.liglo.messages  # noqa: F401
    import repro.replication.messages  # noqa: F401


# ---------------------------------------------------------------------------
# Frame encode / decode
# ---------------------------------------------------------------------------


def encode_message(message: Any) -> bytes:
    """The compact frame for ``message``; :class:`WireEncodeError` when it
    is unregistered, not compactable, or a value overflows its field."""
    spec = _BY_CLASS.get(type(message))
    if spec is None:
        raise WireEncodeError(f"{type(message).__qualname__} is not registered")
    if spec.compactable is not None and not spec.compactable(message):
        raise WireEncodeError(f"{spec.name} instance is not compactable")
    out = bytearray(_HEADER.pack(FRAME_MAGIC, WIRE_FORMAT_VERSION, spec.type_id))
    for name, codec in spec.fields:
        codec.pack(getattr(message, name), out)
    if len(out) > MAX_FRAME_BYTES:
        raise WireEncodeError(f"frame of {len(out)} bytes exceeds {MAX_FRAME_BYTES}")
    return bytes(out)


def try_encode(message: Any) -> bytes | None:
    """The compact frame, or None when the message must take the pickle
    fallback.  The decision depends only on the message value — never on
    the codec mode — so both modes agree on which path a message takes
    (and therefore on its charged wire size)."""
    if type(message) not in _BY_CLASS:
        return None
    try:
        return encode_message(message)
    except WireEncodeError:
        return None


def decode_message(frame: bytes) -> Any:
    """Inverse of :func:`encode_message`; :class:`WireDecodeError` on any
    malformation (bad magic/version/type id, truncation, value overrun,
    oversize, trailing garbage)."""
    if len(frame) > MAX_FRAME_BYTES:
        raise WireDecodeError(
            f"oversized frame: {len(frame)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    if len(frame) < HEADER_SIZE:
        raise WireDecodeError(f"frame of {len(frame)} bytes is shorter than a header")
    magic, version, type_id = _HEADER.unpack_from(frame, 0)
    if magic != FRAME_MAGIC:
        raise WireDecodeError(f"bad magic byte {magic:#04x} (want {FRAME_MAGIC:#04x})")
    if version != WIRE_FORMAT_VERSION:
        raise WireDecodeError(
            f"unsupported wire format version {version} "
            f"(this build speaks {WIRE_FORMAT_VERSION})"
        )
    spec = _BY_ID.get(type_id)
    if spec is None:
        raise WireDecodeError(f"unknown message type id {type_id:#06x}")
    values: dict[str, Any] = {}
    offset = HEADER_SIZE
    for name, codec in spec.fields:
        values[name], offset = codec.unpack(frame, offset)
    if offset != len(frame):
        raise WireDecodeError(
            f"{len(frame) - offset} trailing bytes after a complete {spec.name}"
        )
    try:
        return spec.cls(**values)
    except Exception as exc:
        raise WireDecodeError(f"cannot construct {spec.name}: {exc}") from exc
