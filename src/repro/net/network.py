"""Hosts and the network fabric.

A :class:`Host` owns a CPU (a :class:`~repro.sim.resources.FifoServer`
with one slot per "thread") and an uplink NIC (single-slot FIFO).
Sending a payload really serializes and compresses it, charges the NIC
for the wire size, delays by the link latency, and finally dispatches the
decoded payload to the receiver's protocol handler *on the receiver's
CPU* — so a single-threaded host genuinely serializes its message
handling, which is what separates SCS from MCS in the paper.

Delivery is datagram-like: packets to offline hosts or stale addresses
are silently dropped (and traced).  Protocols needing reliability build
timeouts on top, exactly as the paper's LIGLO validity checks do.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import (
    HostOffline,
    NetworkError,
    UnknownProtocolError,
    WireDecodeError,
)
from repro.net.address import AddressPool, IPAddress
from repro.net.link import LinkModel
from repro.net.message import PACKET_OVERHEAD_BYTES, Packet
from repro.sim import FifoServer, Simulator
from repro.util.compression import DEFAULT_CODEC, Codec
from repro.util.randomness import derive_rng
from repro.util.serialization import WireEncoder
from repro.util.tracing import NULL_TRACER, Tracer

#: CPU time to accept a packet and dispatch it to a handler (seconds).
#: Calibrated to the paper's era: receiving, parsing, and routing one
#: message through a Java network stack on a 200 MHz Pentium II costs
#: milliseconds.  Reverse-path protocols (CS, Gnutella) pay this twice
#: per hop - once for the query, once for every relayed result.
DEFAULT_DISPATCH_TIME = 0.003


class Host:
    """One machine on the simulated network.  Create via ``Network.create_host``."""

    def __init__(
        self,
        network: "Network",
        name: str,
        cpu_threads: int = 8,
        dispatch_time: float = DEFAULT_DISPATCH_TIME,
    ):
        self.network = network
        self.sim: Simulator = network.sim
        self.name = name
        self.cpu = FifoServer(self.sim, capacity=cpu_threads, name=f"{name}.cpu")
        self.nic = FifoServer(self.sim, capacity=1, name=f"{name}.nic")
        self.dispatch_time = dispatch_time
        self.address: IPAddress | None = None
        self.online = False
        #: down-but-holding-its-lease (a crashed fixed-IP server, not churn)
        self.suspended = False
        self._handlers: dict[str, Callable[[Packet], None]] = {}
        #: counters
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self.sends_while_down = 0

    # -- lifecycle ----------------------------------------------------------

    def connect(self) -> IPAddress:
        """Come online, leasing a (usually fresh) IP address."""
        if self.online:
            raise NetworkError(f"host {self.name} is already online")
        self.address = self.network._lease_address(self)
        self.online = True
        self.network.tracer.record(
            self.sim.now, "net", "connect", host=self.name, address=str(self.address)
        )
        return self.address

    def disconnect(self) -> None:
        """Go offline, releasing the leased address; in-flight packets drop."""
        if not self.online:
            raise NetworkError(f"host {self.name} is already offline")
        assert self.address is not None
        self.network.tracer.record(
            self.sim.now, "net", "disconnect", host=self.name, address=str(self.address)
        )
        self.network._release_address(self)
        self.address = None
        self.online = False

    def suspend(self) -> None:
        """Go dark *without* releasing the address lease.

        Models the crash of a fixed-IP machine (a LIGLO server, whose
        address *is* its identity): packets to it drop while it is down,
        and :meth:`resume` brings it back at the same address.  Churning
        peers use :meth:`disconnect`/:meth:`connect` instead, which is
        the paper's dynamic-IP story.
        """
        if not self.online:
            raise NetworkError(f"host {self.name} is not online; cannot suspend")
        self.online = False
        self.suspended = True
        self.network.tracer.record(
            self.sim.now, "net", "suspend", host=self.name, address=str(self.address)
        )

    def resume(self) -> None:
        """Come back up at the address held through :meth:`suspend`."""
        if not self.suspended:
            raise NetworkError(f"host {self.name} is not suspended")
        self.online = True
        self.suspended = False
        self.network.tracer.record(
            self.sim.now, "net", "resume", host=self.name, address=str(self.address)
        )

    # -- protocol binding ---------------------------------------------------

    def bind(self, protocol: str, handler: Callable[[Packet], None]) -> None:
        """Register ``handler(packet)`` for one protocol name."""
        if protocol in self._handlers:
            raise NetworkError(f"host {self.name} already binds protocol {protocol!r}")
        self._handlers[protocol] = handler

    def unbind(self, protocol: str) -> None:
        """Remove a protocol handler."""
        self._handlers.pop(protocol, None)

    # -- sending ------------------------------------------------------------

    def send(self, dst: IPAddress, protocol: str, payload: Any) -> int:
        """Transmit ``payload`` to ``dst``; returns the wire size in bytes.

        Serialization + compression happen immediately (their byte count
        prices the transmission), but through the network's
        :class:`~repro.util.serialization.WireEncoder`, so a fan-out loop
        sending one payload object to many peers encodes it once.  The
        packet then queues on this host's NIC and arrives ``latency``
        after its transmission completes.  The receiver deserializes its
        own copy of the send-time bytes on delivery — never a shared
        object — and dropped packets skip that work entirely.
        """
        if self.suspended:
            # A crashed machine's still-scheduled housekeeping (e.g. a
            # LIGLO validity sweep) fires into the void: swallow the
            # send rather than abort the run — the machine is down.
            self.sends_while_down += 1
            self.network.tracer.bump("net", "send-while-down")
            return 0
        if not self.online or self.address is None:
            raise HostOffline(f"host {self.name} cannot send while offline")
        encoded = self.network.encoder.encode(payload)
        wire_size = encoded.compressed_size + PACKET_OVERHEAD_BYTES
        packet = Packet(
            src=self.address,
            dst=dst,
            protocol=protocol,
            wire_size=wire_size,
            sent_at=self.sim.now,
            raw=encoded.raw,
            codec=encoded.codec,
        )
        self.messages_sent += 1
        self.bytes_sent += wire_size
        link = self.network.link_for(self.address, dst)
        self.nic.submit(
            link.transmission_time(wire_size), self.network._propagate, packet, link
        )
        return wire_size

    # -- receiving ----------------------------------------------------------

    def _receive(self, packet: Packet) -> None:
        """Called by the network when a packet reaches this (online) host."""
        handler = self._handlers.get(packet.protocol)
        if handler is None:
            raise UnknownProtocolError(
                f"host {self.name} has no handler for {packet.protocol!r}"
            )
        self.messages_received += 1
        self.cpu.submit(self.dispatch_time, self._dispatch, handler, packet)

    def _dispatch(self, handler: Callable[[Packet], None], packet: Packet) -> None:
        self.network.tracer.record(
            self.sim.now,
            "net",
            "deliver",
            host=self.name,
            protocol=packet.protocol,
            src=str(packet.src),
            size=packet.wire_size,
        )
        try:
            handler(packet)
        except WireDecodeError as exc:
            # A malformed frame must never take down the delivery loop:
            # the packet is dropped and the drop is counted.
            self.network._drop_undecodable(packet, exc)

    def __repr__(self) -> str:
        state = str(self.address) if self.online else "offline"
        return f"Host({self.name}, {state})"


class Network:
    """The fabric connecting hosts: address leases, links, delivery."""

    def __init__(
        self,
        sim: Simulator,
        pool: AddressPool | None = None,
        default_link: LinkModel | None = None,
        codec: Codec | None = None,
        tracer: Tracer | None = None,
        loss_seed: int = 0,
        encoder: WireEncoder | None = None,
    ):
        self.sim = sim
        self.pool = pool if pool is not None else AddressPool()
        self.default_link = default_link if default_link is not None else LinkModel()
        self.codec = codec if codec is not None else DEFAULT_CODEC
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: shared wire-path fast path: encode each payload object once
        #: per fan-out instead of once per recipient
        self.encoder = (
            encoder
            if encoder is not None
            else WireEncoder(self.codec, tracer=self.tracer)
        )
        self._loss_rng = derive_rng(loss_seed, "packet-loss")
        self.hosts: dict[str, Host] = {}
        self._routes: dict[IPAddress, Host] = {}
        self._links: dict[tuple[IPAddress, IPAddress], LinkModel] = {}
        #: host name -> partition group id; empty means no partition
        self._partition: dict[str, int] = {}
        #: counters
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.bytes_carried = 0
        self.decode_errors = 0
        #: per-cause drop counts (loss, partition, no-route, ...)
        self.drops_by_reason: dict[str, int] = {}

    @property
    def encode_hits(self) -> int:
        """Wire-encoder cache hits (payloads not re-serialized)."""
        return self.encoder.hits

    @property
    def encode_misses(self) -> int:
        """Wire-encoder cache misses (payloads fully encoded)."""
        return self.encoder.misses

    # -- host management ----------------------------------------------------

    def create_host(
        self,
        name: str,
        cpu_threads: int = 8,
        dispatch_time: float = DEFAULT_DISPATCH_TIME,
        connect: bool = True,
    ) -> Host:
        """Create (and by default connect) a host."""
        if name in self.hosts:
            raise NetworkError(f"duplicate host name {name!r}")
        host = Host(self, name, cpu_threads=cpu_threads, dispatch_time=dispatch_time)
        self.hosts[name] = host
        if connect:
            host.connect()
        return host

    def host_at(self, address: IPAddress) -> Host | None:
        """Host currently holding ``address``, or None."""
        return self._routes.get(address)

    def _lease_address(self, host: Host) -> IPAddress:
        address = self.pool.lease()
        self._routes[address] = host
        return address

    def _release_address(self, host: Host) -> None:
        assert host.address is not None
        del self._routes[host.address]
        self.pool.release(host.address)

    # -- links ---------------------------------------------------------------

    def link_for(self, src: IPAddress, dst: IPAddress) -> LinkModel:
        """Link model for a directed pair (falls back to the default)."""
        return self._links.get((src, dst), self.default_link)

    def set_link(self, src: IPAddress, dst: IPAddress, link: LinkModel) -> None:
        """Override the link model for one directed address pair."""
        self._links[(src, dst)] = link

    def clear_link(self, src: IPAddress, dst: IPAddress) -> None:
        """Drop a per-pair link override (back to the default link)."""
        self._links.pop((src, dst), None)

    # -- partitions -----------------------------------------------------------

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Split the fabric: packets between different groups drop.

        ``groups`` are host *names* (stable across address churn).  A
        host named in no group keeps full connectivity — a partition of
        the overlay need not mention the infrastructure.  Replaces any
        partition already in force.
        """
        assignment: dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                if name in assignment:
                    raise NetworkError(f"host {name!r} named in two partition groups")
                if name not in self.hosts:
                    raise NetworkError(f"unknown host {name!r} in partition")
                assignment[name] = index
        self._partition = assignment
        self.tracer.record(
            self.sim.now, "net", "partition", groups=len(groups), hosts=len(assignment)
        )

    def heal_partition(self) -> None:
        """Restore full connectivity (idempotent)."""
        if self._partition:
            self.tracer.record(self.sim.now, "net", "heal-partition")
        self._partition = {}

    @property
    def partitioned(self) -> bool:
        return bool(self._partition)

    def _crosses_partition(self, src: IPAddress, dst: IPAddress) -> bool:
        if not self._partition:
            return False
        src_host = self._routes.get(src)
        dst_host = self._routes.get(dst)
        if src_host is None or dst_host is None:
            return False  # no-route handles it
        src_group = self._partition.get(src_host.name)
        dst_group = self._partition.get(dst_host.name)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    # -- delivery ------------------------------------------------------------

    def _propagate(self, packet: Packet, link: LinkModel) -> None:
        """NIC transmission finished; deliver after propagation latency."""
        self.tracer.record(
            self.sim.now,
            "net",
            "send",
            src=str(packet.src),
            dst=str(packet.dst),
            protocol=packet.protocol,
            size=packet.wire_size,
        )
        if link.loss_probability > 0.0 and (
            self._loss_rng.random() < link.loss_probability
        ):
            self._drop(packet, reason="loss")
            return
        if self._crosses_partition(packet.src, packet.dst):
            self._drop(packet, reason="partition")
            return
        self._schedule_delivery(packet, link)

    def _schedule_delivery(self, packet: Packet, link: LinkModel) -> None:
        """Queue the post-propagation delivery (the sharded fabric's
        override routes cross-shard packets through the epoch barrier)."""
        self.sim.schedule(link.latency, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        host = self._routes.get(packet.dst)
        if host is None:
            self._drop(packet, reason="no-route")
            return
        if host.address != packet.dst:
            self._drop(packet, reason="stale-address")
            return
        if not host.online:
            self._drop(packet, reason="host-down" if host.suspended else "stale-address")
            return
        self.packets_delivered += 1
        self.bytes_carried += packet.wire_size
        host._receive(packet)

    def _drop(self, packet: Packet, reason: str) -> None:
        self.packets_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        if reason == "loss":
            self.tracer.bump("net", "loss")
        self.tracer.record(
            self.sim.now,
            "net",
            "drop",
            dst=str(packet.dst),
            protocol=packet.protocol,
            reason=reason,
        )

    def _drop_undecodable(self, packet: Packet, error: WireDecodeError) -> None:
        """A delivered packet's frame failed to decode: drop and count."""
        self.decode_errors += 1
        self.drops_by_reason["decode-error"] = (
            self.drops_by_reason.get("decode-error", 0) + 1
        )
        self.tracer.bump("net", "decode-error")
        self.tracer.record(
            self.sim.now,
            "net",
            "drop",
            dst=str(packet.dst),
            protocol=packet.protocol,
            reason="decode-error",
            error=str(error),
        )
