"""Wire-level packet representation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import WireDecodeError
from repro.net.address import IPAddress
from repro.net.codec import CODEC_COMPACT, CODEC_PICKLE, decode_message
from repro.net.datacodec import CODEC_STREAM
from repro.net.datacodec import decode_message as decode_data_message
from repro.util.serialization import deserialize

#: Fixed per-packet protocol overhead (headers, framing), in bytes.
PACKET_OVERHEAD_BYTES = 80

#: Sentinel marking a packet whose payload has not been decoded yet.
_UNDECODED = object()


@dataclass(frozen=True, slots=True)
class Packet:
    """One message travelling the simulated network.

    ``raw`` is the transport payload captured at send time — a compact
    control frame, a streaming data frame, or an (uncompressed) pickle,
    as tagged by ``codec``;
    ``wire_size`` is the number of bytes the encoded form (plus framing
    overhead) occupied on the wire — the quantity the transmission-cost
    model charges for.  Decoding never decompresses: compression only
    ever informs ``wire_size``, so lazy decode is ordering-independent
    of the compression bypass.

    ``payload`` decodes ``raw`` lazily, on first access.  Receivers
    therefore always get an independent copy snapshotted at send time
    (hosts are separate machines; aliasing would be a lie), while packets
    that are dropped en route — loss, no route, stale address — never pay
    the decode at all.  A malformed compact frame raises a typed
    :class:`~repro.errors.WireDecodeError` from that first access;
    :meth:`Host._dispatch` turns it into a counted drop.
    """

    src: IPAddress
    dst: IPAddress
    protocol: str
    wire_size: int
    sent_at: float
    raw: bytes
    codec: str = CODEC_PICKLE
    _decoded: Any = field(default=_UNDECODED, repr=False, compare=False)

    @property
    def payload(self) -> Any:
        """The decoded application object (decoded on first access)."""
        if self._decoded is _UNDECODED:
            if self.codec == CODEC_COMPACT:
                decoded = decode_message(self.raw)
            elif self.codec == CODEC_STREAM:
                decoded = decode_data_message(self.raw)
            elif self.codec == CODEC_PICKLE:
                try:
                    decoded = deserialize(self.raw)
                except WireDecodeError:
                    raise
                except Exception as exc:
                    # A corrupt pickle raises whatever pickle feels like;
                    # the delivery loop only counts *typed* decode errors.
                    raise WireDecodeError(f"corrupt pickle payload: {exc}") from exc
            else:
                raise WireDecodeError(f"unknown packet codec tag {self.codec!r}")
            object.__setattr__(self, "_decoded", decoded)
        return self._decoded

    def __getstate__(self) -> tuple[None, dict[str, Any]]:
        # The decode cache never travels: the sentinel would unpickle as
        # a fresh object() and masquerade as a decoded payload.  A packet
        # crossing a process boundary (shard barrier, parallel runner)
        # carries only the wire frame and re-decodes on first access.
        return (None, {
            "src": self.src,
            "dst": self.dst,
            "protocol": self.protocol,
            "wire_size": self.wire_size,
            "sent_at": self.sent_at,
            "raw": self.raw,
            "codec": self.codec,
            "_decoded": _UNDECODED,
        })

    def __setstate__(self, state: tuple[None, dict[str, Any]]) -> None:
        for name, value in state[1].items():
            if name == "_decoded":
                value = _UNDECODED
            object.__setattr__(self, name, value)

    def __str__(self) -> str:
        return (
            f"Packet({self.src} -> {self.dst} proto={self.protocol} "
            f"{self.wire_size}B sent@{self.sent_at:.6f})"
        )
