"""Wire-level packet representation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.address import IPAddress

#: Fixed per-packet protocol overhead (headers, framing), in bytes.
PACKET_OVERHEAD_BYTES = 80


@dataclass(frozen=True, slots=True)
class Packet:
    """One message travelling the simulated network.

    ``payload`` is the already-decoded application object handed to the
    receiving protocol handler; ``wire_size`` is the number of bytes the
    serialized, compressed form (plus framing overhead) occupied on the
    wire — the quantity the transmission-cost model charges for.
    """

    src: IPAddress
    dst: IPAddress
    protocol: str
    payload: Any
    wire_size: int
    sent_at: float

    def __str__(self) -> str:
        return (
            f"Packet({self.src} -> {self.dst} proto={self.protocol} "
            f"{self.wire_size}B sent@{self.sent_at:.6f})"
        )
