"""Wire-level packet representation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.address import IPAddress
from repro.util.serialization import deserialize

#: Fixed per-packet protocol overhead (headers, framing), in bytes.
PACKET_OVERHEAD_BYTES = 80

#: Sentinel marking a packet whose payload has not been decoded yet.
_UNDECODED = object()


@dataclass(frozen=True, slots=True)
class Packet:
    """One message travelling the simulated network.

    ``raw`` is the serialized (uncompressed) payload captured at send
    time; ``wire_size`` is the number of bytes the compressed form (plus
    framing overhead) occupied on the wire — the quantity the
    transmission-cost model charges for.

    ``payload`` deserializes ``raw`` lazily, on first access.  Receivers
    therefore always get an independent copy snapshotted at send time
    (hosts are separate machines; aliasing would be a lie), while packets
    that are dropped en route — loss, no route, stale address — never pay
    the deserialization at all.
    """

    src: IPAddress
    dst: IPAddress
    protocol: str
    wire_size: int
    sent_at: float
    raw: bytes
    _decoded: Any = field(default=_UNDECODED, repr=False, compare=False)

    @property
    def payload(self) -> Any:
        """The decoded application object (deserialized on first access)."""
        if self._decoded is _UNDECODED:
            object.__setattr__(self, "_decoded", deserialize(self.raw))
        return self._decoded

    def __str__(self) -> str:
        return (
            f"Packet({self.src} -> {self.dst} proto={self.protocol} "
            f"{self.wire_size}B sent@{self.sent_at:.6f})"
        )
