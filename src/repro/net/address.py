"""IP addresses and the DHCP-like address pool.

The paper's motivating problem is nodes "connected intermittently with
temporary network addresses": every time a node dials in it may receive a
different IP.  :class:`AddressPool` reproduces that: each
:meth:`AddressPool.lease` hands out the next free address in a rotating
scan, so a host that disconnects and reconnects almost always comes back
under a *different* address — which is exactly the situation LIGLO exists
to solve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressPoolExhausted


@dataclass(frozen=True, slots=True)
class IPAddress:
    """A simulated IPv4 address (value object; compared by string value)."""

    value: str

    def __str__(self) -> str:
        return self.value


class AddressPool:
    """Leases simulated IP addresses, DHCP style.

    Addresses are formed as ``prefix.x.y`` over ``size`` slots.  Leasing
    scans forward from the slot after the most recent lease, so released
    addresses are not immediately reused; a reconnecting host therefore
    observes a changed address, as dial-up/DHCP clients did.
    """

    def __init__(self, prefix: str = "10.0", size: int = 4096):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if size > 256 * 256:
            raise ValueError(f"pool size must be <= 65536, got {size}")
        self.prefix = prefix
        self.size = size
        self._leased: set[int] = set()
        self._cursor = 0

    def _slot_to_address(self, slot: int) -> IPAddress:
        high, low = divmod(slot, 256)
        return IPAddress(f"{self.prefix}.{high}.{low}")

    def lease(self) -> IPAddress:
        """Lease the next free address; raises when the pool is exhausted."""
        if len(self._leased) >= self.size:
            raise AddressPoolExhausted(
                f"all {self.size} addresses in {self.prefix}.* are leased"
            )
        slot = self._cursor
        while slot in self._leased:
            slot = (slot + 1) % self.size
        self._leased.add(slot)
        self._cursor = (slot + 1) % self.size
        return self._slot_to_address(slot)

    def release(self, address: IPAddress) -> None:
        """Return a leased address to the pool (idempotence is an error)."""
        slot = self._address_to_slot(address)
        if slot not in self._leased:
            raise ValueError(f"{address} is not currently leased")
        self._leased.remove(slot)

    def is_leased(self, address: IPAddress) -> bool:
        """True when the address is currently leased."""
        try:
            return self._address_to_slot(address) in self._leased
        except ValueError:
            return False

    @property
    def leased_count(self) -> int:
        """Number of addresses currently out on lease."""
        return len(self._leased)

    def _address_to_slot(self, address: IPAddress) -> int:
        head, _, rest = address.value.rpartition(".")
        head_prefix, _, high = head.rpartition(".")
        if head_prefix != self.prefix:
            raise ValueError(f"{address} is not from pool {self.prefix}.*")
        slot = int(high) * 256 + int(rest)
        if not 0 <= slot < self.size:
            raise ValueError(f"{address} is outside pool of size {self.size}")
        return slot
