"""Malformed-frame fault injection for the compact wire codec.

Every future codec change is regression-pinned against the same fault
classes the decoder hardens against: truncation, bit flips, wrong
version, oversize, and trailing garbage.  The injector is deterministic
(seeded) so a failing corruption reproduces from the test seed alone.

The contract under test: every fault either raises a typed
:class:`~repro.errors.WireDecodeError` or — for body bit flips that
happen to remain self-consistent — decodes into a registered message
type.  Nothing else may escape the decoder.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.net.codec import MAX_FRAME_BYTES, WIRE_FORMAT_VERSION


class FrameFaultInjector:
    """Produces corrupted variants of a well-formed compact frame.

    ``max_frame_bytes`` is the frame cap of the codec under test — the
    control codec's by default; the data codec's conformance battery
    passes its own (larger) cap so :meth:`oversize` actually crosses it.
    """

    def __init__(self, seed: int = 0, max_frame_bytes: int = MAX_FRAME_BYTES):
        self._rng = random.Random(seed)
        self._max_frame_bytes = max_frame_bytes

    def truncate(self, frame: bytes, keep: int | None = None) -> bytes:
        """A strict prefix of the frame (``keep`` bytes; random when None)."""
        if keep is None:
            keep = self._rng.randrange(len(frame))
        if not 0 <= keep < len(frame):
            raise ValueError(f"keep={keep} does not truncate a {len(frame)}B frame")
        return frame[:keep]

    def bit_flip(
        self, frame: bytes, position: int | None = None, bit: int | None = None
    ) -> bytes:
        """The frame with exactly one bit inverted."""
        if position is None:
            position = self._rng.randrange(len(frame))
        if bit is None:
            bit = self._rng.randrange(8)
        corrupted = bytearray(frame)
        corrupted[position] ^= 1 << bit
        return bytes(corrupted)

    def wrong_version(self, frame: bytes, version: int | None = None) -> bytes:
        """The frame stamped with a version this build does not speak."""
        if version is None:
            version = WIRE_FORMAT_VERSION + 1 + self._rng.randrange(100)
        if version == WIRE_FORMAT_VERSION:
            raise ValueError(f"version {version} is the supported version")
        corrupted = bytearray(frame)
        corrupted[1] = version & 0xFF
        return bytes(corrupted)

    def oversize(self, frame: bytes) -> bytes:
        """The frame padded past the hard frame-size limit."""
        return frame + b"\x00" * (self._max_frame_bytes + 1 - len(frame))

    def trailing_garbage(self, frame: bytes, extra: int | None = None) -> bytes:
        """The frame with junk bytes appended after a complete message."""
        if extra is None:
            extra = 1 + self._rng.randrange(16)
        return frame + bytes(self._rng.randrange(256) for _ in range(extra))

    def faults(self) -> dict[str, Callable[[bytes], bytes]]:
        """Every fault class by name (for parametrized batteries)."""
        return {
            "truncated": self.truncate,
            "bit-flipped": self.bit_flip,
            "wrong-version": self.wrong_version,
            "oversized": self.oversize,
            "trailing-garbage": self.trailing_garbage,
        }
