"""The sharded network fabric: shard-local delivery, barrier handoff.

A :class:`ShardCluster` owns one :class:`~repro.sim.sharded.ShardedSimulator`
plus one :class:`ShardNetwork` per shard.  Each shard network is an
ordinary :class:`~repro.net.network.Network` for its own hosts — same
NIC/CPU modelling, same drop taxonomy, same counters — except that
:meth:`ShardNetwork._schedule_delivery` consults the cluster directory
and routes packets for hosts on *other* shards through the epoch
barrier instead of its local heap.  The packet's ``raw`` bytes are the
already-encoded wire frame, so the barrier ships exactly what the wire
would have carried.

Shared-by-design state (one address pool, one loss RNG, one wire-encoder
cache, one directory) keeps the lockstep executor bit-identical to the
serial kernel: leases, loss draws and cache hits happen in the same
global order.  The distributed executor (:func:`run_distributed`) forks
workers *after* build, so each worker inherits a copy-on-write snapshot
of that state and runs only its own shard against it.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import NetworkError, ShardingError
from repro.net.address import AddressPool, IPAddress
from repro.net.link import LinkModel
from repro.net.message import Packet
from repro.net.network import Host, Network
from repro.sim.sharded import ShardedSimulator
from repro.util.compression import DEFAULT_CODEC, Codec
from repro.util.randomness import derive_rng
from repro.util.serialization import WireEncoder
from repro.util.tracing import NULL_TRACER, Tracer


class ShardCluster:
    """All shard fabrics plus the state they deliberately share."""

    def __init__(
        self,
        shard_count: int,
        pool: AddressPool | None = None,
        default_link: LinkModel | None = None,
        codec: Codec | None = None,
        tracer: Tracer | None = None,
        loss_seed: int = 0,
        lookahead: float | None = None,
    ):
        self.sim = ShardedSimulator(shard_count, lookahead=lookahead)
        self.pool = pool if pool is not None else AddressPool()
        self.codec = codec if codec is not None else DEFAULT_CODEC
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.encoder = WireEncoder(self.codec, tracer=self.tracer)
        self.loss_rng = derive_rng(loss_seed, "packet-loss")
        #: address -> (shard index, host name), maintained at lease/release
        self.directory: dict[IPAddress, tuple[int, str]] = {}
        #: (shard, name) in creation order — the serial ``hosts`` ordering
        self.host_order: list[tuple[int, str]] = []
        self.networks = [
            ShardNetwork(self, shard, default_link=default_link)
            for shard in range(shard_count)
        ]
        for network in self.networks:
            self.sim.register_lookahead(network.min_outbound_latency)
        self.view = ShardedNetworkView(self)

    @property
    def shard_count(self) -> int:
        return len(self.networks)

    def shard_of(self, name: str) -> int | None:
        """Shard index of a host name (linear scan; build-time use only)."""
        for shard, host_name in self.host_order:
            if host_name == name:
                return shard
        return None


class ShardNetwork(Network):
    """One shard's fabric: serial semantics locally, barrier semantics out."""

    def __init__(
        self,
        cluster: ShardCluster,
        shard_id: int,
        default_link: LinkModel | None = None,
    ):
        super().__init__(
            cluster.sim.shards[shard_id],
            pool=cluster.pool,
            default_link=default_link,
            codec=cluster.codec,
            tracer=cluster.tracer,
            encoder=cluster.encoder,
        )
        self.cluster = cluster
        self.shard_id = shard_id
        # One loss stream for the whole cluster, consumed in global event
        # order under the lockstep executor — exactly the serial draws.
        self._loss_rng = cluster.loss_rng

    # -- host management -----------------------------------------------------

    def create_host(
        self,
        name: str,
        cpu_threads: int = 8,
        dispatch_time: float | None = None,
        connect: bool = True,
    ) -> Host:
        for network in self.cluster.networks:
            if name in network.hosts:
                raise NetworkError(f"duplicate host name {name!r}")
        kwargs = {} if dispatch_time is None else {"dispatch_time": dispatch_time}
        host = super().create_host(
            name, cpu_threads=cpu_threads, connect=connect, **kwargs
        )
        self.cluster.host_order.append((self.shard_id, name))
        return host

    def _lease_address(self, host: Host) -> IPAddress:
        address = super()._lease_address(host)
        self.cluster.directory[address] = (self.shard_id, host.name)
        return address

    def _release_address(self, host: Host) -> None:
        assert host.address is not None
        self.cluster.directory.pop(host.address, None)
        super()._release_address(host)

    def host_at(self, address: IPAddress) -> Host | None:
        entry = self.cluster.directory.get(address)
        if entry is None:
            return None
        return self.cluster.networks[entry[0]]._routes.get(address)

    # -- partitions ----------------------------------------------------------

    def _crosses_partition(self, src: IPAddress, dst: IPAddress) -> bool:
        # Same rule as the serial fabric, but names resolve through the
        # cluster directory: the destination may live on another shard.
        if not self._partition:
            return False
        directory = self.cluster.directory
        src_entry = directory.get(src)
        dst_entry = directory.get(dst)
        if src_entry is None or dst_entry is None:
            return False  # no-route handles it
        src_group = self._partition.get(src_entry[1])
        dst_group = self._partition.get(dst_entry[1])
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    # -- delivery ------------------------------------------------------------

    def _schedule_delivery(self, packet: Packet, link: LinkModel) -> None:
        entry = self.cluster.directory.get(packet.dst)
        if entry is None or entry[0] == self.shard_id:
            # Local host, or an address nobody holds: the local heap
            # reaches the same no-route/stale/down verdict the serial
            # kernel would (released addresses are never re-leased while
            # a packet is in flight — pools are sized against reuse).
            super()._schedule_delivery(packet, link)
            return
        dst_network = self.cluster.networks[entry[0]]
        self.cluster.sim.post(
            self.shard_id,
            entry[0],
            self.sim.now + link.latency,
            dst_network._deliver,
            packet,
            packet=packet,
        )

    # -- lookahead -----------------------------------------------------------

    def min_outbound_latency(self) -> float:
        """Smallest latency a packet leaving this shard could ride.

        The default link can always carry a cross-shard packet; per-pair
        overrides only matter when the pair actually crosses the shard
        boundary, so an intra-shard zero-latency override never poisons
        the cluster lookahead.
        """
        bound = self.default_link.latency
        if self._links:
            directory = self.cluster.directory
            for (src, dst), link in self._links.items():
                if link.latency >= bound:
                    continue
                dst_entry = directory.get(dst)
                if dst_entry is None or dst_entry[0] == self.shard_id:
                    continue
                src_entry = directory.get(src)
                if src_entry is not None and src_entry[0] != self.shard_id:
                    continue
                bound = link.latency
        return bound


class ShardedNetworkView:
    """The cluster presented as one :class:`Network`-shaped object.

    Counters sum across shards, ``hosts`` preserves global creation
    order, and fabric mutations (partitions, link overrides, the default
    link) broadcast to every shard — each shard consults only its own
    copy at send time, so a broadcast is exactly one serial mutation.
    """

    def __init__(self, cluster: ShardCluster):
        self._cluster = cluster
        self.sim = cluster.sim
        self.pool = cluster.pool
        self.codec = cluster.codec
        self.tracer = cluster.tracer
        self.encoder = cluster.encoder

    # -- hosts ---------------------------------------------------------------

    @property
    def hosts(self) -> dict[str, Host]:
        networks = self._cluster.networks
        return {
            name: networks[shard].hosts[name]
            for shard, name in self._cluster.host_order
        }

    def host_at(self, address: IPAddress) -> Host | None:
        entry = self._cluster.directory.get(address)
        if entry is None:
            return None
        return self._cluster.networks[entry[0]]._routes.get(address)

    # -- links ---------------------------------------------------------------

    @property
    def default_link(self) -> LinkModel:
        return self._cluster.networks[0].default_link

    @default_link.setter
    def default_link(self, link: LinkModel) -> None:
        for network in self._cluster.networks:
            network.default_link = link

    def link_for(self, src: IPAddress, dst: IPAddress) -> LinkModel:
        return self._cluster.networks[0].link_for(src, dst)

    def set_link(self, src: IPAddress, dst: IPAddress, link: LinkModel) -> None:
        for network in self._cluster.networks:
            network.set_link(src, dst, link)

    def clear_link(self, src: IPAddress, dst: IPAddress) -> None:
        for network in self._cluster.networks:
            network.clear_link(src, dst)

    # -- partitions ----------------------------------------------------------

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        assignment: dict[str, int] = {}
        hosts = self.hosts
        for index, group in enumerate(groups):
            for name in group:
                if name in assignment:
                    raise NetworkError(f"host {name!r} named in two partition groups")
                if name not in hosts:
                    raise NetworkError(f"unknown host {name!r} in partition")
                assignment[name] = index
        for network in self._cluster.networks:
            network._partition = dict(assignment)
        self.tracer.record(
            self.sim.now, "net", "partition", groups=len(groups), hosts=len(assignment)
        )

    def heal_partition(self) -> None:
        if self.partitioned:
            self.tracer.record(self.sim.now, "net", "heal-partition")
        for network in self._cluster.networks:
            network._partition = {}

    @property
    def partitioned(self) -> bool:
        return any(network.partitioned for network in self._cluster.networks)

    # -- counters ------------------------------------------------------------

    @property
    def packets_delivered(self) -> int:
        return sum(n.packets_delivered for n in self._cluster.networks)

    @property
    def packets_dropped(self) -> int:
        return sum(n.packets_dropped for n in self._cluster.networks)

    @property
    def bytes_carried(self) -> int:
        return sum(n.bytes_carried for n in self._cluster.networks)

    @property
    def decode_errors(self) -> int:
        return sum(n.decode_errors for n in self._cluster.networks)

    @property
    def drops_by_reason(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for network in self._cluster.networks:
            for reason, count in network.drops_by_reason.items():
                merged[reason] = merged.get(reason, 0) + count
        return merged

    @property
    def encode_hits(self) -> int:
        return self.encoder.hits

    @property
    def encode_misses(self) -> int:
        return self.encoder.misses


# ---------------------------------------------------------------------------
# Distributed (multi-process) execution
# ---------------------------------------------------------------------------


@dataclass
class DistributedRunReport:
    """What a :func:`run_distributed` run measured and brought home.

    The parent's deployment objects are fork-time snapshots — all
    post-run state lives here: summed network counters, per-host wire
    counters in creation order, and whatever each worker's ``extract``
    callback returned.
    """

    final_now: float
    windows: int
    messages: int
    wall_seconds: float
    busy_per_shard: list[float]
    critical_path_seconds: float
    shard_counters: list[dict[str, Any]]
    shard_hosts: list[dict[str, dict[str, int]]]
    extracts: list[Any]
    host_order: list[tuple[int, str]] = field(default_factory=list)

    def merged_counters(self) -> dict[str, Any]:
        merged: dict[str, Any] = {
            "packets_delivered": 0,
            "packets_dropped": 0,
            "bytes_carried": 0,
            "decode_errors": 0,
            "drops_by_reason": {},
        }
        for counters in self.shard_counters:
            for key in ("packets_delivered", "packets_dropped", "bytes_carried",
                        "decode_errors"):
                merged[key] += counters[key]
            for reason, count in counters["drops_by_reason"].items():
                merged["drops_by_reason"][reason] = (
                    merged["drops_by_reason"].get(reason, 0) + count
                )
        return merged

    def host_bytes(self) -> list[int]:
        """Per-host ``bytes_sent`` in global creation order (the exact
        shape the determinism contract compares against serial runs)."""
        return [
            self.shard_hosts[shard][name]["bytes_sent"]
            for shard, name in self.host_order
        ]


def _worker_counters(network: Network) -> dict[str, Any]:
    return {
        "packets_delivered": network.packets_delivered,
        "packets_dropped": network.packets_dropped,
        "bytes_carried": network.bytes_carried,
        "decode_errors": network.decode_errors,
        "drops_by_reason": dict(network.drops_by_reason),
    }


def _worker_hosts(network: Network) -> dict[str, dict[str, int]]:
    return {
        name: {
            "bytes_sent": host.bytes_sent,
            "messages_sent": host.messages_sent,
            "messages_received": host.messages_received,
        }
        for name, host in network.hosts.items()
    }


def _shard_worker(cluster: ShardCluster, shard_id: int, conn, extract) -> None:
    """One forked worker: drains its shard window-by-window on command."""
    sim = cluster.sim.shards[shard_id]
    network = cluster.networks[shard_id]
    try:
        conn.send(
            ("ready", sim.peek(), sim._regular_count, network.min_outbound_latency())
        )
        while True:
            command = conn.recv()
            if command[0] == "drain":
                _, bound, inclusive, inbox = command
                # Parent pre-sorts by (arrival, origin_shard, origin_seq);
                # scheduling in that order assigns local tie-break
                # sequences that reproduce the stamp order.
                for arrival, _origin_shard, _origin_seq, packet in inbox:
                    sim.schedule_at(arrival, network._deliver, packet)
                # CPU seconds, not wall: workers time-slicing a loaded
                # machine must not count descheduled time as busy.
                started = _time.process_time()
                sim.drain_window(bound, inclusive)
                busy = _time.process_time() - started
                last = sim.now
                outgoing = []
                for dst, outbox in enumerate(cluster.sim.outboxes):
                    for message in outbox:
                        if message.packet is None:
                            raise ShardingError(
                                "distributed mode can only ship packet-form "
                                "cross-shard messages"
                            )
                        outgoing.append(
                            (
                                dst,
                                message.arrival_time,
                                message.origin_shard,
                                message.origin_seq,
                                message.packet,
                            )
                        )
                    outbox.clear()
                conn.send(
                    (
                        "report",
                        sim.peek(),
                        sim._regular_count,
                        last,
                        busy,
                        network.min_outbound_latency(),
                        outgoing,
                    )
                )
            elif command[0] == "finish":
                sim.now = command[1]
                result = {
                    "counters": _worker_counters(network),
                    "hosts": _worker_hosts(network),
                    "extract": extract(shard_id) if extract is not None else None,
                }
                conn.send(("result", result))
                conn.close()
                return
            else:  # pragma: no cover - protocol misuse
                raise ShardingError(f"unknown shard-worker command {command[0]!r}")
    except Exception as exc:  # pragma: no cover - crash reporting path
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        raise


def run_distributed(
    cluster: ShardCluster,
    until: float | None = None,
    extract: Callable[[int], Any] | None = None,
) -> DistributedRunReport:
    """Run the cluster to completion with one worker process per shard.

    Forks *after* build, so workers inherit the full deployment
    copy-on-write and exchange only barrier packets with the parent
    coordinator.  ``extract(shard_id)`` runs inside each worker after the
    run and must return a picklable summary (answers, recalls, ...) —
    the parent's own objects stay at their fork-time state.

    Supports fault-free workloads only: fault injectors, packet-loss
    windows and churn re-leases mutate state shared across shards, which
    only the lockstep (inline) executor keeps coherent.  Equal-time
    cross-shard ties break by ``(origin_shard, origin_seq)`` rather than
    the serial kernel's global sequence; runs are deterministic, and the
    scaling benchmark asserts they match the serial kernel bit-for-bit
    on the flood workloads.
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        raise ShardingError("run_distributed requires the fork start method")
    context = multiprocessing.get_context("fork")
    shard_count = cluster.shard_count
    started_wall = _time.perf_counter()
    parents, workers = [], []
    for shard in range(shard_count):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_shard_worker,
            args=(cluster, shard, child_conn, extract),
            daemon=True,
        )
        process.start()
        child_conn.close()
        parents.append(parent_conn)
        workers.append(process)

    def receive(shard: int):
        message = parents[shard].recv()
        if message[0] == "error":
            for process in workers:
                process.terminate()
            raise ShardingError(f"shard {shard} worker failed: {message[1]}")
        return message

    peeks: list[float | None] = [None] * shard_count
    regulars = [0] * shard_count
    latencies = [0.0] * shard_count
    for shard in range(shard_count):
        _, peeks[shard], regulars[shard], latencies[shard] = receive(shard)

    pending: list[list[tuple]] = [[] for _ in range(shard_count)]
    busy_per_shard = [0.0] * shard_count
    critical_path = 0.0
    windows = 0
    messages = 0
    last_fired = 0.0
    while True:
        pending_total = sum(len(inbox) for inbox in pending)
        heads = [t for t in peeks if t is not None]
        heads.extend(entry[0] for inbox in pending for entry in inbox)
        if until is None and sum(regulars) + pending_total == 0:
            final = last_fired
            break
        if not heads:
            final = last_fired
            break
        t0 = min(heads)
        if until is not None and t0 > until:
            final = until
            break
        lookahead = min(latencies) if shard_count > 1 else float("inf")
        if not lookahead > 0.0:
            for process in workers:
                process.terminate()
            raise ShardingError(
                f"cross-shard lookahead must be positive, got {lookahead}"
            )
        bound, inclusive = t0 + lookahead, False
        if until is not None and until < bound:
            bound, inclusive = until, True
        for shard in range(shard_count):
            inbox = sorted(pending[shard], key=lambda entry: entry[:3])
            pending[shard] = []
            parents[shard].send(("drain", bound, inclusive, inbox))
        window_busy = 0.0
        for shard in range(shard_count):
            _, peek, regular, last, busy, latency, outgoing = receive(shard)
            peeks[shard] = peek
            regulars[shard] = regular
            latencies[shard] = latency
            busy_per_shard[shard] += busy
            window_busy = max(window_busy, busy)
            if last > last_fired:
                last_fired = last
            for dst, arrival, origin_shard, origin_seq, packet in outgoing:
                pending[dst].append((arrival, origin_shard, origin_seq, packet))
                messages += 1
        critical_path += window_busy
        windows += 1

    shard_counters, shard_hosts, extracts = [], [], []
    for shard in range(shard_count):
        parents[shard].send(("finish", final))
        _, result = receive(shard)
        shard_counters.append(result["counters"])
        shard_hosts.append(result["hosts"])
        extracts.append(result["extract"])
    for process in workers:
        process.join(timeout=30)
        if process.is_alive():  # pragma: no cover - hang safety net
            process.terminate()
    for parent_conn in parents:
        parent_conn.close()
    return DistributedRunReport(
        final_now=final,
        windows=windows,
        messages=messages,
        wall_seconds=_time.perf_counter() - started_wall,
        busy_per_shard=busy_per_shard,
        critical_path_seconds=critical_path,
        shard_counters=shard_counters,
        shard_hosts=shard_hosts,
        extracts=extracts,
        host_order=list(cluster.host_order),
    )
