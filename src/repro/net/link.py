"""Link cost model: propagation latency plus transmission bandwidth."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class LinkModel:
    """Cost parameters for one (directed) link.

    ``latency`` is one-way delay in seconds; ``bandwidth`` is bytes per
    second and determines how long a packet occupies the sender NIC.
    Defaults approximate the paper's testbed: a switched 10 Mbps LAN of
    Pentium-II PCs where every hop paid a fresh TCP connection through a
    1990s Java network stack — per-message latency of a few
    milliseconds, not microseconds.
    """

    latency: float = 0.005
    bandwidth: float = 1_250_000.0  # bytes/second (10 Mbps)
    #: probability a packet vanishes in flight (failure injection)
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {self.loss_probability}"
            )

    def transmission_time(self, size_bytes: int) -> float:
        """Seconds the sender NIC is occupied transmitting ``size_bytes``."""
        return size_bytes / self.bandwidth
