"""Streaming wire codec for the data plane.

PR 3 gave the 18 small control-message types compact struct-packed
frames, but the bytes that *dominate* at scale — answers flowing back to
initiators, fetch/active/data replies carrying object payloads, and
sourced agent envelopes shipping class text — still rode pickle+gzip.
This module gives those a versioned, **length-prefixed** streaming frame::

    u8 magic (0xD7) | u8 version | u16 type id | u32 body length | body

The length prefix makes the format stream-friendly: a receiver can split
a byte stream into frames without decoding bodies, and a decoder can
defer body work entirely.  :class:`~repro.agents.messages.BatchedAnswers`
exploits that: its body is a sequence of length-prefixed answer records,
and decoding returns a *lazy* batch holding zero-copy memoryview slices
into the frame — records are materialized on first access, exactly like
PR 1's lazy :class:`~repro.net.message.Packet` decode, so dropped or
never-read packets pay nothing.

**The codec changes wall-clock only, never simulated bytes-semantics.**
Like the control codec, the charged wire size of a data-registered
message is the canonical stream-frame size *in both modes*: with
``REPRO_WIRE_DATA=pickle`` the transported bytes are pickle, but the
charged size is still the frame size, so seeded runs produce
bit-identical series, byte counts and hop counts whichever data codec is
selected (pinned by ``tests/eval/test_fastpath_determinism.py``).

Field codecs are shared with :mod:`repro.net.codec`; this module adds
one data-plane-specific codec: a zlib-compressed class-source field
whose compression work is cached per source digest (the same sha256
digest :mod:`repro.agents.codeship` keys its compile cache with), so a
class's source text is compressed once per process no matter how many
sourced envelopes carry it.

Decoding is strict: bad magic, unsupported version, unknown type id,
length mismatches, truncation, value overruns, oversized frames and
trailing garbage all raise a typed
:class:`~repro.errors.WireDecodeError` — never an arbitrary exception —
so both the simulated delivery loop and the live transport can
drop-and-count corrupt data frames without crashing.
"""

from __future__ import annotations

import hashlib
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import WireCodecError, WireDecodeError, WireEncodeError
from repro.net.codec import (
    STR,
    U16,
    U32,
    FieldCodec,
    _take,
)

#: Bump on ANY layout change (field added/removed/reordered/retyped, type
#: id reassigned).  The decoder rejects every other version, and the
#: golden vectors in ``tests/net/vectors/`` must be regenerated.
WIRE_FORMAT_VERSION = 1

#: First byte of every data frame.  Distinct from the control codec's
#: 0xB7, a gzip stream's 0x1f, and a protocol-4 pickle's 0x80, so every
#: transport can tell all four formats apart from the leading byte alone.
FRAME_MAGIC = 0xD7

_HEADER = struct.Struct(">BBHI")
#: magic + version + type id + u32 body length
HEADER_SIZE = _HEADER.size

#: Data frames carry payloads, so the cap is generous — but a peer's
#: whole sharable store at paper scale is ~1 MiB, so anything past this
#: is corrupt (or must take the pickle+gzip fallback, which both codec
#: modes agree on because the decision depends only on the value).
MAX_FRAME_BYTES = 8 << 20

#: Selects the data-plane codec: ``stream`` (default) or ``pickle``.
#: Checked on every encode (one ``os.environ`` lookup) — like
#: ``REPRO_WIRE_CODEC`` — so ``--jobs`` worker processes inherit the
#: setting through their environment with no extra plumbing.
WIRE_DATA_ENV_VAR = "REPRO_WIRE_DATA"
DATA_STREAM = "stream"
DATA_PICKLE = "pickle"
#: Module-level default, monkeypatchable by tests.
DEFAULT_WIRE_DATA = DATA_STREAM

#: Packet/EncodedPayload codec tag for stream-framed payloads.
CODEC_STREAM = "stream"

#: zlib level for the compressed-source field; fixed so encoded frames
#: are deterministic across processes and interpreter versions.
_SOURCE_ZLIB_LEVEL = 6


def wire_data_mode() -> str:
    """The active data codec name, honouring :data:`WIRE_DATA_ENV_VAR`."""
    value = os.environ.get(WIRE_DATA_ENV_VAR)
    if not value:
        return DEFAULT_WIRE_DATA
    normalized = value.strip().lower()
    if normalized not in (DATA_STREAM, DATA_PICKLE):
        raise WireCodecError(
            f"{WIRE_DATA_ENV_VAR}={value!r} is not one of "
            f"{DATA_STREAM!r}, {DATA_PICKLE!r}"
        )
    return normalized


# ---------------------------------------------------------------------------
# Data-plane field codecs
# ---------------------------------------------------------------------------


class _CompressedSource(FieldCodec):
    """Class source text, zlib-compressed inside the frame.

    Layout: ``u32 raw length | u32 compressed length | zlib bytes``.
    Source text is large and highly compressible — the one reason the
    sourced envelope previously stayed on pickle+gzip.  Compressing just
    this field keeps the frame small *and* keeps the rest of the message
    on the cheap struct path; the compression work itself is cached per
    sha256 digest of the source (the same digest the codeship compile
    cache is keyed by), so each class's source is deflated once per
    process however many envelopes carry it.
    """

    name = "zsource"

    #: sha256 hexdigest of the source -> its zlib bytes
    _cache: dict[str, bytes] = {}
    _CACHE_CAPACITY = 64

    def pack(self, value: Any, out: bytearray) -> None:
        if not isinstance(value, str):
            raise WireEncodeError(f"{value!r} is not a source string")
        raw = value.encode("utf-8")
        if len(raw) > MAX_FRAME_BYTES:
            raise WireEncodeError(f"source of {len(raw)} bytes exceeds the frame cap")
        digest = hashlib.sha256(raw).hexdigest()
        blob = self._cache.get(digest)
        if blob is None:
            blob = zlib.compress(raw, _SOURCE_ZLIB_LEVEL)
            if len(self._cache) >= self._CACHE_CAPACITY:
                self._cache.pop(next(iter(self._cache)))
            self._cache[digest] = blob
        out += U32._struct.pack(len(raw))  # type: ignore[attr-defined]
        out += U32._struct.pack(len(blob))  # type: ignore[attr-defined]
        out += blob

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        raw_len, offset = U32.unpack(data, offset)
        blob_len, offset = U32.unpack(data, offset)
        if raw_len > MAX_FRAME_BYTES:
            raise WireDecodeError(
                f"declared source of {raw_len} bytes exceeds the frame cap"
            )
        chunk, offset = _take(data, offset, blob_len)
        try:
            raw = zlib.decompress(bytes(chunk))
        except zlib.error as exc:
            raise WireDecodeError(f"corrupt compressed source: {exc}") from exc
        if len(raw) != raw_len:
            raise WireDecodeError(
                f"source inflated to {len(raw)} bytes, header declared {raw_len}"
            )
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise WireDecodeError(f"invalid utf-8 in source field: {exc}") from exc


COMPRESSED_SOURCE = _CompressedSource()


class _WireAddress(FieldCodec):
    """A transport address: sim :class:`IPAddress` or live ``(host, port)``.

    Data-plane messages travel over both runtimes — the simulated
    network addresses hosts with :class:`~repro.net.address.IPAddress`,
    the live TCP transport with ``(host, port)`` tuples — so their
    address fields are a tagged union::

        u8 0 | str value         (simulated address)
        u8 1 | str host | u16 port   (live TCP address)
    """

    name = "address"

    def pack(self, value: Any, out: bytearray) -> None:
        from repro.net.address import IPAddress

        if isinstance(value, IPAddress):
            out += b"\x00"
            STR.pack(value.value, out)
            return
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[0], str)
            and isinstance(value[1], int)
            and not isinstance(value[1], bool)
            and 0 <= value[1] <= 0xFFFF
        ):
            out += b"\x01"
            STR.pack(value[0], out)
            out += U16._struct.pack(value[1])  # type: ignore[attr-defined]
            return
        raise WireEncodeError(f"{value!r} is not a transport address")

    def unpack(self, data: bytes, offset: int) -> tuple[Any, int]:
        from repro.net.address import IPAddress

        chunk, offset = _take(data, offset, 1)
        tag = chunk[0]
        if tag == 0:
            value, offset = STR.unpack(data, offset)
            return IPAddress(value), offset
        if tag == 1:
            host, offset = STR.unpack(data, offset)
            port, offset = U16.unpack(data, offset)
            return (host, port), offset
        raise WireDecodeError(f"address tag must be 0 or 1, got {tag}")


ADDRESS_CODEC = _WireAddress()


# ---------------------------------------------------------------------------
# Message registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DataMessageSpec:
    """One registered data-plane message type: identity plus body layout.

    Bodies are usually described by an ordered field list, like control
    messages; a type needing a custom body (batched answers with their
    per-record length prefixes and lazy decode) supplies ``pack_body`` /
    ``unpack_body`` instead.
    """

    type_id: int
    cls: type
    fields: tuple[tuple[str, FieldCodec], ...]
    #: canonical instance used for golden vectors and conformance tests
    sample: Callable[[], Any]
    #: value-level predicate: False routes this instance to the pickle
    #: fallback (e.g. agent envelopes that carry no class source)
    streamable: Callable[[Any], bool] | None = None
    #: custom body codec overriding ``fields`` (both or neither)
    pack_body: Callable[[Any, bytearray], None] | None = None
    unpack_body: Callable[[memoryview], Any] | None = None

    @property
    def name(self) -> str:
        return f"{self.cls.__module__}.{self.cls.__qualname__}"

    def accepts(self, message: Any) -> bool:
        """True when this instance can take the stream path."""
        if type(message) is not self.cls:
            return False
        if self.streamable is not None and not self.streamable(message):
            return False
        return True


_BY_ID: dict[int, DataMessageSpec] = {}
_BY_CLASS: dict[type, DataMessageSpec] = {}


def register(
    cls: type,
    type_id: int,
    fields: tuple[tuple[str, FieldCodec], ...],
    *,
    sample: Callable[[], Any],
    streamable: Callable[[Any], bool] | None = None,
    pack_body: Callable[[Any, bytearray], None] | None = None,
    unpack_body: Callable[[memoryview], Any] | None = None,
) -> DataMessageSpec:
    """Register a data-plane message type; called at import time by the
    module that defines the message (keeping this module dependency-free).
    """
    if not 0 < type_id <= 0xFFFF:
        raise WireCodecError(f"type id {type_id:#x} outside u16 range")
    if (pack_body is None) != (unpack_body is None):
        raise WireCodecError("pack_body and unpack_body must be given together")
    existing = _BY_ID.get(type_id)
    if existing is not None and existing.cls is not cls:
        raise WireCodecError(
            f"type id {type_id:#x} already registered for {existing.name}"
        )
    spec = DataMessageSpec(
        type_id, cls, tuple(fields), sample, streamable, pack_body, unpack_body
    )
    _BY_ID[type_id] = spec
    _BY_CLASS[cls] = spec
    return spec


def lookup(cls: type) -> DataMessageSpec | None:
    """The spec registered for ``cls`` (None when unregistered)."""
    return _BY_CLASS.get(cls)


def spec_for_id(type_id: int) -> DataMessageSpec | None:
    """The spec registered under ``type_id`` (None when unknown)."""
    return _BY_ID.get(type_id)


def registered_specs() -> tuple[DataMessageSpec, ...]:
    """Every registered spec, ordered by type id (stable for vectors)."""
    return tuple(spec for _, spec in sorted(_BY_ID.items()))


def load_registrations() -> None:
    """Import every module that registers data-plane messages.

    Senders register as a side effect of constructing their messages;
    decode-only processes (live endpoints, conformance tests) call this
    to make all type ids resolvable up front.
    """
    import repro.agents.envelope  # noqa: F401
    import repro.agents.messages  # noqa: F401
    import repro.agents.topk  # noqa: F401
    import repro.core.sharing  # noqa: F401
    import repro.core.shipping  # noqa: F401
    import repro.replication.messages  # noqa: F401


# ---------------------------------------------------------------------------
# Field-list helpers (shared with custom-body codecs like BatchedAnswers)
# ---------------------------------------------------------------------------


def pack_fields(
    fields: tuple[tuple[str, FieldCodec], ...], message: Any, out: bytearray
) -> None:
    """Append ``message``'s fields to ``out`` in declaration order."""
    for name, codec in fields:
        codec.pack(getattr(message, name), out)


def unpack_fields(
    fields: tuple[tuple[str, FieldCodec], ...], cls: type, data: bytes
) -> Any:
    """Build ``cls`` from a complete field-packed body (strict: the body
    must be consumed exactly)."""
    values: dict[str, Any] = {}
    offset = 0
    for name, codec in fields:
        values[name], offset = codec.unpack(data, offset)
    if offset != len(data):
        raise WireDecodeError(
            f"{len(data) - offset} trailing bytes after a complete "
            f"{cls.__qualname__} record"
        )
    try:
        return cls(**values)
    except Exception as exc:
        raise WireDecodeError(f"cannot build {cls.__qualname__}: {exc}") from exc


# ---------------------------------------------------------------------------
# Frame encode / decode
# ---------------------------------------------------------------------------


def encode_message(message: Any) -> bytes:
    """The stream frame for ``message``; :class:`WireEncodeError` when it
    is unregistered, not streamable, or a value overflows its field."""
    spec = _BY_CLASS.get(type(message))
    if spec is None:
        raise WireEncodeError(f"{type(message).__qualname__} is not data-registered")
    if spec.streamable is not None and not spec.streamable(message):
        raise WireEncodeError(f"{spec.name} instance is not streamable")
    body = bytearray()
    if spec.pack_body is not None:
        spec.pack_body(message, body)
    else:
        pack_fields(spec.fields, message, body)
    if HEADER_SIZE + len(body) > MAX_FRAME_BYTES:
        raise WireEncodeError(
            f"frame of {HEADER_SIZE + len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return (
        _HEADER.pack(FRAME_MAGIC, WIRE_FORMAT_VERSION, spec.type_id, len(body))
        + body
    )


def try_encode(message: Any) -> bytes | None:
    """The stream frame, or None when the message must take the pickle
    fallback.  The decision depends only on the message value — never on
    the codec mode — so both modes agree on which path a message takes
    (and therefore on its charged wire size)."""
    if type(message) not in _BY_CLASS:
        return None
    try:
        return encode_message(message)
    except WireEncodeError:
        return None


def decode_message(frame: bytes) -> Any:
    """Inverse of :func:`encode_message`; :class:`WireDecodeError` on any
    malformation (bad magic/version/type id, length mismatch, truncation,
    value overrun, oversize, trailing garbage).

    Types registered with a custom ``unpack_body`` may defer record
    decoding (:class:`~repro.agents.messages.BatchedAnswers` holds
    zero-copy memoryview slices into the frame); record-level corruption
    then surfaces as a :class:`WireDecodeError` at first materialization,
    inside the delivery loop's drop-and-count guard.
    """
    if len(frame) > MAX_FRAME_BYTES:
        raise WireDecodeError(
            f"oversized frame: {len(frame)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    if len(frame) < HEADER_SIZE:
        raise WireDecodeError(f"frame of {len(frame)} bytes is shorter than a header")
    magic, version, type_id, body_len = _HEADER.unpack_from(frame, 0)
    if magic != FRAME_MAGIC:
        raise WireDecodeError(f"bad magic byte {magic:#04x} (want {FRAME_MAGIC:#04x})")
    if version != WIRE_FORMAT_VERSION:
        raise WireDecodeError(
            f"unsupported data wire format version {version} "
            f"(this build speaks {WIRE_FORMAT_VERSION})"
        )
    if HEADER_SIZE + body_len > MAX_FRAME_BYTES:
        raise WireDecodeError(
            f"oversized frame: declared body of {body_len} bytes exceeds the cap"
        )
    spec = _BY_ID.get(type_id)
    if spec is None:
        raise WireDecodeError(f"unknown data message type id {type_id:#06x}")
    if len(frame) < HEADER_SIZE + body_len:
        raise WireDecodeError(
            f"frame truncated: header declares a {body_len}-byte body, "
            f"{len(frame) - HEADER_SIZE} present"
        )
    if len(frame) > HEADER_SIZE + body_len:
        raise WireDecodeError(
            f"{len(frame) - HEADER_SIZE - body_len} trailing bytes after a "
            f"complete {spec.name}"
        )
    body = memoryview(frame)[HEADER_SIZE:]
    if spec.unpack_body is not None:
        return spec.unpack_body(body)
    return unpack_fields(spec.fields, spec.cls, bytes(body))
