"""A LIGLO name server on real sockets.

The live counterpart of :mod:`repro.liglo`: a fixed TCP endpoint that
issues BPIDs, remembers each member's current address, answers resolve
requests, and hands newcomers an initial peer list.  LivePeers can
register with it before wiring into the overlay, which makes the live
identity story identical to the simulated one: the BPID, not the
(host, port), is who a peer *is*.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.ids import BPID, SerialCounter
from repro.live.transport import LiveAddress, LiveEndpoint

PROTO_REGISTER = "live.liglo.register"
PROTO_REGISTER_REPLY = "live.liglo.register.reply"
PROTO_ANNOUNCE = "live.liglo.announce"
PROTO_RESOLVE = "live.liglo.resolve"
PROTO_RESOLVE_REPLY = "live.liglo.resolve.reply"

DEFAULT_INITIAL_PEERS = 5


class LiveLigloServer:
    """BPID issuance and address tracking over TCP."""

    def __init__(
        self,
        port: int = 0,
        capacity: int | None = None,
        initial_peers: int = DEFAULT_INITIAL_PEERS,
    ):
        self.endpoint = LiveEndpoint(port=port)
        self.capacity = capacity
        self.initial_peers = initial_peers
        self.server_id = f"liglo@{self.endpoint.address[0]}:{self.endpoint.address[1]}"
        self._lock = threading.Lock()
        self._members: dict[int, tuple[BPID, LiveAddress]] = {}
        self._serials = SerialCounter()
        self.registrations_rejected = 0
        self.endpoint.bind(PROTO_REGISTER, self._on_register)
        self.endpoint.bind(PROTO_ANNOUNCE, self._on_announce)
        self.endpoint.bind(PROTO_RESOLVE, self._on_resolve)

    @property
    def address(self) -> LiveAddress:
        return self.endpoint.address

    def member_count(self) -> int:
        with self._lock:
            return len(self._members)

    # -- protocol ------------------------------------------------------------------

    def _on_register(self, src: LiveAddress, payload: Any) -> None:
        token, member_address = payload
        member_address = tuple(member_address)
        with self._lock:
            if self.capacity is not None and len(self._members) >= self.capacity:
                self.registrations_rejected += 1
                reply = (token, False, None, (), f"{self.server_id} is at capacity")
            else:
                node_id = self._serials.next()
                bpid = BPID(self.server_id, node_id)
                peers = tuple(
                    (member_bpid, address)
                    for member_bpid, address in list(self._members.values())[
                        -self.initial_peers :
                    ]
                )
                self._members[node_id] = (bpid, member_address)
                reply = (token, True, bpid, peers, "")
        self.endpoint.try_send(tuple(src), PROTO_REGISTER_REPLY, reply)

    def _on_announce(self, _src: LiveAddress, payload: Any) -> None:
        bpid, address = payload
        with self._lock:
            entry = self._members.get(bpid.node_id)
            if entry is not None and entry[0] == bpid:
                self._members[bpid.node_id] = (bpid, tuple(address))

    def _on_resolve(self, src: LiveAddress, payload: Any) -> None:
        token, bpid = payload
        with self._lock:
            entry = self._members.get(bpid.node_id)
            if entry is not None and entry[0] == bpid:
                reply = (token, bpid, entry[1], True)
            else:
                reply = (token, bpid, None, False)
        self.endpoint.try_send(tuple(src), PROTO_RESOLVE_REPLY, reply)

    def close(self) -> None:
        self.endpoint.close()

    def __enter__(self) -> "LiveLigloServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LiveLigloClient:
    """Blocking client helpers for LivePeers (threads make this easy)."""

    def __init__(self, endpoint: LiveEndpoint):
        self.endpoint = endpoint
        self._lock = threading.Lock()
        self._tokens = SerialCounter()
        self._register_results: dict[int, Any] = {}
        self._resolve_results: dict[int, Any] = {}
        self._condition = threading.Condition(self._lock)
        endpoint.bind(PROTO_REGISTER_REPLY, self._on_register_reply)
        endpoint.bind(PROTO_RESOLVE_REPLY, self._on_resolve_reply)

    def register(
        self, liglo: LiveAddress, timeout: float = 5.0
    ) -> tuple[BPID | None, tuple, str]:
        """Register; returns (bpid, initial peers, reason) — bpid None on
        rejection or timeout."""
        with self._lock:
            token = self._tokens.next()
        self.endpoint.try_send(
            tuple(liglo), PROTO_REGISTER, (token, self.endpoint.address)
        )
        with self._condition:
            if not self._condition.wait_for(
                lambda: token in self._register_results, timeout=timeout
            ):
                return None, (), "registration timed out"
            _token, accepted, bpid, peers, reason = self._register_results.pop(token)
        if not accepted:
            return None, (), reason
        return bpid, peers, ""

    def announce(self, liglo: LiveAddress, bpid: BPID) -> None:
        self.endpoint.try_send(
            tuple(liglo), PROTO_ANNOUNCE, (bpid, self.endpoint.address)
        )

    def resolve(
        self, liglo: LiveAddress, bpid: BPID, timeout: float = 5.0
    ) -> LiveAddress | None:
        with self._lock:
            token = self._tokens.next()
        self.endpoint.try_send(tuple(liglo), PROTO_RESOLVE, (token, bpid))
        with self._condition:
            if not self._condition.wait_for(
                lambda: token in self._resolve_results, timeout=timeout
            ):
                return None
            _token, _bpid, address, known = self._resolve_results.pop(token)
        return tuple(address) if known and address is not None else None

    def _on_register_reply(self, _src: LiveAddress, payload: Any) -> None:
        with self._condition:
            self._register_results[payload[0]] = payload
            self._condition.notify_all()

    def _on_resolve_reply(self, _src: LiveAddress, payload: Any) -> None:
        with self._condition:
            self._resolve_results[payload[0]] = payload
            self._condition.notify_all()
