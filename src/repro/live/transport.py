"""Framed TCP transport for the live runtime.

One message = one TCP connection carrying one frame::

    u32 length | body

where ``body`` is, for registered control messages under the compact
codec (the default), a compact live body::

    u8 magic (0xB7) | u16 protocol length | protocol utf8 | compact frame

for data-registered messages under the streaming data codec (the
default) the same shape with the data magic::

    u8 magic (0xD7) | u16 protocol length | protocol utf8 | stream frame

and for everything else the legacy form ``gzip(pickle((protocol,
payload)))``.  The leading byte discriminates: neither 0xB7 nor 0xD7
ever begins a gzip stream (0x1f) or a protocol-4 pickle (0x80).  The
embedded frames are byte-identical to the ones the simulated network
charges for, so sim and live stay wire-compatible and one set of golden
vectors covers both.

A :class:`LiveEndpoint` owns a listening socket plus an accept thread;
each accepted connection is served by a short-lived worker thread that
reads the single frame and dispatches it to the protocol handler.
Handlers therefore run concurrently — callers guard their own state.
Malformed bodies raise a typed :class:`~repro.errors.WireDecodeError`
inside :func:`read_frame`; the serve loop drops the message and counts
it in :attr:`LiveEndpoint.decode_errors` instead of dying.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
from typing import Any, Callable

from repro.errors import NetworkError, WireDecodeError
from repro.net import datacodec
from repro.net.codec import (
    CODEC_COMPACT,
    FRAME_MAGIC,
    decode_message,
    load_registrations,
    try_encode,
    wire_codec_mode,
)
from repro.util.compression import DEFAULT_CODEC, Codec
from repro.util.randomness import derive_rng
from repro.util.retry import RetryPolicy
from repro.util.serialization import deserialize, serialize

#: (host, port) of a live peer
LiveAddress = tuple[str, int]

_LEN = struct.Struct("<I")
_PROTO_LEN = struct.Struct(">H")
_COMPACT_TAG = bytes([FRAME_MAGIC])
_DATA_TAG = bytes([datacodec.FRAME_MAGIC])
#: refuse absurd frames rather than allocating unbounded buffers
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(protocol: str, payload: Any, codec: Codec) -> bytes:
    body = _encode_body(protocol, payload, codec)
    if len(body) > MAX_FRAME_BYTES:
        raise NetworkError(f"frame of {len(body)} bytes exceeds the limit")
    return _LEN.pack(len(body)) + body


def _encode_body(protocol: str, payload: Any, codec: Codec) -> bytes:
    name = protocol.encode("utf-8")
    if len(name) <= 0xFFFF:
        if wire_codec_mode() == CODEC_COMPACT:
            frame = try_encode(payload)
            if frame is not None:
                return _COMPACT_TAG + _PROTO_LEN.pack(len(name)) + name + frame
        if datacodec.wire_data_mode() == datacodec.DATA_STREAM:
            frame = datacodec.try_encode(payload)
            if frame is not None:
                return _DATA_TAG + _PROTO_LEN.pack(len(name)) + name + frame
    return codec.compress(serialize((protocol, payload)))


def _split_protocol(body: bytes) -> tuple[str, bytes]:
    """Split a tagged live body into (protocol name, embedded frame)."""
    header_end = 1 + _PROTO_LEN.size
    if len(body) < header_end:
        raise WireDecodeError("live frame truncated inside the protocol header")
    (name_len,) = _PROTO_LEN.unpack_from(body, 1)
    frame_start = header_end + name_len
    if frame_start > len(body):
        raise WireDecodeError("live frame truncated inside the protocol name")
    try:
        protocol = body[header_end:frame_start].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireDecodeError(f"invalid utf-8 protocol name: {exc}") from exc
    return protocol, body[frame_start:]


def _decode_body(body: bytes, codec: Codec) -> tuple[str, Any]:
    if body[:1] == _COMPACT_TAG:
        protocol, frame = _split_protocol(body)
        return protocol, decode_message(frame)
    if body[:1] == _DATA_TAG:
        protocol, frame = _split_protocol(body)
        return protocol, datacodec.decode_message(frame)
    try:
        protocol, payload = deserialize(codec.decompress(body))
    except Exception as exc:
        raise WireDecodeError(f"corrupt pickle live frame: {exc}") from exc
    return protocol, payload


def read_frame(sock: socket.socket, codec: Codec) -> tuple[str, Any] | None:
    """Read one frame; None on a cleanly closed connection."""
    header = _read_exactly(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise NetworkError(f"incoming frame of {length} bytes exceeds the limit")
    body = _read_exactly(sock, length)
    if body is None:
        raise NetworkError("connection closed between header and body")
    return _decode_body(body, codec)


def _read_exactly(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on EOF *before* the first byte,
    :class:`NetworkError` on EOF mid-read."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise NetworkError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class LiveEndpoint:
    """One node's network presence: a listener plus connect-per-send."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: Codec | None = None,
        loss_probability: float = 0.0,
        loss_seed: int = 0,
    ):
        if not 0.0 <= loss_probability <= 1.0:
            raise NetworkError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        self.codec = codec if codec is not None else DEFAULT_CODEC
        # Fault injection: drop this fraction of *incoming* messages after
        # the frame is read (the bytes crossed the wire; delivery failed).
        # The stream is seed-derived so live fault batteries replay the
        # same drop decisions in the same arrival order.
        self.loss_probability = loss_probability
        self._loss_rng = derive_rng(loss_seed, "live-loss", host, port)
        self._loss_lock = threading.Lock()
        # Incoming frames may name message types this process has not
        # constructed yet; resolve every registered type id up front,
        # on both planes.
        load_registrations()
        datacodec.load_registrations()
        self._handlers: dict[str, Callable[[LiveAddress, Any], None]] = {}
        self._handlers_lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.address: LiveAddress = self._listener.getsockname()
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"live-accept-{self.address[1]}", daemon=True
        )
        self._accept_thread.start()
        #: counters (informational; written by worker threads)
        self.messages_sent = 0
        self.messages_received = 0
        self.decode_errors = 0
        self.loss_drops = 0
        self.send_retries = 0

    # -- binding -----------------------------------------------------------------

    def bind(self, protocol: str, handler: Callable[[LiveAddress, Any], None]) -> None:
        """Register ``handler(reply_address, payload)`` for one protocol."""
        with self._handlers_lock:
            if protocol in self._handlers:
                raise NetworkError(f"protocol {protocol!r} already bound")
            self._handlers[protocol] = handler

    # -- sending ------------------------------------------------------------------

    def send(self, dst: LiveAddress, protocol: str, payload: Any) -> None:
        """Deliver one message (connect, write frame, close).

        Raises :class:`NetworkError` if the destination is unreachable —
        live callers handle peer death explicitly.
        """
        frame = encode_frame(protocol, payload, self.codec)
        try:
            with socket.create_connection(dst, timeout=5.0) as sock:
                # Tell the receiver where replies should go (our listener,
                # not this ephemeral outgoing port).
                sock.sendall(
                    encode_frame("_reply_to", self.address, self.codec)
                )
                sock.sendall(frame)
        except OSError as exc:
            raise NetworkError(f"cannot deliver to {dst}: {exc}") from exc
        self.messages_sent += 1

    def try_send(self, dst: LiveAddress, protocol: str, payload: Any) -> bool:
        """Best-effort send; False instead of raising on dead peers."""
        try:
            self.send(dst, protocol, payload)
            return True
        except NetworkError:
            return False

    def send_with_retry(
        self,
        dst: LiveAddress,
        protocol: str,
        payload: Any,
        policy: RetryPolicy,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        """Send, retrying connection failures per ``policy``'s backoff.

        Raises :class:`~repro.errors.RetryExhaustedError` once attempts
        run out.  Counts re-sends in :attr:`send_retries`.
        """
        from repro.util.retry import retry_call

        failures_before = [0]

        def attempt() -> None:
            if failures_before[0] > 0:
                self.send_retries += 1
            failures_before[0] += 1
            self.send(dst, protocol, payload)

        retry_call(attempt, policy, rng=rng, sleep=sleep, retry_on=(NetworkError,))

    # -- receiving ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            worker = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            worker.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        reply_to: LiveAddress | None = None
        try:
            with conn:
                conn.settimeout(5.0)
                first = read_frame(conn, self.codec)
                if first is None:
                    return
                protocol, payload = first
                if protocol == "_reply_to":
                    reply_to = tuple(payload)
                    frame = read_frame(conn, self.codec)
                    if frame is None:
                        return
                    protocol, payload = frame
                if self.loss_probability > 0.0:
                    with self._loss_lock:
                        lost = self._loss_rng.random() < self.loss_probability
                    if lost:
                        self.loss_drops += 1
                        return
                self.messages_received += 1
                with self._handlers_lock:
                    handler = self._handlers.get(protocol)
                if handler is not None and not self._closed.is_set():
                    handler(reply_to or ("0.0.0.0", 0), payload)
        except WireDecodeError:
            # Corrupt frame: drop the message, count it, keep serving.
            self.decode_errors += 1
            return
        except (NetworkError, OSError):
            return  # a broken/peer-closed connection is not our problem

    def close(self) -> None:
        """Stop accepting and release the port (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
