"""Live runtime: BestPeer over real TCP sockets and threads.

The simulator (:mod:`repro.sim` / :mod:`repro.net`) exists to reproduce
the paper's *measurements*; this package demonstrates that the system
itself is real software: the **same** :class:`~repro.agents.agent.Agent`
classes, the same code-shipping envelopes, and the same answer messages
run over genuine TCP connections between :class:`LivePeer` processes-
worth of threads on one machine — the deployment style of the 2002
prototype, one JVM per PC, scaled onto a single box.

Messages are framed, pickled, and gzip-compressed exactly like the
simulated wire format; every exchange opens a fresh connection, which is
both simple and faithful to early-2000s P2P servents.

Only trusted, same-machine use is supported: code shipping executes
remote source by design (see :mod:`repro.agents.codeship`).
"""

from repro.live.engine import LiveAgentEngine, LiveContext
from repro.live.liglo import LiveLigloClient, LiveLigloServer
from repro.live.node import LivePeer, LiveQuery
from repro.live.transport import LiveAddress, LiveEndpoint

__all__ = [
    "LiveEndpoint",
    "LiveAddress",
    "LiveAgentEngine",
    "LiveContext",
    "LivePeer",
    "LiveQuery",
    "LiveLigloServer",
    "LiveLigloClient",
]
