"""LivePeer: a runnable BestPeer node on real sockets.

The minimal live node: a StorM store, an agent engine, a manually
managed peer list, and keyword queries whose answers arrive on a
background thread and can be awaited.  Reconfiguration works exactly as
in the simulator: after a query, MaxCount keeps the best answerers.

Live mode intentionally omits the pieces that only matter at network
scale (LIGLO churn handling, cost accounting); the simulator covers
those.  What it proves is that the agents, the code shipping, and the
protocols are real, working software.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from repro.agents.messages import AnswerMessage, BatchedAnswers
from repro.agents.storm_agent import StorMSearchAgent
from repro.core.reconfig import MaxCountStrategy, PeerObservation
from repro.errors import BestPeerError
from repro.ids import BPID, QueryId, SerialCounter
from repro.live.engine import PROTO_ANSWER, LiveAgentEngine
from repro.live.transport import LiveAddress, LiveEndpoint
from repro.storm.store import StorM


class LiveQuery:
    """An in-flight live query; answers can be awaited."""

    def __init__(self, query_id: QueryId, keyword: str):
        self.query_id = query_id
        self.keyword = keyword
        self.answers: list[AnswerMessage] = []
        self._condition = threading.Condition()

    def _record(self, answer: AnswerMessage) -> None:
        with self._condition:
            self.answers.append(answer)
            self._condition.notify_all()

    def wait_for_answers(self, count: int, timeout: float = 5.0) -> bool:
        """Block until ``count`` answers arrived (False on timeout)."""
        deadline = threading.Event()  # unused; Condition handles timing

        def enough() -> bool:
            return len(self.answers) >= count

        with self._condition:
            return self._condition.wait_for(enough, timeout=timeout)

    @property
    def answer_count(self) -> int:
        with self._condition:
            return sum(answer.answer_count for answer in self.answers)

    @property
    def responders(self) -> set[BPID]:
        with self._condition:
            return {answer.responder for answer in self.answers}


class LivePeer:
    """One BestPeer participant on real sockets."""

    _identity_counter = SerialCounter()

    def __init__(
        self,
        name: str,
        storm: StorM | None = None,
        max_peers: int = 8,
        port: int = 0,
        loss_probability: float = 0.0,
        loss_seed: int = 0,
    ):
        if max_peers < 1:
            raise BestPeerError(f"max_peers must be >= 1, got {max_peers}")
        self.name = name
        self.max_peers = max_peers
        self.storm = storm if storm is not None else StorM()
        self.endpoint = LiveEndpoint(
            port=port, loss_probability=loss_probability, loss_seed=loss_seed
        )
        self.bpid = BPID("live", LivePeer._identity_counter.next())
        self._lock = threading.RLock()
        self._peers: dict[BPID, LiveAddress] = {}
        self._queries: dict[QueryId, LiveQuery] = {}
        self._query_serials = SerialCounter()
        self.strategy = MaxCountStrategy()
        self.engine = LiveAgentEngine(
            self.endpoint,
            self.bpid,
            services={"storm": self.storm, "node": self},
            get_peers=self._peer_addresses,
        )
        self.endpoint.bind(PROTO_ANSWER, self._on_answer)
        self._liglo_client = None
        self._liglo_address: LiveAddress | None = None
        # Discovery agents report here, exactly as in the simulator.
        from repro.core.discovery import PROTO_DISCOVERY_REPORT, KnowledgeBase

        self.knowledge = KnowledgeBase()
        self.endpoint.bind(PROTO_DISCOVERY_REPORT, self._on_discovery_report)

    def _on_discovery_report(self, _src: LiveAddress, report) -> None:
        import time

        with self._lock:
            self.knowledge.record(report, now=time.monotonic())

    def discover(self, ttl: int = 7) -> None:
        """Flood a discovery agent; reports fill :attr:`knowledge`."""
        from repro.core.discovery import DiscoveryAgent

        self.engine.dispatch(DiscoveryAgent(), ttl=ttl)

    # -- LIGLO (live) ---------------------------------------------------------------

    def register_with(
        self,
        liglo: LiveAddress,
        timeout: float = 5.0,
        retry_policy=None,
        rng=None,
        sleep=None,
    ) -> bool:
        """Register at a live LIGLO server; adopts its BPID and peers.

        Call before wiring peers or issuing queries — the identity this
        peer presents on the wire changes to the LIGLO-issued one.
        Returns False on rejection or timeout (the self-assigned
        identity stays in that case).

        With a :class:`~repro.util.retry.RetryPolicy`, a *timed-out*
        registration is retried per the backoff schedule, and an
        unreachable LIGLO surfaces as a typed
        :class:`~repro.errors.LigloUnreachableError` instead of a bare
        False.  Rejections (capacity) still return False immediately —
        the server answered; retrying will not change its mind.
        """
        from repro.live.liglo import LiveLigloClient

        if self._liglo_client is None:
            self._liglo_client = LiveLigloClient(self.endpoint)
        if retry_policy is None:
            bpid, peers, _reason = self._liglo_client.register(liglo, timeout=timeout)
            if bpid is None:
                return False
        else:
            from repro.errors import LigloUnreachableError

            failures = 0
            if sleep is None:
                import time

                sleep = time.sleep
            while True:
                bpid, peers, reason = self._liglo_client.register(
                    liglo, timeout=timeout
                )
                if bpid is not None:
                    break
                if reason != "registration timed out":
                    return False  # an answered rejection, not an outage
                failures += 1
                if not retry_policy.should_retry(failures):
                    raise LigloUnreachableError(
                        f"LIGLO at {tuple(liglo)} unreachable after "
                        f"{failures} attempt(s)",
                        attempts=failures,
                    )
                sleep(retry_policy.delay(failures, rng))
        with self._lock:
            self.bpid = bpid
            self.engine.local_bpid = bpid
            self._liglo_address = tuple(liglo)
            for peer_bpid, peer_address in peers:
                if len(self._peers) < self.max_peers:
                    self._peers[peer_bpid] = tuple(peer_address)
        return True

    def resolve_peer(self, bpid: BPID, timeout: float = 5.0) -> LiveAddress | None:
        """Look up a member's current address at our LIGLO."""
        if self._liglo_client is None or self._liglo_address is None:
            raise BestPeerError(f"{self.name} is not registered with a LIGLO")
        return self._liglo_client.resolve(self._liglo_address, bpid, timeout=timeout)

    # -- peers --------------------------------------------------------------------

    @property
    def address(self) -> LiveAddress:
        return self.endpoint.address

    def add_peer(self, bpid: BPID, address: LiveAddress) -> None:
        with self._lock:
            if len(self._peers) >= self.max_peers and bpid not in self._peers:
                raise BestPeerError(f"{self.name} already has {self.max_peers} peers")
            self._peers[bpid] = tuple(address)

    def connect_to(self, other: "LivePeer") -> None:
        """Symmetric convenience link."""
        self.add_peer(other.bpid, other.address)
        other.add_peer(self.bpid, self.address)

    def peer_bpids(self) -> list[BPID]:
        with self._lock:
            return list(self._peers)

    def _peer_addresses(self) -> list[LiveAddress]:
        with self._lock:
            return list(self._peers.values())

    # -- sharing & querying ----------------------------------------------------------

    def share(self, keywords: Sequence[str], payload: bytes):
        return self.storm.put(keywords, payload)

    def share_many(self, objects: Sequence[tuple[Sequence[str], bytes]]):
        """Batch :meth:`share` via StorM's bulk-load fast path."""
        return self.storm.put_many(objects)

    def issue_query(self, keyword: str, ttl: int = 7) -> LiveQuery:
        """Flood a StorM search agent; answers stream into the result."""
        query_id = QueryId(self.bpid, self._query_serials.next())
        query = LiveQuery(query_id, keyword)
        with self._lock:
            self._queries[query_id] = query
        self.engine.dispatch(StorMSearchAgent(keyword), query_id=query_id, ttl=ttl)
        return query

    def _on_answer(self, _src: LiveAddress, payload: Any) -> None:
        from repro.agents.topk import TopKDigest

        if isinstance(payload, TopKDigest):
            # Top-k digests carry no answer items; the live runtime has
            # no quiet-period accounting to feed, so they are dropped.
            return
        answers = (
            payload.answers if isinstance(payload, BatchedAnswers) else (payload,)
        )
        for answer in answers:
            with self._lock:
                query = self._queries.get(answer.query_id)
            if query is not None:
                query._record(answer)

    # -- reconfiguration ---------------------------------------------------------------

    def reconfigure(self, query: LiveQuery) -> None:
        """Apply MaxCount to the answers collected so far."""
        with self._lock:
            observations = {
                bpid: PeerObservation(
                    bpid=bpid, address=address, is_current=True
                )
                for bpid, address in self._peers.items()
            }
        with query._condition:
            answers = list(query.answers)
        for answer in answers:
            if answer.responder == self.bpid:
                continue
            current = answer.responder in observations
            observations[answer.responder] = PeerObservation(
                bpid=answer.responder,
                address=tuple(answer.responder_address),
                answers=answer.answer_count,
                hops=answer.hops,
                is_current=current,
            )
        selected = self.strategy.select(list(observations.values()), self.max_peers)
        with self._lock:
            self._peers = {obs.bpid: tuple(obs.address) for obs in selected}

    # -- lifecycle -----------------------------------------------------------------------

    def close(self) -> None:
        """Stop the listener and release resources (idempotent)."""
        self.endpoint.close()
        self.storm.close()

    def __enter__(self) -> "LivePeer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
