"""The live agent engine: the simulator engine's semantics over TCP.

Same protocol behaviour as :class:`repro.agents.engine.AgentEngine` —
duplicate dropping by agent id, clone-and-forward with TTL/Hops, class
source shipped once per destination with a request/response fallback,
answers sent straight to the initiator — but execution is immediate
(real CPU time *is* the cost) and all state is guarded by a lock because
handlers run on transport worker threads.

Agents are the *same classes* that run in the simulator: a
:class:`LiveContext` provides the context surface agents use
(``storm``, ``charge_search`` as a no-op, ``reply``/``send``).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.agents.agent import Agent
from repro.agents.codeship import AgentCodeRegistry
from repro.agents.envelope import DEFAULT_TTL, MODE_FLOOD, AgentEnvelope
from repro.agents.messages import AnswerItem, AnswerMessage
from repro.errors import AgentError
from repro.ids import BPID, AgentId, QueryId, SerialCounter
from repro.live.transport import LiveAddress, LiveEndpoint

PROTO_AGENT = "live.agent"
PROTO_CLASS_REQUEST = "live.agent.class-request"
PROTO_CLASS_RESPONSE = "live.agent.class-response"
PROTO_ANSWER = "live.answer"


class LiveContext:
    """The context surface agents see when executing live."""

    def __init__(self, engine: "LiveAgentEngine", envelope: AgentEnvelope):
        self._engine = engine
        self._envelope = envelope
        self.charged_time = 0.0  # recorded but meaningless live

    @property
    def services(self) -> dict[str, Any]:
        return self._engine.services

    @property
    def storm(self):
        try:
            return self._engine.services["storm"]
        except KeyError:
            raise AgentError("host exposes no 'storm' service") from None

    @property
    def host_id(self) -> BPID:
        return self._engine.local_bpid

    @property
    def host_address(self) -> LiveAddress:
        return self._engine.endpoint.address

    @property
    def initiator(self) -> BPID:
        return self._envelope.initiator

    @property
    def initiator_address(self) -> LiveAddress:
        return self._envelope.initiator_address

    @property
    def query_id(self) -> QueryId | None:
        return self._envelope.query_id

    @property
    def hops(self) -> int:
        return self._envelope.hops

    def charge(self, seconds: float) -> None:
        """Cost accounting is a no-op live: wall-clock time is real."""
        self.charged_time += max(0.0, seconds)

    def charge_search(self, result) -> None:
        self.charged_time += 0.0

    def send(self, dst: LiveAddress, protocol: str, payload: Any) -> None:
        self._engine.endpoint.try_send(tuple(dst), protocol, payload)

    def reply(self, items: Sequence[AnswerItem]) -> None:
        message = AnswerMessage(
            query_id=self._envelope.query_id,
            responder=self._engine.local_bpid,
            responder_address=self._engine.endpoint.address,
            hops=self._envelope.hops,
            items=tuple(items),
        )
        self.send(self._envelope.initiator_address, PROTO_ANSWER, message)


class LiveAgentEngine:
    """Agent runtime bound to one :class:`LiveEndpoint`."""

    def __init__(
        self,
        endpoint: LiveEndpoint,
        local_bpid: BPID,
        services: dict[str, Any] | None = None,
        get_peers: Callable[[], Sequence[LiveAddress]] | None = None,
    ):
        self.endpoint = endpoint
        self.local_bpid = local_bpid
        self.services = services if services is not None else {}
        self.get_peers = get_peers if get_peers is not None else (lambda: [])
        self.registry = AgentCodeRegistry()
        self._lock = threading.RLock()
        self._serials = SerialCounter()
        self._seen: set[AgentId] = set()
        self._shipped: set[tuple[LiveAddress, str]] = set()
        self._parked: dict[str, list[AgentEnvelope]] = {}
        self.agents_executed = 0
        self.agents_deduped = 0
        endpoint.bind(PROTO_AGENT, self._on_agent)
        endpoint.bind(PROTO_CLASS_REQUEST, self._on_class_request)
        endpoint.bind(PROTO_CLASS_RESPONSE, self._on_class_response)

    # -- dispatching ---------------------------------------------------------------

    def dispatch(
        self,
        agent: Agent,
        query_id: QueryId | None = None,
        ttl: int = DEFAULT_TTL,
    ) -> AgentId:
        """Flood ``agent`` to the current peers (live = flood mode only)."""
        if ttl < 1:
            raise AgentError(f"dispatch needs ttl >= 1, got {ttl}")
        with self._lock:
            class_name = self.registry.register_local(type(agent))
            agent_id = AgentId(self.local_bpid, self._serials.next())
            self._seen.add(agent_id)
        envelope = AgentEnvelope(
            agent_id=agent_id,
            class_name=class_name,
            source=None,
            state=agent.get_state(),
            ttl=ttl,
            hops=0,
            initiator=self.local_bpid,
            initiator_address=self.endpoint.address,
            query_id=query_id,
            mode=MODE_FLOOD,
        )
        first_hop = envelope.hop(None)
        for peer in list(self.get_peers()):
            self._ship(first_hop, tuple(peer))
        return agent_id

    def _ship(self, envelope: AgentEnvelope, dst: LiveAddress) -> None:
        with self._lock:
            key = (dst, envelope.class_name)
            if key in self._shipped:
                outgoing = envelope.with_source(None)
            else:
                outgoing = envelope.with_source(
                    self.registry.source_of(envelope.class_name)
                )
                self._shipped.add(key)
        self.endpoint.try_send(dst, PROTO_AGENT, outgoing)

    # -- receiving -------------------------------------------------------------------

    def _on_agent(self, src: LiveAddress, envelope: AgentEnvelope) -> None:
        with self._lock:
            if envelope.agent_id in self._seen:
                self.agents_deduped += 1
                return
            self._seen.add(envelope.agent_id)
            if envelope.source is not None:
                self.registry.install(envelope.class_name, envelope.source)
                known = True
            else:
                known = self.registry.has(envelope.class_name)
            if not known:
                self._parked.setdefault(envelope.class_name, []).append(envelope)
        if not known:
            self.endpoint.try_send(src, PROTO_CLASS_REQUEST, envelope.class_name)
            return
        self._run(envelope, src)

    def _on_class_request(self, src: LiveAddress, class_name: str) -> None:
        with self._lock:
            if not self.registry.has(class_name):
                return
            source = self.registry.source_of(class_name)
        self.endpoint.try_send(src, PROTO_CLASS_RESPONSE, (class_name, source))

    def _on_class_response(self, src: LiveAddress, payload: tuple[str, str]) -> None:
        class_name, source = payload
        with self._lock:
            self.registry.install(class_name, source)
            parked = self._parked.pop(class_name, [])
        for envelope in parked:
            self._run(envelope, src)

    # -- execution --------------------------------------------------------------------

    def _run(self, envelope: AgentEnvelope, arrived_from: LiveAddress) -> None:
        if not envelope.expired:
            next_hop = envelope.hop(None)
            for peer in list(self.get_peers()):
                peer = tuple(peer)
                if peer != arrived_from and peer != tuple(envelope.initiator_address):
                    self._ship(next_hop, peer)
        with self._lock:
            agent_class = self.registry.get(envelope.class_name)
        agent = agent_class.from_state(envelope.state)
        context = LiveContext(self, envelope)
        agent.execute(context)  # outputs were sent by the context already
        with self._lock:
            self.agents_executed += 1
