"""In-memory keyword inverted index over heap-file records.

Maps each normalized keyword to the set of :class:`RecordId`s whose
object carries that tag.  The index is a cache: it is rebuilt from a
heap-file scan on open (:meth:`KeywordIndex.rebuild`) and kept current
by the :class:`~repro.storm.store.StorM` facade on every put/delete, so
it never needs its own persistence.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.storm.heapfile import RecordId
from repro.storm.objects import normalize_keyword


class KeywordIndex:
    """keyword -> set of record ids."""

    def __init__(self):
        self._postings: dict[str, set[RecordId]] = {}

    def add(self, rid: RecordId, keywords: Iterable[str]) -> None:
        """Index ``rid`` under every keyword."""
        for keyword in keywords:
            self._postings.setdefault(normalize_keyword(keyword), set()).add(rid)

    def insert_many(
        self,
        entries: Iterable[tuple[RecordId, Iterable[str]]],
        normalized: bool = False,
    ) -> None:
        """Batched :meth:`add` over ``(rid, keywords)`` pairs.

        ``normalized=True`` skips re-normalizing keywords that are
        already canonical (e.g. straight off a
        :class:`~repro.storm.objects.StoredObject`, whose constructor
        normalizes) — normalization is idempotent, so the postings are
        identical either way.
        """
        postings = self._postings
        for rid, keywords in entries:
            for keyword in keywords:
                if not normalized:
                    keyword = normalize_keyword(keyword)
                postings.setdefault(keyword, set()).add(rid)

    def snapshot(self) -> dict[str, frozenset[RecordId]]:
        """An immutable copy of every posting list (for store templates)."""
        return {
            keyword: frozenset(rids) for keyword, rids in self._postings.items()
        }

    def load_snapshot(self, snapshot: dict[str, frozenset[RecordId]]) -> None:
        """Replace all postings with a :meth:`snapshot`'s contents."""
        self._postings = {
            keyword: set(rids) for keyword, rids in snapshot.items()
        }

    def remove(self, rid: RecordId, keywords: Iterable[str]) -> None:
        """Drop ``rid`` from every keyword's postings."""
        for keyword in keywords:
            normalized = normalize_keyword(keyword)
            postings = self._postings.get(normalized)
            if postings is None:
                continue
            postings.discard(rid)
            if not postings:
                del self._postings[normalized]

    def lookup(self, keyword: str) -> frozenset[RecordId]:
        """Record ids tagged with ``keyword`` (empty set when absent)."""
        return frozenset(self._postings.get(normalize_keyword(keyword), ()))

    def lookup_ordered(self, keyword: str) -> list[RecordId]:
        """Postings in heap order: page id, then slot.

        This is the order a full heap scan visits the same records, so
        index-backed searches (:meth:`~repro.storm.store.StorM.search`,
        ``scored_search``) and scan-backed searches agree on result
        order by construction — the tie-break order scored top-k
        merging relies on.
        """
        return sorted(
            self._postings.get(normalize_keyword(keyword), ()),
            key=lambda rid: (rid.page_id, rid.slot),
        )

    def rebuild(self, entries: Iterable[tuple[RecordId, Iterable[str]]]) -> None:
        """Discard and reconstruct all postings from ``(rid, keywords)`` pairs."""
        self._postings.clear()
        for rid, keywords in entries:
            self.add(rid, keywords)

    def keywords(self) -> Iterator[str]:
        """All indexed keywords."""
        return iter(self._postings)

    @property
    def keyword_count(self) -> int:
        return len(self._postings)

    def posting_count(self, keyword: str) -> int:
        """Number of records under ``keyword``."""
        return len(self._postings.get(normalize_keyword(keyword), ()))
