"""Heap file: an unordered collection of records over slotted pages.

Records are addressed by :class:`RecordId` ``(page_id, slot)`` — the
paper's object identifiers.  A free-space map (rebuilt on open, kept
current on insert/delete) steers insertions to pages with room before
new pages are allocated.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import PageError, RecordNotFound
from repro.storm.buffer import BufferManager
from repro.storm.freespace import FreeSpaceMap
from repro.storm.page import HEADER_SIZE, SLOT_SIZE, SlottedPage


@dataclass(frozen=True, slots=True, order=True)
class RecordId:
    """Physical address of one record: page number and slot number."""

    page_id: int
    slot: int

    def __str__(self) -> str:
        return f"rid({self.page_id}:{self.slot})"


class HeapFile:
    """Record storage over a :class:`BufferManager`."""

    def __init__(self, buffer: BufferManager):
        self.buffer = buffer
        self.max_record_size = buffer.disk.page_size - HEADER_SIZE - SLOT_SIZE
        # First-fit free-space index (rebuilt by scanning on open): finds
        # the lowest page with room in O(log pages) instead of a scan.
        self._free_space = FreeSpaceMap()
        # Per-page mutation counters: bumped whenever a page's record set
        # changes, so caches of decoded records (StorM's scan cache) can
        # validate in O(1).  Compaction does not bump — it moves bytes
        # without changing any live record's slot or contents.
        self._versions: dict[int, int] = {}
        self._record_count = 0
        for page_id in range(buffer.disk.num_pages):
            with buffer.pinned(page_id) as data:
                page = SlottedPage(data)
                self._free_space.set(page_id, page.free_space)
                self._record_count += page.live_count

    # -- operations -----------------------------------------------------------

    def insert(self, record: bytes) -> RecordId:
        """Store a record, extending the file if no page has room."""
        if len(record) > self.max_record_size:
            raise PageError(
                f"record of {len(record)} bytes exceeds max "
                f"{self.max_record_size} for this page size"
            )
        needed = len(record) + SLOT_SIZE
        page_id = self._free_space.first_at_least(needed)
        while page_id is not None:
            slot = self._try_insert(page_id, record)
            if slot is not None:
                self._record_count += 1
                return RecordId(page_id, slot)
            page_id = self._free_space.first_at_least(needed, start=page_id + 1)
        page_id, data = self.buffer.new_page()
        try:
            page = SlottedPage.format(data)
            slot = page.insert(record)
            assert slot is not None, "fresh page must fit a max-size record"
            self.buffer.mark_dirty(page_id)
            self._free_space.set(page_id, page.free_space)
            self._bump_version(page_id)
        finally:
            self.buffer.unpin(page_id)
        self._record_count += 1
        return RecordId(page_id, slot)

    def _try_insert(self, page_id: int, record: bytes) -> int | None:
        with self.buffer.pinned(page_id) as data:
            page = SlottedPage(data)
            slots_before = page.slot_count
            slot = page.insert(record)
            if slot is not None:
                self.buffer.mark_dirty(page_id)
                self._bump_version(page_id)
                # The map is authoritative (updated on every mutation),
                # so the new free space follows arithmetically — no
                # O(slots) recount per insert.
                spent = len(record) + (SLOT_SIZE if slot >= slots_before else 0)
                self._free_space.set(
                    page_id, self._free_space.get(page_id) - spent
                )
            else:
                # The map overestimated this page (a stale entry).  Heal
                # it to the true value, or the second-chance probe of
                # *every* later insert re-scans this same page forever.
                self._free_space.set(page_id, page.free_space)
            return slot

    def insert_many(self, records: Iterable[bytes]) -> list[RecordId]:
        """Bulk-insert ``records``; returns one :class:`RecordId` each.

        Produces the *exact* record ids, page layouts, free-space-map
        state, and buffer access sequence that calling :meth:`insert`
        once per record would — the per-record path remains the
        semantic reference — while paying the first-fit query, the
        free-space update, and the page-directory walk once per *page
        run* instead of once per record.

        The packing rule that keeps first-fit placement identical: once
        a record of ``n`` bytes selects page ``P`` via the global
        first-fit query, every page before ``P`` is known to lack room
        for ``n`` bytes.  Following records at least that large can
        therefore pack greedily into ``P`` (no earlier page can claim
        them); the first smaller record ends the run, the map entry for
        ``P`` is settled, and a fresh global query decides its page.
        """
        records = list(records)
        rids: list[RecordId] = []
        index = 0
        total = len(records)
        while index < total:
            record = records[index]
            if len(record) > self.max_record_size:
                raise PageError(
                    f"record of {len(record)} bytes exceeds max "
                    f"{self.max_record_size} for this page size"
                )
            needed = len(record) + SLOT_SIZE
            page_id = self._free_space.first_at_least(needed)
            placed = False
            while page_id is not None:
                map_free = self._free_space.get(page_id)
                run = self._gather_run(records, index, map_free)
                data = self.buffer.pin(page_id)
                try:
                    page = SlottedPage(data)
                    slots_before = page.slot_count
                    slots = page.insert_many(run)
                    if slots:
                        self._settle_run(
                            page_id, records, index, slots, slots_before, map_free
                        )
                        rids.extend(RecordId(page_id, slot) for slot in slots)
                        index += len(slots)
                        placed = True
                        break
                    # Stale map entry (nothing fit despite the query):
                    # heal it and take the second chance, as insert does.
                    self._free_space.set(page_id, page.free_space)
                finally:
                    self.buffer.unpin(page_id)
                page_id = self._free_space.first_at_least(
                    needed, start=page_id + 1
                )
            if placed:
                continue
            page_id, data = self.buffer.new_page()
            try:
                page = SlottedPage.format(data)
                run = self._gather_run(records, index, page.free_space)
                slots = page.insert_many(run)
                assert slots, "fresh page must fit a max-size record"
                self._settle_run(page_id, records, index, slots, 0, None)
                # For a fresh page the per-record path records the real
                # free space (there is no prior map entry to adjust).
                self._free_space.set(page_id, page.free_space)
                rids.extend(RecordId(page_id, slot) for slot in slots)
                index += len(slots)
            finally:
                self.buffer.unpin(page_id)
        return rids

    def _gather_run(
        self, records: list[bytes], index: int, free_estimate: int
    ) -> list[bytes]:
        """The maximal batch starting at ``index`` allowed on one page.

        Only records no smaller than the run's opener may ride along
        (see :meth:`insert_many`); the count is additionally capped by
        how many openers could possibly fit in ``free_estimate`` bytes,
        which keeps the slice small for uniform workloads.
        """
        anchor = len(records[index])
        cap = free_estimate // (anchor + SLOT_SIZE) + 1
        stop = min(len(records), index + max(cap, 1))
        end = index + 1
        while (
            end < stop
            and anchor <= len(records[end]) <= self.max_record_size
        ):
            end += 1
        return records[index:end]

    def _settle_run(
        self,
        page_id: int,
        records: list[bytes],
        index: int,
        slots: list[int],
        slots_before: int,
        map_free: int | None,
    ) -> None:
        """Post-run bookkeeping, mirroring per-record :meth:`insert`."""
        # The per-record path pins the page once per insert; replicate
        # those accesses so buffer statistics and replacement-strategy
        # state stay bit-identical even mid-eviction workloads.
        for _ in range(len(slots) - 1):
            self.buffer.pin(page_id)
            self.buffer.unpin(page_id)
        self.buffer.mark_dirty(page_id)
        if map_free is not None:
            spent = sum(
                len(records[index + i]) for i in range(len(slots))
            ) + SLOT_SIZE * sum(1 for slot in slots if slot >= slots_before)
            self._free_space.set(page_id, map_free - spent)
        self._versions[page_id] = (
            self._versions.get(page_id, 0) + len(slots)
        )
        self._record_count += len(slots)

    def read(self, rid: RecordId) -> bytes:
        """Fetch the record at ``rid``; raises :class:`RecordNotFound`."""
        self._check_page(rid)
        with self.buffer.pinned(rid.page_id) as data:
            page = SlottedPage(data)
            try:
                return page.read(rid.slot)
            except PageError as exc:
                raise RecordNotFound(f"no record at {rid}") from exc

    def delete(self, rid: RecordId) -> None:
        """Remove the record at ``rid``."""
        self._check_page(rid)
        with self.buffer.pinned(rid.page_id) as data:
            page = SlottedPage(data)
            try:
                page.delete(rid.slot)
            except PageError as exc:
                raise RecordNotFound(f"no record at {rid}") from exc
            self.buffer.mark_dirty(rid.page_id)
            self._free_space.set(rid.page_id, page.free_space)
            self._bump_version(rid.page_id)
        self._record_count -= 1

    def exists(self, rid: RecordId) -> bool:
        """True when ``rid`` addresses a live record."""
        if not 0 <= rid.page_id < self.page_count:
            return False
        with self.buffer.pinned(rid.page_id) as data:
            page = SlottedPage(data)
            return rid.slot < page.slot_count and page.is_live(rid.slot)

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """Yield every live record, in page order."""
        for page_id in range(self.page_count):
            with self.buffer.pinned(page_id) as data:
                page = SlottedPage(data)
                records = list(page.records())
            for slot, record in records:
                yield RecordId(page_id, slot), record

    def vacuum(self) -> int:
        """Compact every page, squeezing out deletion holes.

        Slot numbers (and therefore record ids) are preserved — only the
        in-page layout changes.  Returns the number of bytes reclaimed
        into contiguous free space across the file.
        """
        reclaimed = 0
        for page_id in range(self.page_count):
            with self.buffer.pinned(page_id) as data:
                page = SlottedPage(data)
                before = page.contiguous_free_space
                page.compact()
                after = page.contiguous_free_space
                if after != before:
                    self.buffer.mark_dirty(page_id)
                    reclaimed += after - before
                self._free_space.set(page_id, page.free_space)
        return reclaimed

    # -- introspection -----------------------------------------------------------

    @property
    def page_count(self) -> int:
        return self.buffer.disk.num_pages

    @property
    def record_count(self) -> int:
        return self._record_count

    def page_version(self, page_id: int) -> int:
        """Mutation counter for one page (0 until its records change)."""
        return self._versions.get(page_id, 0)

    def _bump_version(self, page_id: int) -> None:
        self._versions[page_id] = self._versions.get(page_id, 0) + 1

    def _check_page(self, rid: RecordId) -> None:
        if not 0 <= rid.page_id < self.page_count:
            raise RecordNotFound(f"no record at {rid} (page out of range)")
