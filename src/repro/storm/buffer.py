"""The buffer manager: a fixed pool of page frames over a disk.

Pages are pinned into frames with :meth:`BufferManager.pin` (or the
``with buffer.pinned(...)`` context manager), mutated in place, marked
dirty, and written back on eviction or :meth:`BufferManager.flush_all`.
When no frame is free the pluggable
:class:`~repro.storm.replacement.ReplacementStrategy` picks a victim
among unpinned frames; pinned pages are never evicted.

Every logical access is counted in :class:`AccessStats`; the simulation
layer converts the *physical* read count into simulated I/O time, which
is how StorM's buffer behaviour shows up in BestPeer's agent service
times.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import BufferError_, BufferFullError, PageError
from repro.storm.disk import Disk
from repro.storm.replacement import LruStrategy, ReplacementStrategy


@dataclass
class AccessStats:
    """Cumulative buffer-access counters."""

    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0

    @property
    def hits(self) -> int:
        return self.logical_reads - self.physical_reads

    @property
    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 0.0
        return self.hits / self.logical_reads

    def snapshot(self) -> "AccessStats":
        """A frozen copy, e.g. to diff before/after an operation."""
        return AccessStats(self.logical_reads, self.physical_reads, self.physical_writes)

    def since(self, earlier: "AccessStats") -> "AccessStats":
        """The delta between this snapshot and an ``earlier`` one."""
        return AccessStats(
            self.logical_reads - earlier.logical_reads,
            self.physical_reads - earlier.physical_reads,
            self.physical_writes - earlier.physical_writes,
        )


class _Frame:
    __slots__ = ("page_id", "data", "pin_count", "dirty")

    def __init__(self):
        self.page_id: int | None = None
        self.data: bytearray | None = None
        self.pin_count = 0
        self.dirty = False


class BufferManager:
    """Fixed-size page cache with pluggable replacement."""

    def __init__(
        self,
        disk: Disk,
        pool_size: int = 64,
        strategy: ReplacementStrategy | None = None,
    ):
        if pool_size < 1:
            raise BufferError_(f"pool size must be >= 1, got {pool_size}")
        self.disk = disk
        self.pool_size = pool_size
        self.strategy = strategy if strategy is not None else LruStrategy()
        self.stats = AccessStats()
        self._frames = [_Frame() for _ in range(pool_size)]
        self._free: list[int] = list(range(pool_size))
        self._page_table: dict[int, int] = {}
        # Occupied frames whose pin count is zero — the eviction
        # candidates.  Maintained on every pin/unpin/evict so victim
        # selection never scans the whole pool.
        self._unpinned: set[int] = set()

    # -- pin / unpin ----------------------------------------------------------

    def pin(self, page_id: int) -> bytearray:
        """Pin ``page_id`` into a frame and return its live buffer.

        The returned bytearray is the frame's actual storage: mutate it
        and call :meth:`mark_dirty` to persist changes.  Every ``pin``
        needs a matching :meth:`unpin`.
        """
        self.stats.logical_reads += 1
        frame_id = self._page_table.get(page_id)
        if frame_id is not None:
            frame = self._frames[frame_id]
            frame.pin_count += 1
            if frame.pin_count == 1:
                self._unpinned.discard(frame_id)
            self.strategy.on_page_accessed(frame_id)
            assert frame.data is not None
            return frame.data
        frame_id = self._grab_frame()
        frame = self._frames[frame_id]
        self.stats.physical_reads += 1
        frame.data = self.disk.read_page(page_id)
        frame.page_id = page_id
        frame.pin_count = 1
        frame.dirty = False
        self._page_table[page_id] = frame_id
        self.strategy.on_page_loaded(frame_id)
        return frame.data

    def unpin(self, page_id: int) -> None:
        """Release one pin on ``page_id``."""
        frame_id = self._page_table.get(page_id)
        if frame_id is None:
            raise PageError(f"page {page_id} is not resident")
        frame = self._frames[frame_id]
        if frame.pin_count <= 0:
            raise BufferError_(f"page {page_id} is not pinned")
        frame.pin_count -= 1
        if frame.pin_count == 0:
            self._unpinned.add(frame_id)

    @contextmanager
    def pinned(self, page_id: int):
        """Context manager pairing pin/unpin::

        with buffer.pinned(page_id) as data:
            ...
        """
        data = self.pin(page_id)
        try:
            yield data
        finally:
            self.unpin(page_id)

    def new_page(self) -> tuple[int, bytearray]:
        """Allocate a fresh page on disk and pin it (zeroed, dirty)."""
        page_id = self.disk.allocate_page()
        self.stats.logical_reads += 1
        frame_id = self._grab_frame()
        frame = self._frames[frame_id]
        frame.data = bytearray(self.disk.page_size)
        frame.page_id = page_id
        frame.pin_count = 1
        frame.dirty = True
        self._page_table[page_id] = frame_id
        self.strategy.on_page_loaded(frame_id)
        return page_id, frame.data

    def mark_dirty(self, page_id: int) -> None:
        """Record that the pinned page's buffer was modified."""
        frame = self._resident_frame(page_id)
        if frame.pin_count <= 0:
            raise BufferError_(f"page {page_id} must be pinned to be dirtied")
        frame.dirty = True

    # -- flushing ---------------------------------------------------------------

    def flush_page(self, page_id: int) -> None:
        """Write one resident page back to disk if dirty."""
        frame_id = self._page_table.get(page_id)
        if frame_id is None:
            return
        frame = self._frames[frame_id]
        if frame.dirty:
            assert frame.data is not None
            self.disk.write_page(page_id, bytes(frame.data))
            self.stats.physical_writes += 1
            frame.dirty = False

    def flush_all(self) -> None:
        """Write every dirty resident page back to disk."""
        for page_id in list(self._page_table):
            self.flush_page(page_id)

    def dirty_pages(self) -> list[tuple[int, bytes]]:
        """Snapshot of every dirty resident page's (id, contents).

        Used by the WAL: a commit logs these images without cleaning
        them (no-force); they reach the main file on eviction or
        checkpoint.
        """
        images = []
        for page_id, frame_id in self._page_table.items():
            frame = self._frames[frame_id]
            if frame.dirty:
                assert frame.data is not None
                images.append((page_id, bytes(frame.data)))
        return images

    # -- introspection ------------------------------------------------------------

    def is_resident(self, page_id: int) -> bool:
        """True when the page currently occupies a frame."""
        return page_id in self._page_table

    def pin_count(self, page_id: int) -> int:
        """Current pin count (0 when not resident)."""
        frame_id = self._page_table.get(page_id)
        if frame_id is None:
            return 0
        return self._frames[frame_id].pin_count

    @property
    def resident_pages(self) -> set[int]:
        """Page ids currently cached."""
        return set(self._page_table)

    # -- internals ----------------------------------------------------------------

    def _resident_frame(self, page_id: int) -> _Frame:
        frame_id = self._page_table.get(page_id)
        if frame_id is None:
            raise PageError(f"page {page_id} is not resident")
        return self._frames[frame_id]

    def _grab_frame(self) -> int:
        if self._free:
            return self._free.pop()
        if not self._unpinned:
            raise BufferFullError(
                f"all {self.pool_size} frames are pinned; cannot evict"
            )
        # Ascending frame-id order, exactly as the former full-pool scan
        # produced — order-sensitive strategies see the same candidates.
        candidates = sorted(self._unpinned)
        victim = self.strategy.choose_victim(candidates)
        if victim not in self._unpinned:
            raise BufferError_(
                f"strategy {self.strategy.name} chose pinned/unknown frame {victim}"
            )
        self._evict(victim)
        return victim

    def _evict(self, frame_id: int) -> None:
        frame = self._frames[frame_id]
        assert frame.page_id is not None
        if frame.dirty:
            assert frame.data is not None
            self.disk.write_page(frame.page_id, bytes(frame.data))
            self.stats.physical_writes += 1
        del self._page_table[frame.page_id]
        self.strategy.on_page_evicted(frame_id)
        self._unpinned.discard(frame_id)
        frame.page_id = None
        frame.data = None
        frame.pin_count = 0
        frame.dirty = False
