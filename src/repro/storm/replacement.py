"""Extensible buffer-replacement strategies.

StorM's defining feature (per the SIGMOD'99 paper it embodies) is that
the buffer manager's replacement policy is a pluggable component.  A
strategy observes frame lifecycle events (``loaded``, ``accessed``,
``evicted``) and, when the pool is full, picks a victim among the
currently evictable (unpinned) frames.

Frames are identified by integer frame ids assigned by the buffer
manager.  ``choose_victim`` must return a member of ``candidates``;
the buffer manager validates this, so a buggy strategy fails loudly.
"""

from __future__ import annotations

import random
from collections.abc import Collection

from repro.errors import BufferError_


class ReplacementStrategy:
    """Interface observed by :class:`~repro.storm.buffer.BufferManager`."""

    name = "abstract"

    def on_page_loaded(self, frame_id: int) -> None:
        """A page was read into ``frame_id``."""

    def on_page_accessed(self, frame_id: int) -> None:
        """The page in ``frame_id`` was pinned (after load)."""

    def on_page_evicted(self, frame_id: int) -> None:
        """The page in ``frame_id`` was evicted."""

    def choose_victim(self, candidates: Collection[int]) -> int:
        """Pick the frame to evict among ``candidates`` (never empty).

        The buffer manager always passes candidates in ascending
        frame-id order, so strategies that break ties positionally
        (min/max over equal stamps, clock sweeps) behave identically
        however the evictable set is tracked internally.
        """
        raise NotImplementedError


class _TimestampStrategy(ReplacementStrategy):
    """Shared machinery: per-frame logical timestamps."""

    def __init__(self):
        self._clock = 0
        self._stamp: dict[int, int] = {}

    def _tick(self, frame_id: int) -> None:
        self._clock += 1
        self._stamp[frame_id] = self._clock

    def on_page_evicted(self, frame_id: int) -> None:
        self._stamp.pop(frame_id, None)


class LruStrategy(_TimestampStrategy):
    """Evict the least recently used frame (the classic default)."""

    name = "lru"

    def on_page_loaded(self, frame_id: int) -> None:
        self._tick(frame_id)

    def on_page_accessed(self, frame_id: int) -> None:
        self._tick(frame_id)

    def choose_victim(self, candidates: Collection[int]) -> int:
        return min(candidates, key=lambda frame_id: self._stamp.get(frame_id, 0))


class MruStrategy(_TimestampStrategy):
    """Evict the most recently used frame (wins on sequential floods)."""

    name = "mru"

    def on_page_loaded(self, frame_id: int) -> None:
        self._tick(frame_id)

    def on_page_accessed(self, frame_id: int) -> None:
        self._tick(frame_id)

    def choose_victim(self, candidates: Collection[int]) -> int:
        return max(candidates, key=lambda frame_id: self._stamp.get(frame_id, 0))


class FifoStrategy(_TimestampStrategy):
    """Evict the longest-resident frame, ignoring accesses."""

    name = "fifo"

    def on_page_loaded(self, frame_id: int) -> None:
        self._tick(frame_id)

    def choose_victim(self, candidates: Collection[int]) -> int:
        return min(candidates, key=lambda frame_id: self._stamp.get(frame_id, 0))


class ClockStrategy(ReplacementStrategy):
    """Second-chance clock: one reference bit per frame, rotating hand."""

    name = "clock"

    def __init__(self):
        self._referenced: dict[int, bool] = {}
        self._ring: list[int] = []
        self._hand = 0

    def on_page_loaded(self, frame_id: int) -> None:
        if frame_id not in self._referenced:
            self._ring.append(frame_id)
        self._referenced[frame_id] = True

    def on_page_accessed(self, frame_id: int) -> None:
        self._referenced[frame_id] = True

    def on_page_evicted(self, frame_id: int) -> None:
        self._referenced.pop(frame_id, None)
        index = self._ring.index(frame_id)
        self._ring.pop(index)
        if index < self._hand:
            self._hand -= 1
        if self._ring:
            self._hand %= len(self._ring)
        else:
            self._hand = 0

    def choose_victim(self, candidates: Collection[int]) -> int:
        candidate_set = set(candidates)
        # Two full sweeps suffice: the first clears reference bits, the
        # second must find a clear candidate.
        for _ in range(2 * len(self._ring)):
            frame_id = self._ring[self._hand]
            if frame_id in candidate_set:
                if self._referenced.get(frame_id, False):
                    self._referenced[frame_id] = False
                else:
                    self._hand = (self._hand + 1) % len(self._ring)
                    return frame_id
            self._hand = (self._hand + 1) % len(self._ring)
        # All candidates kept their reference bit set twice - impossible,
        # but fall back deterministically rather than loop forever.
        return min(candidate_set)


class RandomStrategy(ReplacementStrategy):
    """Evict a uniformly random candidate (seeded, deterministic)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose_victim(self, candidates: Collection[int]) -> int:
        return self._rng.choice(sorted(candidates))


class LruKStrategy(ReplacementStrategy):
    """LRU-K: evict the frame with the oldest K-th most recent access.

    Frames with fewer than K accesses are preferred victims (infinite
    backward K-distance), ordered by their oldest access.
    """

    name = "lru-k"

    def __init__(self, k: int = 2):
        if k < 1:
            raise BufferError_(f"LRU-K needs k >= 1, got {k}")
        self.k = k
        self._clock = 0
        self._history: dict[int, list[int]] = {}

    def _touch(self, frame_id: int) -> None:
        self._clock += 1
        history = self._history.setdefault(frame_id, [])
        history.append(self._clock)
        if len(history) > self.k:
            history.pop(0)

    def on_page_loaded(self, frame_id: int) -> None:
        self._history[frame_id] = []
        self._touch(frame_id)

    def on_page_accessed(self, frame_id: int) -> None:
        self._touch(frame_id)

    def on_page_evicted(self, frame_id: int) -> None:
        self._history.pop(frame_id, None)

    def _backward_k_distance(self, frame_id: int) -> tuple[int, int]:
        history = self._history.get(frame_id, [])
        if len(history) < self.k:
            # Infinite distance: sort before all finite ones, oldest first.
            oldest = history[0] if history else 0
            return (0, oldest)
        return (1, history[0])

    def choose_victim(self, candidates: Collection[int]) -> int:
        return min(candidates, key=self._backward_k_distance)


_STRATEGIES = {
    "lru": LruStrategy,
    "mru": MruStrategy,
    "fifo": FifoStrategy,
    "clock": ClockStrategy,
    "random": RandomStrategy,
    "lru-k": LruKStrategy,
}


def make_strategy(name: str, **kwargs) -> ReplacementStrategy:
    """Construct a replacement strategy by name (see ``_STRATEGIES``)."""
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise BufferError_(f"unknown strategy {name!r}; known: {known}") from None
    return factory(**kwargs)
