"""Page-granular storage backends.

A :class:`Disk` stores fixed-size pages addressed by integer page id.
:class:`InMemoryDisk` backs simulations (fast, no filesystem);
:class:`FileDisk` stores pages in a real file so StorM is genuinely
persistent across process restarts.
"""

from __future__ import annotations

import os

from repro.errors import PageError, StorageClosedError

DEFAULT_PAGE_SIZE = 4096


class Disk:
    """Abstract page store."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 64:
            raise ValueError(f"page size must be >= 64 bytes, got {page_size}")
        self.page_size = page_size
        self.reads = 0
        self.writes = 0

    @property
    def num_pages(self) -> int:
        raise NotImplementedError

    def allocate_page(self) -> int:
        """Append a zeroed page; returns its page id."""
        raise NotImplementedError

    def read_page(self, page_id: int) -> bytearray:
        raise NotImplementedError

    def write_page(self, page_id: int, data: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release backing resources (idempotent)."""

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise PageError(
                f"page id {page_id} out of range [0, {self.num_pages})"
            )

    def _check_data(self, data: bytes) -> None:
        if len(data) != self.page_size:
            raise PageError(
                f"page write of {len(data)} bytes; page size is {self.page_size}"
            )


class InMemoryDisk(Disk):
    """Pages held in process memory; the default simulation backend."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self._pages: list[bytearray] = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def allocate_page(self) -> int:
        self._pages.append(bytearray(self.page_size))
        return len(self._pages) - 1

    def read_page(self, page_id: int) -> bytearray:
        self._check_page_id(page_id)
        self.reads += 1
        return bytearray(self._pages[page_id])

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._check_data(data)
        self.writes += 1
        self._pages[page_id] = bytearray(data)


class FileDisk(Disk):
    """Pages stored in a real file: StorM's persistence across restarts."""

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self.path = path
        exists = os.path.exists(path)
        self._file = open(path, "r+b" if exists else "w+b")
        size = os.fstat(self._file.fileno()).st_size
        if size % page_size != 0:
            self._file.close()
            raise PageError(
                f"{path} has size {size}, not a multiple of page size {page_size}"
            )
        self._num_pages = size // page_size
        self._closed = False

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def allocate_page(self) -> int:
        self._check_open()
        page_id = self._num_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        self._num_pages += 1
        return page_id

    def read_page(self, page_id: int) -> bytearray:
        self._check_open()
        self._check_page_id(page_id)
        self.reads += 1
        self._file.seek(page_id * self.page_size)
        return bytearray(self._file.read(self.page_size))

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_open()
        self._check_page_id(page_id)
        self._check_data(data)
        self.writes += 1
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    def flush(self) -> None:
        """Force file contents to the operating system."""
        self._check_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageClosedError(f"disk {self.path} is closed")
