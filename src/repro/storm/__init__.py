"""StorM: a pure-Python reimplementation of the paper's storage manager.

The BestPeer prototype stored each node's sharable data in StorM, a "100%
Java persistent storage manager" built around *extensible buffer
replacement strategies* (Bressan, Goh, Ooi, Tan — SIGMOD 1999).  This
package mirrors that design one layer at a time:

``disk``          page-granular storage backends (in-memory and real file)
``page``          slotted-page record layout with compaction
``buffer``        buffer pool with pluggable replacement strategies
``replacement``   LRU, MRU, FIFO, Clock, Random, LRU-K strategies
``heapfile``      heap file of records addressed by (page, slot)
``objects``       the stored-object model: keywords + payload
``index``         keyword inverted index
``store``         the ``StorM`` facade BestPeer nodes program against
"""

from repro.storm.btree import BPlusTree
from repro.storm.buffer import AccessStats, BufferManager
from repro.storm.disk import Disk, FileDisk, InMemoryDisk
from repro.storm.heapfile import HeapFile, RecordId
from repro.storm.index import KeywordIndex
from repro.storm.objects import StoredObject
from repro.storm.page import SlottedPage
from repro.storm.pindex import PersistentKeywordIndex
from repro.storm.replacement import (
    ClockStrategy,
    FifoStrategy,
    LruKStrategy,
    LruStrategy,
    MruStrategy,
    RandomStrategy,
    ReplacementStrategy,
    make_strategy,
)
from repro.storm.store import StorM
from repro.storm.wal import WriteAheadLog

__all__ = [
    "Disk",
    "InMemoryDisk",
    "FileDisk",
    "SlottedPage",
    "BufferManager",
    "AccessStats",
    "ReplacementStrategy",
    "LruStrategy",
    "MruStrategy",
    "FifoStrategy",
    "ClockStrategy",
    "RandomStrategy",
    "LruKStrategy",
    "make_strategy",
    "HeapFile",
    "RecordId",
    "StoredObject",
    "KeywordIndex",
    "BPlusTree",
    "PersistentKeywordIndex",
    "WriteAheadLog",
    "StorM",
]
