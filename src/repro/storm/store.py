"""The StorM facade: what a BestPeer node programs against.

Composes disk + buffer manager + heap file + keyword index behind the
small API the paper's StorM agent needs: store keyword-tagged objects,
look them up by record id, and search by keyword — either through the
inverted index or by the full object scan the paper's agent performs
("the agent makes a comparison for each object stored in the
Shared-StorM database with its query").

Search results carry ``objects_examined`` and a buffer-stats delta so
the simulation layer can convert real buffer behaviour into simulated
agent service time.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import PageError, StorageClosedError, StormError
from repro.storm.buffer import AccessStats, BufferManager
from repro.storm.disk import Disk, InMemoryDisk
from repro.storm.heapfile import HeapFile, RecordId
from repro.storm.index import KeywordIndex
from repro.storm.objects import StoredObject
from repro.storm.page import SlottedPage
from repro.storm.replacement import ReplacementStrategy

#: Default for :class:`StorM`'s decoded-scan cache.  Tests monkeypatch
#: this to ``False`` to prove the cache changes no observable result.
SCAN_CACHE_DEFAULT = True

#: Set ``REPRO_NO_BULK_LOAD=1`` to make :meth:`StorM.put_many` fall back
#: to the per-record path.  Checked per call (not at import), so
#: ``--jobs`` worker processes inherit the bypass through the
#: environment like the other fast-path switches.
BULK_LOAD_ENV_VAR = "REPRO_NO_BULK_LOAD"


def bulk_load_disabled() -> bool:
    """True when the environment disables the bulk-load fast path."""
    return os.environ.get(BULK_LOAD_ENV_VAR, "") not in ("", "0")


@dataclass
class ScoredSearchResult:
    """Outcome of one *scored* keyword search at one node.

    Matches are ``(score, rid, object)`` triples ordered best-first:
    score descending, ties broken by heap order (page id, then slot) so
    any two stores holding the same records rank them identically —
    the deterministic order the in-network top-k merge depends on.
    """

    keyword: str
    matches: list[tuple[float, RecordId, StoredObject]] = field(default_factory=list)
    #: how many stored objects were compared against the query
    objects_examined: int = 0
    #: buffer activity caused by this search
    io: AccessStats = field(default_factory=AccessStats)
    #: matches cut by the ``k`` bound (scored, then never surfaced)
    truncated: int = 0

    @property
    def match_count(self) -> int:
        return len(self.matches)

    @property
    def answer_bytes(self) -> int:
        """Total payload bytes across surfaced matches."""
        return sum(obj.size for _, _, obj in self.matches)

    @property
    def scores(self) -> list[float]:
        """The surfaced scores, best first."""
        return [score for score, _, _ in self.matches]


def _settle_scored(
    result: ScoredSearchResult,
    scored: list[tuple[float, RecordId, StoredObject]],
    k: int | None,
) -> None:
    """Order ``scored`` best-first and apply the ``k`` bound.

    Shared by the index and scan paths so both rank (and truncate)
    identically; the sort is stable over input already in heap order,
    so equal scores keep their (page, slot) tie-break.
    """
    scored.sort(key=lambda match: -match[0])
    if k is not None and len(scored) > k:
        result.truncated = len(scored) - k
        del scored[k:]
    result.matches = scored


def _check_k(k: int | None) -> None:
    if k is not None and k < 1:
        raise StormError(f"scored search needs k >= 1 or None, got {k}")


@dataclass
class SearchResult:
    """Outcome of one keyword search at one node."""

    keyword: str
    matches: list[tuple[RecordId, StoredObject]] = field(default_factory=list)
    #: how many stored objects were compared against the query
    objects_examined: int = 0
    #: buffer activity caused by this search
    io: AccessStats = field(default_factory=AccessStats)

    @property
    def match_count(self) -> int:
        return len(self.matches)

    @property
    def answer_bytes(self) -> int:
        """Total payload bytes across matches."""
        return sum(obj.size for _, obj in self.matches)


class StorM:
    """A node-local persistent object store with keyword search."""

    def __init__(
        self,
        disk: Disk | None = None,
        pool_size: int = 512,
        strategy: ReplacementStrategy | None = None,
        index_disk: Disk | None = None,
        index_pool_size: int = 64,
        wal_path: str | None = None,
        scan_cache: bool | None = None,
        index_snapshot: dict | None = None,
    ):
        self.disk = disk if disk is not None else InMemoryDisk()
        self._closed = False
        self._scan_cache_enabled = (
            SCAN_CACHE_DEFAULT if scan_cache is None else scan_cache
        )
        # page_id -> (page version, decoded records).  The buffer is still
        # pinned/unpinned for every page on every scan — the simulated I/O
        # accounting is untouched — only the CPU-side decode is reused.
        self._scan_cache: dict[int, tuple[int, list[tuple[RecordId, StoredObject]]]] = {}
        self.scan_cache_hits = 0
        self.scan_cache_misses = 0
        if wal_path is not None:
            # Crash recovery happens before anything reads the heap:
            # committed page images in the log supersede the heap file.
            from repro.storm.wal import WriteAheadLog

            self.wal: WriteAheadLog | None = WriteAheadLog(wal_path)
            self._recover_from_wal()
        else:
            self.wal = None
        self.buffer = BufferManager(self.disk, pool_size=pool_size, strategy=strategy)
        self.heap = HeapFile(self.buffer)
        if index_disk is not None:
            # Persistent index: survives reopen with no heap rescan.
            if index_snapshot is not None:
                raise StormError(
                    "index_snapshot applies to the in-memory index only"
                )
            from repro.storm.pindex import PersistentKeywordIndex

            self.index_disk: Disk | None = index_disk
            index_buffer = BufferManager(index_disk, pool_size=index_pool_size)
            fresh_index = index_disk.num_pages == 0
            self.index = PersistentKeywordIndex(index_buffer)
            if fresh_index and self.heap.record_count:
                self.index.rebuild(self._index_entries())
        else:
            self.index_disk = None
            self.index = KeywordIndex()
            if index_snapshot is not None:
                # A store template carries the prototype's postings, so
                # a clone skips the decode-everything heap rescan.
                self.index.load_snapshot(index_snapshot)
            elif self.heap.record_count:
                self.index.rebuild(self._index_entries())

    def _index_entries(self):
        return (
            (rid, StoredObject.decode(record).keywords)
            for rid, record in self.heap.scan()
        )

    def _recover_from_wal(self) -> None:
        """Replay committed page images onto the heap disk, then reset."""
        assert self.wal is not None
        replayed = 0
        for _lsn, page_id, data in self.wal.replay():
            while page_id >= self.disk.num_pages:
                self.disk.allocate_page()
            self.disk.write_page(page_id, data)
            replayed += 1
        if replayed:
            self.wal.truncate()

    # -- mutation ----------------------------------------------------------------

    def put(self, keywords: Iterable[str], payload: bytes) -> RecordId:
        """Store a new sharable object; returns its record id."""
        self._check_open()
        obj = StoredObject(tuple(keywords), bytes(payload))
        rid = self.heap.insert(obj.encode())
        self.index.add(rid, obj.keywords)
        return rid

    def put_many(
        self,
        items: Iterable[tuple[Sequence[str], bytes]],
        durable: bool = False,
    ) -> list[RecordId]:
        """Store a batch of ``(keywords, payload)`` objects in one pass.

        The bulk path packs records page-at-a-time with deferred
        free-space accounting (:meth:`HeapFile.insert_many`) and updates
        the keyword index in one batch; record ids, index contents,
        search results, and buffer statistics are bit-identical to a
        :meth:`put` loop (``REPRO_NO_BULK_LOAD=1`` forces that loop).

        ``durable=True`` additionally issues one grouped
        :meth:`commit` for the whole batch — equivalent to a per-record
        loop followed by a single commit; requires a WAL-backed store.
        """
        self._check_open()
        objs = [
            StoredObject(tuple(keywords), bytes(payload))
            for keywords, payload in items
        ]
        if bulk_load_disabled():
            rids = []
            for obj in objs:
                rid = self.heap.insert(obj.encode())
                self.index.add(rid, obj.keywords)
                rids.append(rid)
        else:
            records = [obj.encode() for obj in objs]
            # An oversized record leaves the per-record loop half done:
            # everything before it stored *and indexed*.  Split there so
            # the failure state matches exactly.
            bad = next(
                (
                    i
                    for i, record in enumerate(records)
                    if len(record) > self.heap.max_record_size
                ),
                None,
            )
            prefix = records if bad is None else records[:bad]
            rids = self.heap.insert_many(prefix)
            self.index.insert_many(
                zip(rids, (obj.keywords for obj in objs)), normalized=True
            )
            if bad is not None:
                raise PageError(
                    f"record of {len(records[bad])} bytes exceeds max "
                    f"{self.heap.max_record_size} for this page size"
                )
        if durable:
            self.commit()
        return rids

    def share_many(
        self,
        items: Iterable[tuple[Sequence[str], bytes]],
        durable: bool = False,
    ) -> list[RecordId]:
        """Alias of :meth:`put_many` under the node-facing name."""
        return self.put_many(items, durable=durable)

    def delete(self, rid: RecordId) -> None:
        """Remove an object (and its index postings)."""
        self._check_open()
        obj = self.get(rid)
        self.heap.delete(rid)
        self.index.remove(rid, obj.keywords)

    # -- lookup ------------------------------------------------------------------

    def get(self, rid: RecordId) -> StoredObject:
        """Fetch one object by record id."""
        self._check_open()
        return StoredObject.decode(self.heap.read(rid))

    def scan(self) -> Iterator[tuple[RecordId, StoredObject]]:
        """Yield every stored object in page order.

        Pages whose contents have not changed since the last scan (checked
        via :meth:`HeapFile.page_version`) reuse their previously decoded
        objects instead of re-parsing every record.  Each page is pinned
        and unpinned exactly as an uncached scan would, so buffer hit/miss
        statistics — and therefore simulated I/O cost — are identical.
        """
        self._check_open()
        heap = self.heap
        for page_id in range(heap.page_count):
            version = heap.page_version(page_id)
            cached = self._scan_cache.get(page_id) if self._scan_cache_enabled else None
            data = heap.buffer.pin(page_id)
            try:
                if cached is not None and cached[0] == version:
                    self.scan_cache_hits += 1
                    entries = cached[1]
                else:
                    self.scan_cache_misses += 1
                    page = SlottedPage(data)
                    entries = [
                        (RecordId(page_id, slot), StoredObject.decode(record))
                        for slot, record in page.records()
                    ]
                    if self._scan_cache_enabled:
                        self._scan_cache[page_id] = (version, entries)
            finally:
                heap.buffer.unpin(page_id)
            yield from entries

    def search(self, keyword: str) -> SearchResult:
        """Keyword search via the inverted index (reads only matching pages).

        Returns the same match set, in the same heap order, as
        :meth:`search_scan` — both paths now rank through the index's
        :meth:`~repro.storm.index.KeywordIndex.lookup_ordered` heap
        ordering, pinned by the consistency battery in
        ``tests/storm/test_scored_search.py``.
        """
        self._check_open()
        before = self.buffer.stats.snapshot()
        result = SearchResult(keyword)
        rids = self.index.lookup_ordered(keyword)
        for rid in rids:
            result.matches.append((rid, self.get(rid)))
        result.objects_examined = len(rids)
        result.io = self.buffer.stats.since(before)
        return result

    def scored_search(self, keyword: str, k: int | None = None) -> ScoredSearchResult:
        """Scored keyword search via the inverted index.

        Each match carries a TF-style score
        (:meth:`~repro.storm.objects.StoredObject.score`: matching-tag
        count over total tag count) and the result is ordered score
        descending with heap-order (page, slot) tie-breaks.  ``k``
        bounds how many matches are surfaced; the cut count is reported
        in :attr:`ScoredSearchResult.truncated`.  Scores come from the
        decoded object's full tag tuple — never from the postings sets,
        which deduplicate and therefore cannot see repeated tags — so
        the index and scan paths score identically.
        """
        self._check_open()
        _check_k(k)
        before = self.buffer.stats.snapshot()
        result = ScoredSearchResult(keyword)
        scored = []
        rids = self.index.lookup_ordered(keyword)
        for rid in rids:
            obj = self.get(rid)
            scored.append((obj.score(keyword), rid, obj))
        result.objects_examined = len(rids)
        _settle_scored(result, scored, k)
        result.io = self.buffer.stats.since(before)
        return result

    def scored_search_scan(
        self, keyword: str, k: int | None = None
    ) -> ScoredSearchResult:
        """Scored keyword search by full scan — the paper's agent walk.

        Same scores, order, and ``k`` semantics as :meth:`scored_search`
        (the consistency battery asserts bit-equality), at the full-scan
        cost profile of :meth:`search_scan`.
        """
        self._check_open()
        _check_k(k)
        before = self.buffer.stats.snapshot()
        result = ScoredSearchResult(keyword)
        scored = []
        for rid, obj in self.scan():
            result.objects_examined += 1
            score = obj.score(keyword)
            if score > 0.0:
                scored.append((score, rid, obj))
        _settle_scored(result, scored, k)
        result.io = self.buffer.stats.since(before)
        return result

    def search_scan(self, keyword: str) -> SearchResult:
        """Keyword search by full scan — the paper's StorM agent behaviour.

        Every stored object is compared against the query, touching every
        page of the heap file; this is the default query path in the
        reproduction because it is what the evaluated prototype did.
        """
        self._check_open()
        before = self.buffer.stats.snapshot()
        result = SearchResult(keyword)
        for rid, obj in self.scan():
            result.objects_examined += 1
            if obj.matches(keyword):
                result.matches.append((rid, obj))
        result.io = self.buffer.stats.since(before)
        return result

    def grep(self, needle: bytes) -> SearchResult:
        """Content search: objects whose *payload* contains ``needle``.

        This is the finer granularity the paper motivates ("most of the
        existing P2P systems ... ignore the content of the file"): a
        full scan comparing payload bytes, with the same cost accounting
        as :meth:`search_scan`.
        """
        self._check_open()
        needle = bytes(needle)
        before = self.buffer.stats.snapshot()
        result = SearchResult(keyword=f"grep:{needle!r}")
        for rid, obj in self.scan():
            result.objects_examined += 1
            if needle in obj.payload:
                result.matches.append((rid, obj))
        result.io = self.buffer.stats.since(before)
        return result

    def vacuum(self) -> int:
        """Compact deletion holes in the heap; returns bytes reclaimed."""
        self._check_open()
        return self.heap.vacuum()

    # -- lifecycle -----------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of stored objects."""
        return self.heap.record_count

    @property
    def stats(self) -> AccessStats:
        """Cumulative buffer statistics."""
        return self.buffer.stats

    def flush(self) -> None:
        """Write all dirty pages (heap and index) to the backing disks."""
        self._check_open()
        self.buffer.flush_all()
        if self.index_disk is not None:
            self.index.flush()

    # -- durability (WAL) -----------------------------------------------------------

    def commit(self) -> None:
        """Make everything stored so far crash-durable.

        Logs the image of every dirty page plus a commit marker and
        syncs the WAL — one sequential write.  Data pages stay dirty in
        the pool (no-force); they reach the heap file on eviction or at
        the next :meth:`checkpoint`.
        """
        self._check_open()
        if self.wal is None:
            raise StormError("this store was opened without a WAL")
        for page_id, image in self.buffer.dirty_pages():
            self.wal.append(page_id, image)
        self.wal.mark_commit()
        self.wal.sync()

    def checkpoint(self) -> None:
        """Flush data pages, then truncate the (now redundant) log."""
        self._check_open()
        if self.wal is None:
            raise StormError("this store was opened without a WAL")
        self.buffer.flush_all()
        if hasattr(self.disk, "flush"):
            self.disk.flush()
        self.wal.truncate()

    def crash(self) -> None:
        """Abandon the store as a crash would: dirty pool contents are
        lost, nothing is flushed.  For durability tests."""
        if self._closed:
            return
        self.disk.close()
        if self.wal is not None:
            self.wal.close()
        if self.index_disk is not None:
            self.index_disk.close()
        self._closed = True

    def close(self) -> None:
        """Flush and release the backing disk(s) (idempotent)."""
        if self._closed:
            return
        self.buffer.flush_all()
        if self.wal is not None:
            self.wal.truncate()  # everything is in the heap file now
            self.wal.close()
        self.disk.close()
        if self.index_disk is not None:
            self.index.flush()
            self.index_disk.close()
        self._closed = True

    def __enter__(self) -> "StorM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageClosedError("StorM store is closed")
