"""Slotted-page record layout.

Classic textbook layout over a fixed-size byte buffer::

    +--------+-----------------------+---------------+------------------+
    | header | records (grow up) ... | free space    | slot dir (down)  |
    +--------+-----------------------+---------------+------------------+

Header (4 bytes): ``u16 slot_count``, ``u16 free_ptr`` (offset of the
next record byte).  Each slot-directory entry (4 bytes, allocated from
the page end backwards) is ``u16 offset, u16 length``; ``offset == 0``
marks a dead (deleted) slot, which is safe because live records start at
offset 4 or later.  Deleting leaves a hole; :meth:`SlottedPage.insert`
compacts the page lazily when contiguous free space is insufficient but
total free space is not.
"""

from __future__ import annotations

import struct
from collections import deque
from collections.abc import Iterator, Sequence

from repro.errors import PageError

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size


class SlottedPage:
    """A mutable view of one page buffer with slotted-record semantics."""

    def __init__(self, data: bytearray):
        if len(data) < HEADER_SIZE + SLOT_SIZE:
            raise PageError(f"page of {len(data)} bytes is too small")
        if len(data) > 0xFFFF:
            raise PageError(f"page of {len(data)} bytes exceeds u16 offsets")
        self.data = data
        self.page_size = len(data)

    # -- construction ---------------------------------------------------------

    @classmethod
    def format(cls, data: bytearray) -> "SlottedPage":
        """Initialize a zeroed buffer as an empty slotted page."""
        page = cls(data)
        _HEADER.pack_into(page.data, 0, 0, HEADER_SIZE)
        return page

    # -- header access --------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def _free_ptr(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[1]

    def _set_header(self, slot_count: int, free_ptr: int) -> None:
        _HEADER.pack_into(self.data, 0, slot_count, free_ptr)

    def _slot_entry(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise PageError(f"slot {slot} out of range [0, {self.slot_count})")
        position = self.page_size - SLOT_SIZE * (slot + 1)
        return _SLOT.unpack_from(self.data, position)

    def _set_slot_entry(self, slot: int, offset: int, length: int) -> None:
        position = self.page_size - SLOT_SIZE * (slot + 1)
        _SLOT.pack_into(self.data, position, offset, length)

    # -- capacity -------------------------------------------------------------

    @property
    def _dir_start(self) -> int:
        return self.page_size - SLOT_SIZE * self.slot_count

    @property
    def contiguous_free_space(self) -> int:
        """Bytes immediately available without compaction."""
        return self._dir_start - self._free_ptr

    @property
    def live_bytes(self) -> int:
        """Total bytes occupied by live records."""
        return sum(
            length
            for slot in range(self.slot_count)
            for offset, length in [self._slot_entry(slot)]
            if offset != 0
        )

    @property
    def free_space(self) -> int:
        """Bytes available after compaction (excluding a new slot entry)."""
        return self._dir_start - HEADER_SIZE - self.live_bytes

    def has_room_for(self, record_size: int) -> bool:
        """Can ``insert`` of this size succeed (possibly after compaction)?"""
        if self._has_dead_slot():
            return self.free_space >= record_size
        return self.free_space >= record_size + SLOT_SIZE

    def _has_dead_slot(self) -> bool:
        return any(
            self._slot_entry(slot)[0] == 0 for slot in range(self.slot_count)
        )

    # -- record operations ------------------------------------------------------

    def insert(self, record: bytes) -> int | None:
        """Store a record; returns its slot number, or None if it cannot fit."""
        if len(record) > 0xFFFF:
            raise PageError(f"record of {len(record)} bytes exceeds u16 length")
        # One pass over the slot directory gathers everything the fit
        # check needs (first dead slot + live byte total); the separate
        # ``free_space``/``_find_dead_slot`` properties would walk it
        # three times per insert.
        slot_count, free_ptr = _HEADER.unpack_from(self.data, 0)
        reused_slot = None
        live = 0
        position = self.page_size - SLOT_SIZE
        for slot in range(slot_count):
            offset, length = _SLOT.unpack_from(self.data, position)
            if offset == 0:
                if reused_slot is None:
                    reused_slot = slot
            else:
                live += length
            position -= SLOT_SIZE
        dir_start = self.page_size - SLOT_SIZE * slot_count
        new_dir_bytes = 0 if reused_slot is not None else SLOT_SIZE
        if dir_start - HEADER_SIZE - live < len(record) + new_dir_bytes:
            return None
        # Fits after compaction at worst; compact only if the contiguous
        # gap between the record area and the slot directory is too small.
        if dir_start - new_dir_bytes - free_ptr < len(record):
            self.compact()
            free_ptr = self._free_ptr
        offset = free_ptr
        self.data[offset : offset + len(record)] = record
        if reused_slot is None:
            slot = slot_count
            self._set_header(slot_count + 1, offset + len(record))
        else:
            slot = reused_slot
            self._set_header(slot_count, offset + len(record))
        self._set_slot_entry(slot, offset, len(record))
        return slot

    def insert_many(self, records: "Sequence[bytes]") -> list[int]:
        """Store records until one no longer fits; returns their slots.

        Equivalent to calling :meth:`insert` once per record — same slot
        assignments, same compaction points, byte-identical final page —
        but the slot directory is walked once up front instead of once
        per record.  Insertion stops at the *first* record that does not
        fit (records after it are not attempted, exactly as a caller
        loop breaking on ``None`` would behave).
        """
        # One walk gathers the dead-slot queue and live-byte total;
        # after that every quantity is tracked incrementally.
        slot_count, free_ptr = _HEADER.unpack_from(self.data, 0)
        dead: deque[int] = deque()
        live = 0
        position = self.page_size - SLOT_SIZE
        for slot in range(slot_count):
            offset, length = _SLOT.unpack_from(self.data, position)
            if offset == 0:
                dead.append(slot)
            else:
                live += length
            position -= SLOT_SIZE
        slots: list[int] = []
        for record in records:
            if len(record) > 0xFFFF:
                self._set_header(slot_count, free_ptr)
                raise PageError(
                    f"record of {len(record)} bytes exceeds u16 length"
                )
            new_dir_bytes = 0 if dead else SLOT_SIZE
            dir_start = self.page_size - SLOT_SIZE * slot_count
            if dir_start - HEADER_SIZE - live < len(record) + new_dir_bytes:
                break
            if dir_start - new_dir_bytes - free_ptr < len(record):
                # compact() reads the header, so persist the running
                # counters first; it preserves slot numbers and the
                # dead-slot queue.
                self._set_header(slot_count, free_ptr)
                self.compact()
                free_ptr = self._free_ptr
            offset = free_ptr
            self.data[offset : offset + len(record)] = record
            if dead:
                slot = dead.popleft()
            else:
                slot = slot_count
                slot_count += 1
            free_ptr = offset + len(record)
            live += len(record)
            _SLOT.pack_into(
                self.data,
                self.page_size - SLOT_SIZE * (slot + 1),
                offset,
                len(record),
            )
            slots.append(slot)
        self._set_header(slot_count, free_ptr)
        return slots

    def _find_dead_slot(self) -> int | None:
        for slot in range(self.slot_count):
            if self._slot_entry(slot)[0] == 0:
                return slot
        return None

    def read(self, slot: int) -> bytes:
        """Return the record stored in ``slot``; raises on a dead slot."""
        offset, length = self._slot_entry(slot)
        if offset == 0:
            raise PageError(f"slot {slot} is deleted")
        return bytes(self.data[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Mark a slot dead (space reclaimed by lazy compaction)."""
        offset, _length = self._slot_entry(slot)
        if offset == 0:
            raise PageError(f"slot {slot} is already deleted")
        self._set_slot_entry(slot, 0, 0)

    def is_live(self, slot: int) -> bool:
        """True when ``slot`` holds a live record."""
        return self._slot_entry(slot)[0] != 0

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, record)`` for every live record."""
        for slot in range(self.slot_count):
            offset, length = self._slot_entry(slot)
            if offset != 0:
                yield slot, bytes(self.data[offset : offset + length])

    @property
    def live_count(self) -> int:
        """Number of live records."""
        return sum(1 for _ in self.records())

    def compact(self) -> None:
        """Squeeze out holes left by deletions; slot numbers are preserved."""
        live = [
            (slot, self.read(slot))
            for slot in range(self.slot_count)
            if self.is_live(slot)
        ]
        write_ptr = HEADER_SIZE
        for slot, record in live:
            self.data[write_ptr : write_ptr + len(record)] = record
            self._set_slot_entry(slot, write_ptr, len(record))
            write_ptr += len(record)
        self._set_header(self.slot_count, write_ptr)
