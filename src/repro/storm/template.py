"""Store templating: populate once, clone cheaply.

Every figure sweep rebuilds the same node-local stores for every sweep
point — the dominant setup cost.  A :class:`StoreTemplate` freezes a
fully populated store (heap pages, keyword-index postings, record
count) and :meth:`StoreTemplate.instantiate` hands back a clone backed
by a copy-on-write :class:`SnapshotDisk`: the immutable page images are
shared between every clone, a page is only copied when some clone
writes to it, and each clone gets its own buffer manager and access
statistics.  A clone is observationally identical to a store freshly
populated with the same objects — same record ids, same postings, same
buffer residency after the ``HeapFile`` open scan — so figures built on
clones produce bit-identical series.

``REPRO_NO_STORE_TEMPLATE=1`` disables the process-wide registry, which
callers (see :mod:`repro.workloads.provision`) use to fall back to
populating every store from scratch.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import StormError
from repro.storm.disk import InMemoryDisk
from repro.storm.heapfile import RecordId
from repro.storm.replacement import ReplacementStrategy
from repro.storm.store import StorM

#: Set ``REPRO_NO_STORE_TEMPLATE=1`` to bypass the template registry and
#: repopulate every store from scratch.  Checked per call so ``--jobs``
#: worker processes inherit the switch through the environment.
TEMPLATE_ENV_VAR = "REPRO_NO_STORE_TEMPLATE"

#: Registry capacity; oldest entries are evicted first.  Experiments key
#: templates by content digest, and one figure needs at most a few dozen
#: distinct (corpus, node, size) combinations at a time.
REGISTRY_CAPACITY = 128

_REGISTRY: dict[str, "StoreTemplate"] = {}


def templates_disabled() -> bool:
    """True when the environment disables store templating."""
    return os.environ.get(TEMPLATE_ENV_VAR, "") not in ("", "0")


def cached_template(key: str) -> "StoreTemplate | None":
    """The registered template for ``key``, or None."""
    return _REGISTRY.get(key)


def register_template(key: str, template: "StoreTemplate") -> None:
    """Cache ``template`` under ``key``, evicting the oldest past capacity."""
    _REGISTRY[key] = template
    while len(_REGISTRY) > REGISTRY_CAPACITY:
        del _REGISTRY[next(iter(_REGISTRY))]


def clear_templates() -> None:
    """Drop every registered template (tests; memory pressure)."""
    _REGISTRY.clear()


class SnapshotDisk(InMemoryDisk):
    """An in-memory disk seeded from immutable page images.

    The seed pages are shared — every clone of a template points at the
    same ``bytes`` objects.  :meth:`InMemoryDisk.read_page` already
    copies on read and :meth:`InMemoryDisk.write_page` replaces the
    page entry wholesale, so a write in one clone can never reach
    another: copy-on-write without any bookkeeping.
    """

    def __init__(self, pages: Iterable[bytes], page_size: int):
        super().__init__(page_size)
        self._pages = list(pages)  # type: ignore[assignment]


@dataclass(frozen=True)
class StoreTemplate:
    """An immutable snapshot of a populated :class:`StorM` store."""

    pages: tuple[bytes, ...]
    page_size: int
    index_snapshot: dict[str, frozenset[RecordId]]
    record_count: int

    @classmethod
    def from_store(cls, store: StorM) -> "StoreTemplate":
        """Snapshot ``store`` (flushes it first; the store stays usable).

        Only plain in-memory stores can be templated: a WAL or a
        persistent index ties the store to external files that a shared
        snapshot cannot represent.
        """
        if store.wal is not None:
            raise StormError("cannot template a WAL-backed store")
        if store.index_disk is not None:
            raise StormError(
                "cannot template a store with a persistent index"
            )
        store.flush()
        disk = store.disk
        pages = tuple(
            bytes(disk.read_page(page_id))
            for page_id in range(disk.num_pages)
        )
        return cls(
            pages=pages,
            page_size=disk.page_size,
            index_snapshot=store.index.snapshot(),
            record_count=store.count,
        )

    def instantiate(
        self,
        pool_size: int = 512,
        strategy: ReplacementStrategy | None = None,
        scan_cache: bool | None = None,
    ) -> StorM:
        """A fresh store over shared pages, with its own buffer pool.

        The clone's ``HeapFile`` open scan pins every page in ascending
        order — the same residency and recency a just-populated store
        ends with — and the index loads from the snapshot instead of
        decoding every record.
        """
        return StorM(
            disk=SnapshotDisk(self.pages, self.page_size),
            pool_size=pool_size,
            strategy=strategy,
            scan_cache=scan_cache,
            index_snapshot=self.index_snapshot,
        )
