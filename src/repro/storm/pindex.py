"""Persistent keyword index: the inverted index, on pages.

Wraps :class:`~repro.storm.btree.BPlusTree` with secondary-index
semantics: each posting is one composite entry

    u16 keyword-byte-length ++ keyword utf-8 ++ u32 page ++ u16 slot

so all postings of one keyword are contiguous and a keyword lookup is a
prefix scan.  Unlike the in-memory :class:`~repro.storm.index.KeywordIndex`,
this survives restarts without an O(N) heap rescan — the trade the
original StorM made for its persistent object indexes.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator

from repro.errors import StormError
from repro.storm.btree import BPlusTree
from repro.storm.buffer import BufferManager
from repro.storm.heapfile import RecordId
from repro.storm.objects import normalize_keyword

_LEN = struct.Struct("<H")
_RID = struct.Struct("<IH")


class PersistentKeywordIndex:
    """keyword -> record ids, stored in a page-resident B+-tree."""

    def __init__(self, buffer: BufferManager):
        self.tree = BPlusTree(buffer)
        self.buffer = buffer

    # -- entry codec --------------------------------------------------------

    @staticmethod
    def _prefix(keyword: str) -> bytes:
        raw = normalize_keyword(keyword).encode("utf-8")
        if len(raw) > 0xFFFF:
            raise StormError(f"keyword of {len(raw)} bytes is too long")
        return _LEN.pack(len(raw)) + raw

    @classmethod
    def _entry(cls, keyword: str, rid: RecordId) -> bytes:
        return cls._prefix(keyword) + _RID.pack(rid.page_id, rid.slot)

    @staticmethod
    def _decode(entry: bytes) -> tuple[str, RecordId]:
        (length,) = _LEN.unpack_from(entry, 0)
        keyword = entry[_LEN.size : _LEN.size + length].decode("utf-8")
        page_id, slot = _RID.unpack_from(entry, _LEN.size + length)
        return keyword, RecordId(page_id, slot)

    # -- mutation -------------------------------------------------------------

    def add(self, rid: RecordId, keywords: Iterable[str]) -> None:
        """Index ``rid`` under every keyword (idempotent per pair)."""
        for keyword in keywords:
            self.tree.insert(self._entry(keyword, rid))

    def insert_many(
        self,
        entries: Iterable[tuple[RecordId, Iterable[str]]],
        normalized: bool = False,
    ) -> None:
        """Batched :meth:`add` (API parity with the in-memory index).

        ``normalized`` is accepted for signature compatibility; the
        entry codec normalizes regardless (idempotent for canonical
        keywords), so postings are identical either way.
        """
        del normalized
        for rid, keywords in entries:
            self.add(rid, keywords)

    def remove(self, rid: RecordId, keywords: Iterable[str]) -> None:
        """Drop ``rid`` from every keyword's postings (missing ok)."""
        for keyword in keywords:
            self.tree.delete(self._entry(keyword, rid))

    # -- queries -----------------------------------------------------------------

    def lookup(self, keyword: str) -> frozenset[RecordId]:
        """Record ids posted under ``keyword``."""
        prefix = self._prefix(keyword)
        return frozenset(
            self._decode(entry)[1] for entry in self.tree.scan_prefix(prefix)
        )

    def lookup_ordered(self, keyword: str) -> list[RecordId]:
        """Postings in heap order (page id, then slot), like the
        in-memory index — index-backed and scan-backed searches agree."""
        return sorted(
            self.lookup(keyword), key=lambda rid: (rid.page_id, rid.slot)
        )

    def posting_count(self, keyword: str) -> int:
        return sum(1 for _ in self.tree.scan_prefix(self._prefix(keyword)))

    def keywords(self) -> Iterator[str]:
        """All indexed keywords, each once, in order."""
        previous = None
        for entry in self.tree.scan_all():
            keyword, _rid = self._decode(entry)
            if keyword != previous:
                previous = keyword
                yield keyword

    @property
    def keyword_count(self) -> int:
        return sum(1 for _ in self.keywords())

    def rebuild(self, entries: Iterable[tuple[RecordId, Iterable[str]]]) -> None:
        """Re-add postings (the tree keeps whatever is already there;
        call only on an empty index)."""
        for rid, keywords in entries:
            self.add(rid, keywords)

    def flush(self) -> None:
        """Write all dirty index pages through to the disk."""
        self.buffer.flush_all()
