"""First-fit free-space index over heap-file pages.

:class:`HeapFile` steers insertions to the *lowest-numbered* page with
room.  A naive realisation scans every page's free-space entry per
insert — O(pages), which turns bulk loading into O(pages²).  This module
provides the same first-fit answer from a max segment tree: point
updates and "first page id >= start with at least N free bytes" queries
are both O(log pages), and the answer is *identical* to the linear scan
(page ids ascend in allocation order, exactly like the dict the heap
file used to iterate).
"""

from __future__ import annotations

from collections.abc import Iterator


class FreeSpaceMap:
    """Max segment tree over per-page free bytes with first-fit queries."""

    __slots__ = ("_free", "_cap", "_tree")

    def __init__(self) -> None:
        self._free: list[int] = []
        self._cap = 1
        self._tree = [0, 0]

    def __len__(self) -> int:
        return len(self._free)

    def __contains__(self, page_id: int) -> bool:
        return 0 <= page_id < len(self._free)

    def get(self, page_id: int, default: int = 0) -> int:
        """Free bytes recorded for ``page_id`` (``default`` when untracked)."""
        if 0 <= page_id < len(self._free):
            return self._free[page_id]
        return default

    def items(self) -> Iterator[tuple[int, int]]:
        """(page_id, free bytes) pairs in ascending page order."""
        return enumerate(self._free)

    def set(self, page_id: int, free: int) -> None:
        """Record ``page_id``'s free bytes (pages may be appended)."""
        if page_id < 0:
            raise ValueError(f"page id must be >= 0, got {page_id}")
        if page_id >= len(self._free):
            # Pages are allocated sequentially; tolerate gaps defensively.
            self._free.extend([0] * (page_id + 1 - len(self._free)))
            if len(self._free) > self._cap:
                self._free[page_id] = free
                self._rebuild()
                return
        self._free[page_id] = free
        index = self._cap + page_id
        self._tree[index] = free
        index //= 2
        while index:
            self._tree[index] = max(self._tree[2 * index], self._tree[2 * index + 1])
            index //= 2

    def _rebuild(self) -> None:
        cap = self._cap
        while cap < len(self._free):
            cap *= 2
        self._cap = cap
        tree = [0] * (2 * cap)
        tree[cap : cap + len(self._free)] = self._free
        for index in range(cap - 1, 0, -1):
            tree[index] = max(tree[2 * index], tree[2 * index + 1])
        self._tree = tree

    def first_at_least(self, needed: int, start: int = 0) -> int | None:
        """Smallest page id >= ``start`` with >= ``needed`` free bytes."""
        if start < 0:
            start = 0
        if start >= len(self._free) or self._tree[1] < needed:
            return None
        return self._descend(1, 0, self._cap, needed, start)

    def _descend(
        self, node: int, lo: int, hi: int, needed: int, start: int
    ) -> int | None:
        if hi <= start or lo >= len(self._free) or self._tree[node] < needed:
            return None
        if hi - lo == 1:
            return lo
        mid = (lo + hi) // 2
        found = self._descend(2 * node, lo, mid, needed, start)
        if found is not None:
            return found
        return self._descend(2 * node + 1, mid, hi, needed, start)
