"""Write-ahead logging: commit durability for StorM.

A minimal physical-redo WAL in the classic style: :meth:`StorM.commit`
appends the full image of every dirty page to the log and syncs it —
one sequential write — while the data pages themselves stay dirty in
the buffer pool (a *no-force* policy).  After a crash, reopening the
store replays the log onto the heap file, then checkpoints and
truncates.

Log record layout (little-endian)::

    u32 magic | u64 lsn | u32 page_id | u32 length | page bytes | u32 crc

The CRC covers everything before it; replay stops at the first record
that is short or fails its CRC — a torn tail from a crash mid-append is
expected and harmless, because an incomplete commit must not apply.
Commit boundaries are marked with a record whose ``page_id`` is
``COMMIT_MARKER``; replay only applies page images from fully committed
batches.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections.abc import Iterator

from repro.errors import StormError

_HEADER = struct.Struct("<IQII")
_CRC = struct.Struct("<I")
_MAGIC = 0x57A10001
#: pseudo page id marking the end of one committed batch
COMMIT_MARKER = 0xFFFFFFFF


class WriteAheadLog:
    """Append-only physical redo log."""

    def __init__(self, path: str):
        self.path = path
        exists = os.path.exists(path)
        self._file = open(path, "r+b" if exists else "w+b")
        self._file.seek(0, os.SEEK_END)
        self._next_lsn = 0
        self._closed = False

    # -- writing ------------------------------------------------------------------

    def append(self, page_id: int, data: bytes) -> int:
        """Append one page image; returns its LSN.  Not yet durable —
        call :meth:`sync` (commit) to force it out."""
        self._check_open()
        lsn = self._next_lsn
        self._next_lsn += 1
        header = _HEADER.pack(_MAGIC, lsn, page_id, len(data))
        crc = zlib.crc32(header)
        crc = zlib.crc32(data, crc)
        self._file.write(header)
        self._file.write(data)
        self._file.write(_CRC.pack(crc))
        return lsn

    def mark_commit(self) -> int:
        """Append a commit boundary record."""
        return self.append(COMMIT_MARKER, b"")

    def sync(self) -> None:
        """Force appended records to stable storage."""
        self._check_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    # -- recovery -------------------------------------------------------------------

    def replay(self) -> Iterator[tuple[int, int, bytes]]:
        """Yield ``(lsn, page_id, data)`` for every *committed* record.

        Records after the last commit marker (or after a torn/corrupt
        record) are discarded, exactly as a crash-consistent recovery
        must.
        """
        self._check_open()
        pending: list[tuple[int, int, bytes]] = []
        self._file.seek(0)
        while True:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break  # clean end or torn header
            magic, lsn, page_id, length = _HEADER.unpack(header)
            if magic != _MAGIC:
                break  # corruption: stop replaying
            data = self._file.read(length)
            crc_bytes = self._file.read(_CRC.size)
            if len(data) < length or len(crc_bytes) < _CRC.size:
                break  # torn tail
            expected = zlib.crc32(header)
            expected = zlib.crc32(data, expected)
            if _CRC.unpack(crc_bytes)[0] != expected:
                break  # bit rot or torn write
            self._next_lsn = max(self._next_lsn, lsn + 1)
            if page_id == COMMIT_MARKER:
                yield from pending
                pending.clear()
            else:
                pending.append((lsn, page_id, data))
        # `pending` (an uncommitted batch) is deliberately dropped.
        self._file.seek(0, os.SEEK_END)

    def truncate(self) -> None:
        """Discard the whole log (after a checkpoint made it redundant)."""
        self._check_open()
        self._file.seek(0)
        self._file.truncate()
        self._file.flush()
        os.fsync(self._file.fileno())

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        self._check_open()
        position = self._file.tell()
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        self._file.seek(position)
        return size

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StormError(f"WAL {self.path} is closed")
