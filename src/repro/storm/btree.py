"""A page-based B+-tree over the buffer manager.

StorM's keyword lookups can be served by a *persistent* index instead of
the rebuilt-on-open in-memory postings: this module provides the
underlying structure — a B+-tree storing variable-length byte-string
entries in page-resident nodes, with all traffic going through the
:class:`~repro.storm.buffer.BufferManager` (so index I/O participates in
the same buffer-replacement machinery as data I/O).

Design notes:

* Entries are opaque byte strings ordered lexicographically; secondary-
  index semantics (one keyword, many record ids) come from storing
  composite ``prefix + payload`` entries and scanning by prefix — the
  classic duplicate-handling scheme.
* Deletion is lazy: entries are removed from leaves, but pages never
  merge (the PostgreSQL approach); a leaf only disappears if the whole
  tree is rebuilt.
* Page 0 of the tree's disk is a meta page holding the root pointer, so
  a tree can be reopened from a cold file.

In-page layout (little-endian)::

    meta page : magic u32, root u32, height u32
    node page : kind u8 (1=leaf, 2=internal), count u16, extra u32,
                offset directory u16[count] growing down from the end,
                entry bytes (u16 length + payload) growing up
    leaf      : extra = next-leaf page id (0xFFFFFFFF = none);
                payload = full entry bytes
    internal  : extra = left-most child page id;
                payload = u32 child ++ separator key; child holds
                entries >= separator (and < the next separator)
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from collections.abc import Iterator

from repro.errors import PageError, StormError
from repro.storm.buffer import BufferManager

_META = struct.Struct("<III")
_HEAD = struct.Struct("<BHI")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

_MAGIC = 0xB7EE0001
_LEAF = 1
_INTERNAL = 2
_NO_PAGE = 0xFFFFFFFF


class _Node:
    """Decoded form of one tree page (re-encoded on write)."""

    __slots__ = ("page_id", "kind", "extra", "entries")

    def __init__(self, page_id: int, kind: int, extra: int, entries: list[bytes]):
        self.page_id = page_id
        self.kind = kind
        self.extra = extra  # next-leaf (leaf) or left-most child (internal)
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.kind == _LEAF

    # Internal nodes store (child, separator) pairs encoded as
    # u32 child ++ key; helpers below keep that readable.

    def internal_pairs(self) -> list[tuple[int, bytes]]:
        assert not self.is_leaf
        return [
            (_U32.unpack_from(entry, 0)[0], bytes(entry[_U32.size:]))
            for entry in self.entries
        ]


class BPlusTree:
    """A B+-tree of byte-string entries with prefix scans.

    The tree owns its buffer manager's disk from page 0 (the meta page);
    do not share the disk with a heap file.
    """

    def __init__(self, buffer: BufferManager):
        self.buffer = buffer
        page_size = buffer.disk.page_size
        #: largest entry that still leaves a node at least 4 entries wide
        self.max_entry_size = (page_size - _HEAD.size) // 4 - _U16.size - _U16.size
        if buffer.disk.num_pages == 0:
            meta_id, data = buffer.new_page()
            try:
                root = self._allocate_node(_LEAF, _NO_PAGE, [])
                _META.pack_into(data, 0, _MAGIC, root, 1)
                buffer.mark_dirty(meta_id)
            finally:
                buffer.unpin(meta_id)
            self._root = root
            self._height = 1
        else:
            with buffer.pinned(0) as data:
                magic, root, height = _META.unpack_from(data, 0)
            if magic != _MAGIC:
                raise StormError("page 0 is not a B+-tree meta page")
            self._root = root
            self._height = height
        self.entry_count = self._count_entries() if buffer.disk.num_pages > 1 else 0

    # -- public operations ----------------------------------------------------

    def insert(self, entry: bytes) -> bool:
        """Insert one entry; returns False if it was already present."""
        entry = bytes(entry)
        self._check_size(entry)
        split = self._insert_into(self._root, entry, self._height)
        if split is _DUPLICATE:
            return False
        if split is not None:
            separator, new_child = split
            new_root = self._allocate_node(
                _INTERNAL, self._root, [_U32.pack(new_child) + separator]
            )
            self._root = new_root
            self._height += 1
            self._write_meta()
        self.entry_count += 1
        return True

    def delete(self, entry: bytes) -> bool:
        """Remove one entry; returns False if it was absent."""
        entry = bytes(entry)
        node = self._descend_to_leaf(entry)
        index = bisect_left(node.entries, entry)
        if index >= len(node.entries) or node.entries[index] != entry:
            return False
        node.entries.pop(index)
        self._write_node(node)
        self.entry_count -= 1
        return True

    def contains(self, entry: bytes) -> bool:
        """Exact-entry membership."""
        entry = bytes(entry)
        node = self._descend_to_leaf(entry)
        index = bisect_left(node.entries, entry)
        return index < len(node.entries) and node.entries[index] == entry

    def scan_prefix(self, prefix: bytes) -> Iterator[bytes]:
        """Yield every entry starting with ``prefix``, in order."""
        prefix = bytes(prefix)
        yield from self._scan_from(prefix, lambda e: e.startswith(prefix))

    def scan_range(self, low: bytes, high: bytes) -> Iterator[bytes]:
        """Yield entries ``low <= entry < high``, in order."""
        low, high = bytes(low), bytes(high)
        yield from self._scan_from(low, lambda e: e < high)

    def scan_all(self) -> Iterator[bytes]:
        """Yield every entry in order."""
        yield from self._scan_from(b"", lambda e: True)

    @property
    def height(self) -> int:
        return self._height

    # -- traversal --------------------------------------------------------------

    def _descend_to_leaf(self, entry: bytes) -> _Node:
        node = self._read_node(self._root)
        while not node.is_leaf:
            node = self._read_node(self._child_for(node, entry))
        return node

    def _child_for(self, node: _Node, entry: bytes) -> int:
        """Which child of an internal node covers ``entry``."""
        separators = [bytes(e[_U32.size:]) for e in node.entries]
        index = bisect_right(separators, entry)
        if index == 0:
            return node.extra
        return _U32.unpack_from(node.entries[index - 1], 0)[0]

    def _scan_from(self, start: bytes, keep) -> Iterator[bytes]:
        node = self._descend_to_leaf(start)
        index = bisect_left(node.entries, start)
        while True:
            while index < len(node.entries):
                entry = node.entries[index]
                if not keep(entry):
                    return
                yield entry
                index += 1
            if node.extra == _NO_PAGE:
                return
            node = self._read_node(node.extra)
            index = 0

    # -- insertion ----------------------------------------------------------------

    def _insert_into(self, page_id: int, entry: bytes, level: int):
        """Recursive insert.  Returns None, _DUPLICATE, or a split
        ``(separator, new right sibling page id)``."""
        node = self._read_node(page_id)
        if level == 1:
            assert node.is_leaf
            index = bisect_left(node.entries, entry)
            if index < len(node.entries) and node.entries[index] == entry:
                return _DUPLICATE
            node.entries.insert(index, entry)
            if self._fits(node):
                self._write_node(node)
                return None
            return self._split_leaf(node)
        child = self._child_for(node, entry)
        split = self._insert_into(child, entry, level - 1)
        if split is None or split is _DUPLICATE:
            return split
        separator, new_child = split
        encoded = _U32.pack(new_child) + separator
        separators = [bytes(e[_U32.size:]) for e in node.entries]
        index = bisect_right(separators, separator)
        node.entries.insert(index, encoded)
        if self._fits(node):
            self._write_node(node)
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> tuple[bytes, int]:
        middle = len(node.entries) // 2
        right_entries = node.entries[middle:]
        node.entries = node.entries[:middle]
        right_id = self._allocate_node(_LEAF, node.extra, right_entries)
        node.extra = right_id
        self._write_node(node)
        return right_entries[0], right_id

    def _split_internal(self, node: _Node) -> tuple[bytes, int]:
        middle = len(node.entries) // 2
        promoted = node.entries[middle]
        promoted_child = _U32.unpack_from(promoted, 0)[0]
        separator = bytes(promoted[_U32.size:])
        right_entries = node.entries[middle + 1 :]
        node.entries = node.entries[:middle]
        right_id = self._allocate_node(_INTERNAL, promoted_child, right_entries)
        self._write_node(node)
        return separator, right_id

    # -- page codec ------------------------------------------------------------------

    def _fits(self, node: _Node) -> bool:
        body = sum(_U16.size + _U16.size + len(e) for e in node.entries)
        return _HEAD.size + body <= self.buffer.disk.page_size

    def _read_node(self, page_id: int) -> _Node:
        with self.buffer.pinned(page_id) as data:
            kind, count, extra = _HEAD.unpack_from(data, 0)
            if kind not in (_LEAF, _INTERNAL):
                raise PageError(f"page {page_id} is not a B+-tree node")
            entries = []
            directory_base = len(data)
            for i in range(count):
                (offset,) = _U16.unpack_from(data, directory_base - _U16.size * (i + 1))
                (length,) = _U16.unpack_from(data, offset)
                start = offset + _U16.size
                entries.append(bytes(data[start : start + length]))
        return _Node(page_id, kind, extra, entries)

    def _write_node(self, node: _Node) -> None:
        data = self.buffer.pin(node.page_id)
        try:
            self._encode(data, node)
            self.buffer.mark_dirty(node.page_id)
        finally:
            self.buffer.unpin(node.page_id)

    def _allocate_node(self, kind: int, extra: int, entries: list[bytes]) -> int:
        page_id, data = self.buffer.new_page()
        try:
            node = _Node(page_id, kind, extra, entries)
            if not self._fits(node):
                raise PageError("node contents exceed one page")
            self._encode(data, node)
            self.buffer.mark_dirty(page_id)
        finally:
            self.buffer.unpin(page_id)
        return page_id

    def _encode(self, data: bytearray, node: _Node) -> None:
        data[:] = bytes(len(data))
        _HEAD.pack_into(data, 0, node.kind, len(node.entries), node.extra)
        write_ptr = _HEAD.size
        directory_base = len(data)
        for i, entry in enumerate(node.entries):
            _U16.pack_into(data, write_ptr, len(entry))
            data[write_ptr + _U16.size : write_ptr + _U16.size + len(entry)] = entry
            _U16.pack_into(data, directory_base - _U16.size * (i + 1), write_ptr)
            write_ptr += _U16.size + len(entry)

    def _write_meta(self) -> None:
        data = self.buffer.pin(0)
        try:
            _META.pack_into(data, 0, _MAGIC, self._root, self._height)
            self.buffer.mark_dirty(0)
        finally:
            self.buffer.unpin(0)

    def _check_size(self, entry: bytes) -> None:
        if len(entry) > self.max_entry_size:
            raise StormError(
                f"entry of {len(entry)} bytes exceeds the maximum "
                f"{self.max_entry_size} for this page size"
            )

    def _count_entries(self) -> int:
        return sum(1 for _ in self.scan_all())

    # -- diagnostics --------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate ordering and linkage; raises ``StormError`` on damage.

        Used by tests; cheap enough to run after bulk operations.
        """
        previous = None
        for entry in self.scan_all():
            if previous is not None and entry <= previous:
                raise StormError("entries out of order in leaf chain")
            previous = entry
        self._check_subtree(self._root, self._height, None, None)

    def _check_subtree(
        self, page_id: int, level: int, low: bytes | None, high: bytes | None
    ) -> None:
        node = self._read_node(page_id)
        if level == 1:
            if not node.is_leaf:
                raise StormError(f"page {page_id} should be a leaf")
            for entry in node.entries:
                if low is not None and entry < low:
                    raise StormError(f"leaf entry below its separator bound")
                if high is not None and entry >= high:
                    raise StormError(f"leaf entry above its separator bound")
            return
        if node.is_leaf:
            raise StormError(f"page {page_id} should be internal")
        pairs = node.internal_pairs()
        separators = [separator for _, separator in pairs]
        if separators != sorted(separators):
            raise StormError(f"separators out of order in page {page_id}")
        children = [node.extra] + [child for child, _ in pairs]
        bounds = [low] + separators
        uppers = separators + [high]
        for child, child_low, child_high in zip(children, bounds, uppers):
            self._check_subtree(child, level - 1, child_low, child_high)


class _Duplicate:
    """Sentinel distinguishing 'already present' from 'no split'."""

    __repr__ = lambda self: "<duplicate>"  # noqa: E731


_DUPLICATE = _Duplicate()
