"""The stored-object model: keyword-tagged byte payloads.

The paper's experiment stores "1000 objects in StorM to be shared ...
all objects [are] of the same size - 1K bytes", searchable by keyword.
A :class:`StoredObject` couples a payload with its keyword tags and
encodes to a compact, self-describing binary record::

    u16 keyword_count
    repeat: u16 keyword_byte_len, utf-8 keyword
    u32 payload_len, payload bytes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import StormError

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


def normalize_keyword(keyword: str) -> str:
    """Canonical keyword form: case-folded, surrounding whitespace removed."""
    return keyword.strip().casefold()


@dataclass(frozen=True, slots=True)
class StoredObject:
    """An immutable sharable object: keyword tags plus an opaque payload."""

    keywords: tuple[str, ...]
    payload: bytes

    def __post_init__(self):
        normalized = tuple(normalize_keyword(keyword) for keyword in self.keywords)
        if any(not keyword for keyword in normalized):
            raise StormError("keywords must be non-empty")
        object.__setattr__(self, "keywords", normalized)

    def matches(self, keyword: str) -> bool:
        """True when ``keyword`` (normalized) is one of this object's tags."""
        return normalize_keyword(keyword) in self.keywords

    def score(self, keyword: str) -> float:
        """TF-style relevance of ``keyword`` for this object.

        Term frequency over the tag list: how many of the object's tags
        are the (normalized) keyword, divided by the total tag count.
        An object tagged exactly and only with the keyword scores 1.0; a
        keyword buried among many other tags scores low; a non-match
        scores 0.0.  The ratio is a quotient of two small integers, so
        scores are bit-identical across platforms and survive an F64
        wire round-trip exactly.
        """
        count = self.keywords.count(normalize_keyword(keyword))
        if not count:
            return 0.0
        return count / len(self.keywords)

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    # -- binary codec ---------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to the record format described in the module docstring."""
        parts = [_U16.pack(len(self.keywords))]
        for keyword in self.keywords:
            raw = keyword.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise StormError(f"keyword of {len(raw)} bytes is too long")
            parts.append(_U16.pack(len(raw)))
            parts.append(raw)
        parts.append(_U32.pack(len(self.payload)))
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "StoredObject":
        """Inverse of :meth:`encode`; raises ``StormError`` on corruption."""
        try:
            offset = 0
            (keyword_count,) = _U16.unpack_from(data, offset)
            offset += _U16.size
            keywords = []
            for _ in range(keyword_count):
                (length,) = _U16.unpack_from(data, offset)
                offset += _U16.size
                if offset + length > len(data):
                    raise StormError("truncated keyword")
                keywords.append(data[offset : offset + length].decode("utf-8"))
                offset += length
            (payload_len,) = _U32.unpack_from(data, offset)
            offset += _U32.size
            payload = bytes(data[offset : offset + payload_len])
            if len(payload) != payload_len:
                raise StormError("truncated payload")
            if offset + payload_len != len(data):
                raise StormError("trailing bytes after payload")
            return cls(tuple(keywords), payload)
        except (struct.error, UnicodeDecodeError) as exc:
            raise StormError(f"corrupt object record: {exc}") from exc
