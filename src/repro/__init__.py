"""BestPeer reproduction: a self-configurable peer-to-peer system.

Reproduces Ng, Ooi & Tan, *BestPeer: A Self-Configurable Peer-to-Peer
System* (ICDE 2002): mobile agents over P2P, MaxCount/MinHops peer
reconfiguration, LIGLO name servers, and the StorM storage substrate —
plus the paper's comparison systems (single/multi-thread client-server
and Gnutella) and the full evaluation harness.

Quick start::

    from repro import BestPeerConfig, build_network, line

    net = build_network(4, config=BestPeerConfig(), topology=line(4))
    net.nodes[2].share(["jazz"], b"some payload")
    handle = net.base.issue_query("jazz")
    net.sim.run()
    print(handle.network_answer_count, "answers")
    net.base.finish_query(handle)      # triggers reconfiguration

See ``examples/`` for runnable walk-throughs and ``repro.eval.figures``
for the paper's experiments.
"""

from repro.agents import (
    Agent,
    AgentCosts,
    AnswerItem,
    AnswerMessage,
    StorMSearchAgent,
)
from repro.core import (
    ActiveObject,
    BestPeerConfig,
    BestPeerNetwork,
    BestPeerNode,
    MaxCountStrategy,
    MinHopsStrategy,
    PeerTable,
    QueryHandle,
    RoutingStrategy,
    build_network,
    make_reconfig_strategy,
    make_routing_strategy,
)
from repro.errors import ReproError
from repro.ids import BPID
from repro.liglo import LigloClient, LigloServer
from repro.net import AddressPool, Host, IPAddress, LinkModel, Network
from repro.sim import Simulator
from repro.storm import StorM, StoredObject, make_strategy
from repro.topology import grid, line, random_graph, ring, star, tree
from repro.workloads import AnswerPlacement, KeywordCorpus, generate_objects

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BestPeerConfig",
    "BestPeerNode",
    "BestPeerNetwork",
    "build_network",
    "QueryHandle",
    "PeerTable",
    "ActiveObject",
    "MaxCountStrategy",
    "MinHopsStrategy",
    "RoutingStrategy",
    "make_reconfig_strategy",
    "make_routing_strategy",
    # agents
    "Agent",
    "AgentCosts",
    "StorMSearchAgent",
    "AnswerMessage",
    "AnswerItem",
    # substrate
    "Simulator",
    "Network",
    "Host",
    "IPAddress",
    "AddressPool",
    "LinkModel",
    "StorM",
    "StoredObject",
    "make_strategy",
    "LigloServer",
    "LigloClient",
    "BPID",
    # topologies & workloads
    "star",
    "line",
    "tree",
    "ring",
    "grid",
    "random_graph",
    "KeywordCorpus",
    "generate_objects",
    "AnswerPlacement",
    # errors
    "ReproError",
]
