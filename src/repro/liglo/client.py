"""Node-side LIGLO protocol: register, announce, resolve.

All operations are asynchronous (this is a discrete-event world): the
caller passes a callback, and the client correlates replies to requests
with tokens, handling timeouts for requests whose LIGLO never answers.

With a :class:`~repro.util.retry.RetryPolicy` attached, a timed-out
register or resolve is re-sent (fresh token) after the policy's backoff
before the caller ever hears about it, and :meth:`announce_verified`
turns the fire-and-forget announce into a confirmed exchange — retry
until our LIGLO resolves us back, or surface
:class:`~repro.errors.LigloUnreachableError`.  Without a policy every
exchange stays single-shot, byte-identical to the legacy behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import LigloError, LigloUnreachableError
from repro.ids import BPID, SerialCounter
from repro.liglo import messages as m
from repro.net.address import IPAddress
from repro.net.message import Packet
from repro.net.network import Host
from repro.util.retry import RetryPolicy
from repro.util.tracing import NULL_TRACER, Tracer

#: How long to wait for a LIGLO reply before giving up (seconds).
DEFAULT_TIMEOUT = 5.0


@dataclass(frozen=True, slots=True)
class RegistrationResult:
    """Outcome of a registration attempt delivered to the caller."""

    accepted: bool
    bpid: BPID | None = None
    peers: tuple[tuple[BPID, IPAddress], ...] = ()
    liglo_address: IPAddress | None = None
    reason: str = ""


class LigloClient:
    """One node's view of the LIGLO service."""

    def __init__(
        self,
        host: Host,
        timeout: float = DEFAULT_TIMEOUT,
        tracer: Tracer | None = None,
        retry_policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
    ):
        self.host = host
        self.timeout = timeout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.retry_policy = retry_policy
        self.rng = rng
        self.bpid: BPID | None = None
        self._tokens = SerialCounter()
        #: token -> (callback, liglo address, failures so far)
        self._pending_registers: dict[
            int, tuple[Callable[[RegistrationResult], None], IPAddress, int]
        ] = {}
        #: token -> (callback, target bpid, failures so far, retry enabled)
        self._pending_resolves: dict[
            int, tuple[Callable[[m.ResolveReply | None], None], BPID, int, bool]
        ] = {}
        #: token -> (callback, keyword) for in-flight hint fetches
        self._pending_hints: dict[
            int, tuple[Callable[[m.HintReply | None], None], str]
        ] = {}
        #: re-sends triggered by the retry policy
        self.retries = 0
        host.bind(m.PROTO_REGISTER_REPLY, self._on_register_reply)
        host.bind(m.PROTO_RESOLVE_REPLY, self._on_resolve_reply)
        host.bind(m.PROTO_HINT_REPLY, self._on_hint_reply)
        host.bind(m.PROTO_PING, self._on_ping)

    def pending_counts(self) -> dict[str, int]:
        """Outstanding request tokens by kind (leak auditing)."""
        return {
            "registers": len(self._pending_registers),
            "resolves": len(self._pending_resolves),
            "hints": len(self._pending_hints),
        }

    # -- registration -------------------------------------------------------------

    def register(
        self,
        liglo_address: IPAddress,
        callback: Callable[[RegistrationResult], None],
    ) -> None:
        """Ask one LIGLO server for a BPID; the callback gets the outcome.

        With a retry policy, a timed-out request is re-sent (fresh
        token) up to ``max_attempts`` times before the callback sees the
        failure.
        """
        self._send_register(liglo_address, callback, failures=0)

    def _send_register(
        self,
        liglo_address: IPAddress,
        callback: Callable[[RegistrationResult], None],
        failures: int,
    ) -> None:
        token = self._tokens.next()
        self._pending_registers[token] = (callback, liglo_address, failures)
        self.host.send(liglo_address, m.PROTO_REGISTER, m.RegisterRequest(token))
        self.host.sim.schedule(self.timeout, self._expire_register, token)

    def _retry_register(
        self,
        liglo_address: IPAddress,
        callback: Callable[[RegistrationResult], None],
        failures: int,
    ) -> None:
        if not self.host.online:
            callback(
                RegistrationResult(
                    accepted=False, reason="host went offline during retry"
                )
            )
            return
        self._send_register(liglo_address, callback, failures)

    def register_any(
        self,
        liglo_addresses: Sequence[IPAddress],
        callback: Callable[[RegistrationResult], None],
    ) -> None:
        """Try LIGLO servers in order until one accepts (or all refuse).

        This is the paper's fallback: "The node has to seek for another
        LIGLO for registration" when a server is at capacity.
        """
        if not liglo_addresses:
            raise LigloError("register_any needs at least one LIGLO address")
        remaining = list(liglo_addresses)

        def try_next(result: RegistrationResult | None = None) -> None:
            if result is not None and result.accepted:
                callback(result)
                return
            if not remaining:
                callback(
                    result
                    if result is not None
                    else RegistrationResult(accepted=False, reason="no LIGLO answered")
                )
                return
            self.register(remaining.pop(0), try_next)

        try_next()

    def _on_register_reply(self, packet: Packet) -> None:
        reply: m.RegisterReply = packet.payload
        record = self._pending_registers.pop(reply.token, None)
        if record is None:
            return  # arrived after timeout
        callback, _, _ = record
        result = RegistrationResult(
            accepted=reply.accepted,
            bpid=reply.bpid,
            peers=reply.peers,
            liglo_address=packet.src,
            reason=reply.reason,
        )
        if reply.accepted:
            self.bpid = reply.bpid
            self.tracer.record(
                self.host.sim.now, "liglo", "registered", bpid=str(reply.bpid)
            )
        callback(result)

    def _expire_register(self, token: int) -> None:
        record = self._pending_registers.pop(token, None)
        if record is None:
            return
        callback, liglo_address, failures = record
        failures += 1
        if self.retry_policy is not None and self.retry_policy.should_retry(failures):
            self.retries += 1
            self.tracer.bump("liglo", "register-retry")
            self.host.sim.schedule(
                self.retry_policy.delay(failures, self.rng),
                self._retry_register,
                liglo_address,
                callback,
                failures,
            )
            return
        callback(RegistrationResult(accepted=False, reason="registration timed out"))

    # -- announcements -------------------------------------------------------------

    def announce(self) -> None:
        """Report our current IP to our LIGLO (call on every reconnect)."""
        if self.bpid is None:
            raise LigloError("cannot announce before registration")
        self.host.send(
            IPAddress(self.bpid.liglo_id), m.PROTO_ANNOUNCE, m.Announce(self.bpid)
        )

    def announce_verified(
        self,
        on_ok: Callable[[], None] | None = None,
        on_failed: Callable[[LigloUnreachableError], None] | None = None,
    ) -> None:
        """Announce and *confirm* it took, by resolving our own BPID.

        The announce message itself is fire-and-forget (no reply on the
        wire), so confirmation reuses the existing resolve exchange: our
        LIGLO answering with our current address proves the announce
        landed.  With a retry policy the announce+verify round repeats
        per the backoff schedule; once attempts run out,
        ``on_failed`` receives a
        :class:`~repro.errors.LigloUnreachableError` — or, with no
        ``on_failed``, the error raises inside the event loop and aborts
        the run (which is exactly what an unhandled outage should do in
        an experiment).
        """
        if self.bpid is None:
            raise LigloError("cannot announce before registration")
        self._verify_announce(0, on_ok, on_failed)

    def _verify_announce(
        self,
        failures: int,
        on_ok: Callable[[], None] | None,
        on_failed: Callable[[LigloUnreachableError], None] | None,
    ) -> None:
        if not self.host.online:
            return  # crashed mid-retry; the next rejoin restarts the exchange
        self.announce()
        assert self.bpid is not None

        def check(reply: m.ResolveReply | None) -> None:
            if (
                reply is not None
                and reply.online
                and reply.address == self.host.address
            ):
                self.tracer.record(
                    self.host.sim.now, "liglo", "announce-verified", bpid=str(self.bpid)
                )
                if on_ok is not None:
                    on_ok()
                return
            fails = failures + 1
            if self.retry_policy is not None and self.retry_policy.should_retry(fails):
                self.retries += 1
                self.tracer.bump("liglo", "announce-retry")
                self.host.sim.schedule(
                    self.retry_policy.delay(fails, self.rng),
                    self._verify_announce,
                    fails,
                    on_ok,
                    on_failed,
                )
                return
            error = LigloUnreachableError(
                f"LIGLO {self.bpid.liglo_id} unreachable: announce unverified "
                f"after {fails} attempt(s)",
                attempts=fails,
            )
            if on_failed is not None:
                on_failed(error)
            else:
                raise error

        # Single-shot resolve: the verify loop owns the retry budget.
        self._send_resolve(self.bpid, check, failures=0, retry=False)

    # -- resolution -----------------------------------------------------------------

    def resolve(
        self,
        bpid: BPID,
        callback: Callable[[m.ResolveReply | None], None],
    ) -> None:
        """Look up a peer's current IP at *its* registered LIGLO.

        The LIGLO's address is recoverable from the BPID itself ("p's
        registered LIGLO can be obtained from p's BPID").  The callback
        receives the reply, or None on timeout (after the retry policy's
        re-sends, when one is attached).
        """
        self._send_resolve(bpid, callback, failures=0, retry=True)

    def _send_resolve(
        self,
        bpid: BPID,
        callback: Callable[[m.ResolveReply | None], None],
        failures: int,
        retry: bool,
    ) -> None:
        token = self._tokens.next()
        self._pending_resolves[token] = (callback, bpid, failures, retry)
        self.host.send(
            IPAddress(bpid.liglo_id), m.PROTO_RESOLVE, m.ResolveRequest(token, bpid)
        )
        self.host.sim.schedule(self.timeout, self._expire_resolve, token)

    def _retry_resolve(
        self,
        bpid: BPID,
        callback: Callable[[m.ResolveReply | None], None],
        failures: int,
    ) -> None:
        if not self.host.online:
            callback(None)
            return
        self._send_resolve(bpid, callback, failures, retry=True)

    def _on_resolve_reply(self, packet: Packet) -> None:
        reply: m.ResolveReply = packet.payload
        record = self._pending_resolves.pop(reply.token, None)
        if record is not None:
            record[0](reply)

    def _expire_resolve(self, token: int) -> None:
        record = self._pending_resolves.pop(token, None)
        if record is None:
            return
        callback, bpid, failures, retry = record
        failures += 1
        if (
            retry
            and self.retry_policy is not None
            and self.retry_policy.should_retry(failures)
        ):
            self.retries += 1
            self.tracer.bump("liglo", "resolve-retry")
            self.host.sim.schedule(
                self.retry_policy.delay(failures, self.rng),
                self._retry_resolve,
                bpid,
                callback,
                failures,
            )
            return
        callback(None)

    # -- keyword hints (super-peer routing) ----------------------------------------

    def publish_hints(self, keywords: Sequence[str]) -> None:
        """Report keywords we share to our LIGLO's hint directory.

        Fire-and-forget, like :meth:`announce`: the directory is a
        routing accelerator, not ground truth — a lost publish only
        means queries for those keywords fall back to flooding.
        """
        if self.bpid is None:
            raise LigloError("cannot publish hints before registration")
        self.host.send(
            IPAddress(self.bpid.liglo_id),
            m.PROTO_HINT_PUBLISH,
            m.HintPublish(self.bpid, tuple(keywords)),
        )

    def fetch_hints(
        self,
        keyword: str,
        callback: Callable[[m.HintReply | None], None],
        timeout: float | None = None,
    ) -> None:
        """Ask our LIGLO which online members hold ``keyword``.

        Single-shot on purpose (no retry-policy re-sends): the caller
        owns the fallback — a plain flood — so on timeout the callback
        just sees None and floods.  ``timeout`` defaults to the client
        timeout but is typically much shorter, to keep a LIGLO outage
        from stalling the query past its quiet period.
        """
        if self.bpid is None:
            raise LigloError("cannot fetch hints before registration")
        token = self._tokens.next()
        self._pending_hints[token] = (callback, keyword)
        self.host.send(
            IPAddress(self.bpid.liglo_id),
            m.PROTO_HINT_QUERY,
            m.HintQuery(token, keyword),
        )
        self.host.sim.schedule(
            timeout if timeout is not None else self.timeout,
            self._expire_hint,
            token,
        )

    def _on_hint_reply(self, packet: Packet) -> None:
        reply: m.HintReply = packet.payload
        record = self._pending_hints.pop(reply.token, None)
        if record is not None:
            record[0](reply)

    def _expire_hint(self, token: int) -> None:
        record = self._pending_hints.pop(token, None)
        if record is not None:
            record[0](None)

    # -- validity probes ---------------------------------------------------------------

    def _on_ping(self, packet: Packet) -> None:
        ping: m.Ping = packet.payload
        if self.bpid is not None:
            self.host.send(packet.src, m.PROTO_PONG, m.Pong(ping.token, self.bpid))
