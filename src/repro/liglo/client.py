"""Node-side LIGLO protocol: register, announce, resolve.

All operations are asynchronous (this is a discrete-event world): the
caller passes a callback, and the client correlates replies to requests
with tokens, handling timeouts for requests whose LIGLO never answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import LigloError
from repro.ids import BPID, SerialCounter
from repro.liglo import messages as m
from repro.net.address import IPAddress
from repro.net.message import Packet
from repro.net.network import Host
from repro.util.tracing import NULL_TRACER, Tracer

#: How long to wait for a LIGLO reply before giving up (seconds).
DEFAULT_TIMEOUT = 5.0


@dataclass(frozen=True, slots=True)
class RegistrationResult:
    """Outcome of a registration attempt delivered to the caller."""

    accepted: bool
    bpid: BPID | None = None
    peers: tuple[tuple[BPID, IPAddress], ...] = ()
    liglo_address: IPAddress | None = None
    reason: str = ""


class LigloClient:
    """One node's view of the LIGLO service."""

    def __init__(
        self,
        host: Host,
        timeout: float = DEFAULT_TIMEOUT,
        tracer: Tracer | None = None,
    ):
        self.host = host
        self.timeout = timeout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.bpid: BPID | None = None
        self._tokens = SerialCounter()
        self._pending_registers: dict[int, Callable[[RegistrationResult], None]] = {}
        self._pending_resolves: dict[int, Callable[[m.ResolveReply | None], None]] = {}
        host.bind(m.PROTO_REGISTER_REPLY, self._on_register_reply)
        host.bind(m.PROTO_RESOLVE_REPLY, self._on_resolve_reply)
        host.bind(m.PROTO_PING, self._on_ping)

    # -- registration -------------------------------------------------------------

    def register(
        self,
        liglo_address: IPAddress,
        callback: Callable[[RegistrationResult], None],
    ) -> None:
        """Ask one LIGLO server for a BPID; the callback gets the outcome."""
        token = self._tokens.next()
        self._pending_registers[token] = callback
        self.host.send(liglo_address, m.PROTO_REGISTER, m.RegisterRequest(token))
        self.host.sim.schedule(self.timeout, self._expire_register, token)

    def register_any(
        self,
        liglo_addresses: Sequence[IPAddress],
        callback: Callable[[RegistrationResult], None],
    ) -> None:
        """Try LIGLO servers in order until one accepts (or all refuse).

        This is the paper's fallback: "The node has to seek for another
        LIGLO for registration" when a server is at capacity.
        """
        if not liglo_addresses:
            raise LigloError("register_any needs at least one LIGLO address")
        remaining = list(liglo_addresses)

        def try_next(result: RegistrationResult | None = None) -> None:
            if result is not None and result.accepted:
                callback(result)
                return
            if not remaining:
                callback(
                    result
                    if result is not None
                    else RegistrationResult(accepted=False, reason="no LIGLO answered")
                )
                return
            self.register(remaining.pop(0), try_next)

        try_next()

    def _on_register_reply(self, packet: Packet) -> None:
        reply: m.RegisterReply = packet.payload
        callback = self._pending_registers.pop(reply.token, None)
        if callback is None:
            return  # arrived after timeout
        result = RegistrationResult(
            accepted=reply.accepted,
            bpid=reply.bpid,
            peers=reply.peers,
            liglo_address=packet.src,
            reason=reply.reason,
        )
        if reply.accepted:
            self.bpid = reply.bpid
            self.tracer.record(
                self.host.sim.now, "liglo", "registered", bpid=str(reply.bpid)
            )
        callback(result)

    def _expire_register(self, token: int) -> None:
        callback = self._pending_registers.pop(token, None)
        if callback is not None:
            callback(
                RegistrationResult(accepted=False, reason="registration timed out")
            )

    # -- announcements -------------------------------------------------------------

    def announce(self) -> None:
        """Report our current IP to our LIGLO (call on every reconnect)."""
        if self.bpid is None:
            raise LigloError("cannot announce before registration")
        self.host.send(
            IPAddress(self.bpid.liglo_id), m.PROTO_ANNOUNCE, m.Announce(self.bpid)
        )

    # -- resolution -----------------------------------------------------------------

    def resolve(
        self,
        bpid: BPID,
        callback: Callable[[m.ResolveReply | None], None],
    ) -> None:
        """Look up a peer's current IP at *its* registered LIGLO.

        The LIGLO's address is recoverable from the BPID itself ("p's
        registered LIGLO can be obtained from p's BPID").  The callback
        receives the reply, or None on timeout.
        """
        token = self._tokens.next()
        self._pending_resolves[token] = callback
        self.host.send(
            IPAddress(bpid.liglo_id), m.PROTO_RESOLVE, m.ResolveRequest(token, bpid)
        )
        self.host.sim.schedule(self.timeout, self._expire_resolve, token)

    def _on_resolve_reply(self, packet: Packet) -> None:
        reply: m.ResolveReply = packet.payload
        callback = self._pending_resolves.pop(reply.token, None)
        if callback is not None:
            callback(reply)

    def _expire_resolve(self, token: int) -> None:
        callback = self._pending_resolves.pop(token, None)
        if callback is not None:
            callback(None)

    # -- validity probes ---------------------------------------------------------------

    def _on_ping(self, packet: Packet) -> None:
        ping: m.Ping = packet.payload
        if self.bpid is not None:
            self.host.send(packet.src, m.PROTO_PONG, m.Pong(ping.token, self.bpid))
