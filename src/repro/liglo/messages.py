"""Wire messages of the LIGLO protocol."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import BPID
from repro.net.address import IPAddress

PROTO_REGISTER = "liglo.register"
PROTO_REGISTER_REPLY = "liglo.register.reply"
PROTO_ANNOUNCE = "liglo.announce"
PROTO_RESOLVE = "liglo.resolve"
PROTO_RESOLVE_REPLY = "liglo.resolve.reply"
PROTO_PING = "liglo.ping"
PROTO_PONG = "liglo.pong"


@dataclass(frozen=True, slots=True)
class RegisterRequest:
    """Ask a LIGLO server for a BPID (correlated by ``token``)."""

    token: int


@dataclass(frozen=True, slots=True)
class RegisterReply:
    """Registration outcome.

    On acceptance carries the fresh BPID and the initial list of
    ``(BPID, current IP)`` direct-peer candidates; on rejection (server
    at capacity) carries the reason.
    """

    token: int
    accepted: bool
    bpid: BPID | None = None
    peers: tuple[tuple[BPID, IPAddress], ...] = ()
    reason: str = ""


@dataclass(frozen=True, slots=True)
class Announce:
    """A member reports its (possibly new) IP on (re)connecting."""

    bpid: BPID


@dataclass(frozen=True, slots=True)
class ResolveRequest:
    """Ask a LIGLO server for a member's current IP and status."""

    token: int
    bpid: BPID


@dataclass(frozen=True, slots=True)
class ResolveReply:
    """Resolution outcome: current address (None if unknown/offline)."""

    token: int
    bpid: BPID
    address: IPAddress | None
    online: bool
    known: bool = True


@dataclass(frozen=True, slots=True)
class Ping:
    """Validity check probe from a LIGLO server to a member."""

    token: int


@dataclass(frozen=True, slots=True)
class Pong:
    """Member's response to a validity probe."""

    token: int
    bpid: BPID
