"""Wire messages of the LIGLO protocol."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import BPID
from repro.net.address import IPAddress
from repro.net import codec as wire

PROTO_REGISTER = "liglo.register"
PROTO_REGISTER_REPLY = "liglo.register.reply"
PROTO_ANNOUNCE = "liglo.announce"
PROTO_RESOLVE = "liglo.resolve"
PROTO_RESOLVE_REPLY = "liglo.resolve.reply"
PROTO_PING = "liglo.ping"
PROTO_PONG = "liglo.pong"
PROTO_HINT_PUBLISH = "liglo.hints.publish"
PROTO_HINT_QUERY = "liglo.hints.query"
PROTO_HINT_REPLY = "liglo.hints.reply"


@dataclass(frozen=True, slots=True)
class RegisterRequest:
    """Ask a LIGLO server for a BPID (correlated by ``token``)."""

    token: int


@dataclass(frozen=True, slots=True)
class RegisterReply:
    """Registration outcome.

    On acceptance carries the fresh BPID and the initial list of
    ``(BPID, current IP)`` direct-peer candidates; on rejection (server
    at capacity) carries the reason.
    """

    token: int
    accepted: bool
    bpid: BPID | None = None
    peers: tuple[tuple[BPID, IPAddress], ...] = ()
    reason: str = ""


@dataclass(frozen=True, slots=True)
class Announce:
    """A member reports its (possibly new) IP on (re)connecting."""

    bpid: BPID


@dataclass(frozen=True, slots=True)
class ResolveRequest:
    """Ask a LIGLO server for a member's current IP and status."""

    token: int
    bpid: BPID


@dataclass(frozen=True, slots=True)
class ResolveReply:
    """Resolution outcome: current address (None if unknown/offline)."""

    token: int
    bpid: BPID
    address: IPAddress | None
    online: bool
    known: bool = True


@dataclass(frozen=True, slots=True)
class Ping:
    """Validity check probe from a LIGLO server to a member."""

    token: int


@dataclass(frozen=True, slots=True)
class Pong:
    """Member's response to a validity probe."""

    token: int
    bpid: BPID


@dataclass(frozen=True, slots=True)
class HintPublish:
    """A member's per-keyword digest of what it shares.

    Feeds the server's keyword hint directory (super-peer routing); the
    member sends only keywords it has not published before.
    """

    bpid: BPID
    keywords: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class HintQuery:
    """Ask our LIGLO which members hold ``keyword`` (super-peer routing)."""

    token: int
    keyword: str


@dataclass(frozen=True, slots=True)
class HintReply:
    """Online members known to hold the keyword, with current addresses."""

    token: int
    keyword: str
    holders: tuple[tuple[BPID, IPAddress], ...] = ()


# -- compact wire registrations (type id block 0x01xx) -------------------------

_SAMPLE_BPID = BPID("10.0.0.1", 7)

wire.register(
    RegisterRequest,
    0x0101,
    (("token", wire.I64),),
    sample=lambda: RegisterRequest(token=42),
)
wire.register(
    RegisterReply,
    0x0102,
    (
        ("token", wire.I64),
        ("accepted", wire.BOOL),
        ("bpid", wire.opt(wire.BPID_CODEC)),
        ("peers", wire.seq(wire.pair(wire.BPID_CODEC, wire.IPADDR_CODEC))),
        ("reason", wire.STR),
    ),
    sample=lambda: RegisterReply(
        token=42,
        accepted=True,
        bpid=_SAMPLE_BPID,
        peers=((BPID("10.0.0.1", 3), IPAddress("10.0.1.9")),),
    ),
)
wire.register(
    Announce,
    0x0103,
    (("bpid", wire.BPID_CODEC),),
    sample=lambda: Announce(bpid=_SAMPLE_BPID),
)
wire.register(
    ResolveRequest,
    0x0104,
    (("token", wire.I64), ("bpid", wire.BPID_CODEC)),
    sample=lambda: ResolveRequest(token=43, bpid=_SAMPLE_BPID),
)
wire.register(
    ResolveReply,
    0x0105,
    (
        ("token", wire.I64),
        ("bpid", wire.BPID_CODEC),
        ("address", wire.opt(wire.IPADDR_CODEC)),
        ("online", wire.BOOL),
        ("known", wire.BOOL),
    ),
    sample=lambda: ResolveReply(
        token=43,
        bpid=_SAMPLE_BPID,
        address=IPAddress("10.0.2.17"),
        online=True,
    ),
)
wire.register(
    Ping, 0x0106, (("token", wire.I64),), sample=lambda: Ping(token=44)
)
wire.register(
    Pong,
    0x0107,
    (("token", wire.I64), ("bpid", wire.BPID_CODEC)),
    sample=lambda: Pong(token=44, bpid=_SAMPLE_BPID),
)
wire.register(
    HintPublish,
    0x0108,
    (("bpid", wire.BPID_CODEC), ("keywords", wire.seq(wire.STR))),
    sample=lambda: HintPublish(bpid=_SAMPLE_BPID, keywords=("alpha", "beta")),
)
wire.register(
    HintQuery,
    0x0109,
    (("token", wire.I64), ("keyword", wire.STR)),
    sample=lambda: HintQuery(token=45, keyword="alpha"),
)
wire.register(
    HintReply,
    0x010A,
    (
        ("token", wire.I64),
        ("keyword", wire.STR),
        ("holders", wire.seq(wire.pair(wire.BPID_CODEC, wire.IPADDR_CODEC))),
    ),
    sample=lambda: HintReply(
        token=45,
        keyword="alpha",
        holders=((BPID("10.0.0.1", 3), IPAddress("10.0.1.9")),),
    ),
)
