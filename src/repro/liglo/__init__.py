"""LIGLO: Location-Independent GLObal name lookup servers.

A LIGLO server is a fixed-IP node that (1) issues each registering node a
permanent ``BPID`` and (2) tracks that node's *current* IP address and
online status, so peers remain recognizable across address changes.  Any
number of LIGLO servers coexist in one BestPeer network; each is
authoritative only for its own members, and each may cap its membership
for load control.
"""

from repro.liglo.client import LigloClient, RegistrationResult
from repro.liglo.messages import (
    Announce,
    Ping,
    Pong,
    RegisterReply,
    RegisterRequest,
    ResolveReply,
    ResolveRequest,
)
from repro.liglo.server import LigloServer, MemberEntry

__all__ = [
    "LigloServer",
    "MemberEntry",
    "LigloClient",
    "RegistrationResult",
    "RegisterRequest",
    "RegisterReply",
    "Announce",
    "ResolveRequest",
    "ResolveReply",
    "Ping",
    "Pong",
]
