"""The LIGLO server.

Runs on a host with a fixed IP (LIGLO hosts never churn in this
reproduction; their address *is* their identity — the ``liglo_id`` half
of every BPID they issue).  Functions, per Section 3.4:

* issue BPIDs, up to an optional membership ``capacity`` ("a LIGLO
  server can reject any new inquiry on assigning BPID in order to
  preserve the efficiency for the existing members");
* record each member's current IP whenever it announces itself;
* on registration, hand the newcomer an initial list of ``(BPID, IP)``
  direct-peer candidates drawn from its online members;
* periodically check the validity of registered IPs ("In BestPeer,
  LIGLO will periodically check the validity of its registered
  participants' IP addresses") by pinging members and marking the
  silent ones offline;
* (beyond the paper) serve as the super-peer tier's keyword hint
  directory: members publish per-keyword digests of what they share,
  and the super-peer routing strategy asks "who holds this keyword?"
  before flooding — see ``docs/ROUTING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LigloError
from repro.ids import BPID, SerialCounter
from repro.liglo import messages as m
from repro.net.address import IPAddress
from repro.net.message import Packet
from repro.net.network import Host
from repro.util.tracing import NULL_TRACER, Tracer

#: How many (BPID, IP) pairs a registration reply carries by default.
DEFAULT_INITIAL_PEERS = 5

#: How many holders a hint reply carries at most.
DEFAULT_MAX_HINTS = 64


@dataclass
class MemberEntry:
    """What a LIGLO server knows about one of its members."""

    bpid: BPID
    address: IPAddress
    online: bool
    registered_at: float
    last_seen: float


class LigloServer:
    """LIGLO service bound to one fixed-IP host."""

    def __init__(
        self,
        host: Host,
        capacity: int | None = None,
        initial_peers: int = DEFAULT_INITIAL_PEERS,
        check_interval: float | None = None,
        check_timeout: float = 2.0,
        max_hints: int = DEFAULT_MAX_HINTS,
        tracer: Tracer | None = None,
    ):
        if host.address is None:
            raise LigloError("a LIGLO server needs an online, fixed-IP host")
        if capacity is not None and capacity < 1:
            raise LigloError(f"capacity must be >= 1, got {capacity}")
        self.host = host
        self.server_id = str(host.address)
        self.capacity = capacity
        self.initial_peers = initial_peers
        self.check_interval = check_interval
        self.check_timeout = check_timeout
        self.max_hints = max_hints
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.members: dict[int, MemberEntry] = {}
        #: keyword -> node ids of members that published it (hint directory)
        self.hint_index: dict[str, set[int]] = {}
        self.hint_publishes = 0
        self.hint_queries = 0
        self._node_serials = SerialCounter()
        self._ping_serials = SerialCounter()
        self._pending_pings: dict[int, int] = {}  # ping token -> node_id
        self.registrations_rejected = 0
        self.ping_timeouts = 0
        host.bind(m.PROTO_REGISTER, self._on_register)
        host.bind(m.PROTO_ANNOUNCE, self._on_announce)
        host.bind(m.PROTO_RESOLVE, self._on_resolve)
        host.bind(m.PROTO_PONG, self._on_pong)
        host.bind(m.PROTO_HINT_PUBLISH, self._on_hint_publish)
        host.bind(m.PROTO_HINT_QUERY, self._on_hint_query)
        if check_interval is not None:
            # Daemon timer: periodic housekeeping must not keep an
            # unbounded simulation run alive forever.
            self.host.sim.schedule_daemon(check_interval, self._run_validity_check)

    # -- protocol handlers ---------------------------------------------------

    def _on_register(self, packet: Packet) -> None:
        request: m.RegisterRequest = packet.payload
        if self.capacity is not None and len(self.members) >= self.capacity:
            self.registrations_rejected += 1
            self.tracer.record(
                self.host.sim.now, "liglo", "reject", server=self.server_id
            )
            reply = m.RegisterReply(
                token=request.token,
                accepted=False,
                reason=f"LIGLO {self.server_id} is at capacity ({self.capacity})",
            )
            self.host.send(packet.src, m.PROTO_REGISTER_REPLY, reply)
            return
        node_id = self._node_serials.next()
        bpid = BPID(self.server_id, node_id)
        now = self.host.sim.now
        peers = self._initial_peer_list()
        self.members[node_id] = MemberEntry(
            bpid=bpid,
            address=packet.src,
            online=True,
            registered_at=now,
            last_seen=now,
        )
        self.tracer.record(
            now, "liglo", "register", server=self.server_id, bpid=str(bpid)
        )
        reply = m.RegisterReply(
            token=request.token, accepted=True, bpid=bpid, peers=tuple(peers)
        )
        self.host.send(packet.src, m.PROTO_REGISTER_REPLY, reply)

    def _initial_peer_list(self) -> list[tuple[BPID, IPAddress]]:
        """Most recently seen online members, newest first."""
        online = [entry for entry in self.members.values() if entry.online]
        online.sort(key=lambda entry: entry.last_seen, reverse=True)
        return [(entry.bpid, entry.address) for entry in online[: self.initial_peers]]

    def _on_announce(self, packet: Packet) -> None:
        announce: m.Announce = packet.payload
        entry = self._member_for(announce.bpid)
        if entry is None:
            return  # not ours, or forgotten; the node must re-register
        entry.address = packet.src
        entry.online = True
        entry.last_seen = self.host.sim.now
        self.tracer.record(
            self.host.sim.now,
            "liglo",
            "announce",
            bpid=str(announce.bpid),
            address=str(packet.src),
        )

    def _on_resolve(self, packet: Packet) -> None:
        request: m.ResolveRequest = packet.payload
        entry = self._member_for(request.bpid)
        if entry is None:
            reply = m.ResolveReply(
                token=request.token,
                bpid=request.bpid,
                address=None,
                online=False,
                known=False,
            )
        else:
            reply = m.ResolveReply(
                token=request.token,
                bpid=request.bpid,
                address=entry.address if entry.online else None,
                online=entry.online,
            )
        self.host.send(packet.src, m.PROTO_RESOLVE_REPLY, reply)

    def _on_pong(self, packet: Packet) -> None:
        pong: m.Pong = packet.payload
        node_id = self._pending_pings.pop(pong.token, None)
        if node_id is None:
            return
        entry = self.members.get(node_id)
        if entry is not None:
            entry.online = True
            entry.last_seen = self.host.sim.now

    # -- keyword hint directory (super-peer routing) -----------------------------

    def _on_hint_publish(self, packet: Packet) -> None:
        publish: m.HintPublish = packet.payload
        entry = self._member_for(publish.bpid)
        if entry is None:
            return  # not ours, or forgotten; the node must re-register
        self.hint_publishes += 1
        for keyword in publish.keywords:
            self.hint_index.setdefault(keyword, set()).add(publish.bpid.node_id)
        # A publish is also a liveness signal, like an announce.
        entry.address = packet.src
        entry.online = True
        entry.last_seen = self.host.sim.now
        self.tracer.record(
            self.host.sim.now,
            "liglo",
            "hint-publish",
            bpid=str(publish.bpid),
            keywords=len(publish.keywords),
        )

    def _on_hint_query(self, packet: Packet) -> None:
        request: m.HintQuery = packet.payload
        self.hint_queries += 1
        holders: list[tuple[BPID, IPAddress]] = []
        for node_id in sorted(self.hint_index.get(request.keyword, ())):
            entry = self.members.get(node_id)
            if entry is not None and entry.online:
                holders.append((entry.bpid, entry.address))
            if len(holders) >= self.max_hints:
                break
        reply = m.HintReply(request.token, request.keyword, tuple(holders))
        self.host.send(packet.src, m.PROTO_HINT_REPLY, reply)

    # -- validity checking ------------------------------------------------------

    def _run_validity_check(self) -> None:
        """Ping every supposedly-online member; silence means offline."""
        for node_id, entry in self.members.items():
            if not entry.online:
                continue
            token = self._ping_serials.next()
            self._pending_pings[token] = node_id
            self.host.send(entry.address, m.PROTO_PING, m.Ping(token))
            self.host.sim.schedule(self.check_timeout, self._expire_ping, token)
        if self.check_interval is not None:
            self.host.sim.schedule_daemon(self.check_interval, self._run_validity_check)

    def _expire_ping(self, token: int) -> None:
        node_id = self._pending_pings.pop(token, None)
        if node_id is None:
            return  # the pong made it in time
        self.ping_timeouts += 1
        entry = self.members.get(node_id)
        if entry is not None:
            entry.online = False
            self.tracer.record(
                self.host.sim.now, "liglo", "mark-offline", bpid=str(entry.bpid)
            )

    # -- queries (for tests and operators) -----------------------------------------

    def member_count(self) -> int:
        return len(self.members)

    def stats(self) -> dict[str, int]:
        """Operational counters, including outstanding ping tokens."""
        return {
            "members": len(self.members),
            "online_members": sum(
                1 for entry in self.members.values() if entry.online
            ),
            "pending_pings": len(self._pending_pings),
            "ping_timeouts": self.ping_timeouts,
            "registrations_rejected": self.registrations_rejected,
            "hint_keywords": len(self.hint_index),
            "hint_publishes": self.hint_publishes,
            "hint_queries": self.hint_queries,
        }

    def lookup(self, bpid: BPID) -> MemberEntry | None:
        """Local (non-network) lookup of a member entry."""
        return self._member_for(bpid)

    def _member_for(self, bpid: BPID) -> MemberEntry | None:
        if bpid.liglo_id != self.server_id:
            return None
        return self.members.get(bpid.node_id)
