"""Owner-driven replica placement, invalidation, and hot-object caching.

One :class:`ReplicationManager` rides inside every
:class:`~repro.core.node.BestPeerNode` and plays both protocol roles:

* **Owner**: on share it ranks candidate holders (its LIGLO-suggested
  direct peers first — lowest timeout run, then highest lifetime answer
  count — then peers rediscovered through answers) and runs the
  offer/accept/push handshake until ``rf - 1`` extra copies exist.
  Records whose per-record query-hit EWMA crosses the hot threshold are
  promoted to ``hot_rf`` copies.  Reshare and delete send versioned
  :class:`~repro.replication.messages.ReplicaInvalidate` frames to every
  holder.
* **Holder**: accepted pushes land in a private replica StorM store
  (never the node's own sharable store, so owner-side statistics and
  search byte-charges are untouched), indexed under the owner's record
  id and version.  Deletes tombstone the version so a late or replayed
  push can never resurrect a retired record; reshares trigger a lazy
  read-repair — an ordinary out-of-network fetch of the replacement.

Replica answers reuse the node's whole existing answer path: the
:class:`~repro.replication.agent.ReplicatedSearchAgent` searches the
replica store alongside the primary one, and reported replica rids get
the high page-id bit set so they never collide with the holder's own
records (and so ``fetch`` can route them back to the replica store).

Everything is gated per call on ``REPRO_REPLICATION`` (see
:mod:`repro.replication.policy`); with ``rf=1`` and no cache the manager
never sends a frame, touches a store, or perturbs any byte series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.ids import BPID, SerialCounter
from repro.net.address import IPAddress
from repro.replication.cache import ResultCache
from repro.replication.messages import (
    PROTO_REPLICA_ACCEPT,
    PROTO_REPLICA_INVALIDATE,
    PROTO_REPLICA_OFFER,
    PROTO_REPLICA_PUSH,
    ReplicaAccept,
    ReplicaInvalidate,
    ReplicaOffer,
    ReplicaPush,
    ReplicaRecord,
)
from repro.replication.policy import replication_bypassed
from repro.storm.heapfile import RecordId
from repro.storm.objects import normalize_keyword
from repro.storm.store import SearchResult, StorM
from repro.errors import StormError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.node import BestPeerNode
    from repro.core.query import QueryHandle
    from repro.net.host import Packet

#: High bit of the 32-bit page id, set on rids a holder reports for
#: *replica* matches.  Primary heap files never reach 2**31 pages, so a
#: flagged rid can never collide with one of the holder's own records —
#: the initiator's dedup and the fetch path both stay unambiguous.
REPLICA_PAGE_BIT = 0x8000_0000

#: Rejoined-peer memory: how many recently-heard-from non-peers the
#: manager remembers as placement candidates and address refreshers.
_LAST_SEEN_LIMIT = 64


def is_replica_rid(rid: RecordId) -> bool:
    """True when ``rid`` advertises a replica-store record."""
    return bool(rid.page_id & REPLICA_PAGE_BIT)


def replica_store_rid(rid: RecordId) -> RecordId:
    """The holder-local replica-store rid behind an advertised rid."""
    return RecordId(rid.page_id & ~REPLICA_PAGE_BIT, rid.slot)


@dataclass
class _HolderCopy:
    """One replica this node holds, keyed by ``(owner, owner rid)``."""

    version: int
    store_rid: RecordId
    keywords: tuple[str, ...]


@dataclass
class ReplicationManager:
    """Both halves of the replication protocol for one node."""

    node: "BestPeerNode"

    def __post_init__(self) -> None:
        self.policy = self.node.config.replication
        self.cache: ResultCache | None = (
            ResultCache(self.policy.cache_capacity) if self.policy.caches else None
        )
        # -- owner side -----------------------------------------------------
        #: current version of each live shared record
        self._versions: dict[RecordId, int] = {}
        #: last version a now-retired rid was shared under (slot reuse safety)
        self._retired_versions: dict[RecordId, int] = {}
        #: rid -> holder bpid -> last known holder address
        self._holders: dict[RecordId, dict[BPID, IPAddress]] = {}
        #: offer token -> (holder bpid, address, offered rids, expiry timer)
        self._pending_offers: dict[
            int, tuple[BPID, IPAddress, tuple[RecordId, ...], object]
        ] = {}
        self._tokens = SerialCounter()
        #: per-record query-hit EWMA (hotness signal)
        self._ewma: dict[RecordId, float] = {}
        #: records already promoted to ``hot_rf`` copies
        self._hot: set[RecordId] = set()
        #: rids shared before the node joined; placed on flush_pending()
        self._pending_share: list[RecordId] = []
        # -- holder side ----------------------------------------------------
        self._store: StorM | None = None
        self._copies: dict[tuple[BPID, RecordId], _HolderCopy] = {}
        self._by_store_rid: dict[RecordId, tuple[BPID, RecordId]] = {}
        #: (owner, rid) -> highest deleted version; pushes at or below it
        #: are dropped, so a deleted record can never be resurrected
        self._tombstones: dict[tuple[BPID, RecordId], int] = {}
        self._owner_addresses: dict[BPID, IPAddress] = {}
        # -- rejoin memory (suspicion/liveness interplay fix) ---------------
        #: recently-heard-from nodes beyond the direct peer table; an
        #: evicted-and-backfilled suspect that rejoins and answers again
        #: lands here, so it is rediscoverable as a placement target and
        #: its stale holder addresses get refreshed
        self._last_seen: dict[BPID, IPAddress] = {}
        # -- counters (surface through node.statistics()) -------------------
        self.replica_answers = 0
        self.replicas_pushed = 0
        self.offers_sent = 0
        self.offers_declined = 0
        self.invalidations = 0
        self.stale_repairs = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when the policy asks for anything and no bypass is set."""
        return self.policy.active and not replication_bypassed()

    @property
    def replicas_held(self) -> int:
        """Replica copies this node currently holds for other owners."""
        return len(self._copies)

    def bind(self) -> None:
        """Attach the four protocol handlers to the node's host."""
        host = self.node.host
        host.bind(PROTO_REPLICA_OFFER, self._on_offer)
        host.bind(PROTO_REPLICA_ACCEPT, self._on_accept)
        host.bind(PROTO_REPLICA_PUSH, self._on_push)
        host.bind(PROTO_REPLICA_INVALIDATE, self._on_invalidate)

    def statistics(self) -> dict[str, int]:
        """Replication counters, merged into ``node.statistics()``."""
        cache = self.cache
        return {
            "replicas_held": self.replicas_held,
            "replica_answers": self.replica_answers,
            "replicas_pushed": self.replicas_pushed,
            "replica_offers": self.offers_sent,
            "replica_declines": self.offers_declined,
            "invalidations": self.invalidations,
            "stale_repairs": self.stale_repairs,
            "cache_hits": cache.hits if cache is not None else 0,
            "cache_misses": cache.misses if cache is not None else 0,
            "cache_evictions": cache.evictions if cache is not None else 0,
            "cache_invalidations": cache.invalidations if cache is not None else 0,
        }

    # -- owner: placement --------------------------------------------------------

    def on_share(self, rids: Sequence[RecordId]) -> None:
        """A batch of records just landed in the node's sharable store."""
        if not self.enabled:
            return
        for rid in rids:
            if rid not in self._versions:
                self._versions[rid] = self._retired_versions.get(rid, 0) + 1
        if self.policy.rf <= 1:
            return
        if self.node.engine is None or not self.node.host.online:
            self._pending_share.extend(rids)
            return
        self._place(tuple(rids), self.policy.rf - 1)

    def flush_pending(self) -> None:
        """Place records that were shared before the node joined."""
        if not self._pending_share or not self.enabled:
            return
        if self.node.engine is None or not self.node.host.online:
            return
        pending, self._pending_share = self._pending_share, []
        live = tuple(rid for rid in pending if rid in self._versions)
        if live:
            self._place(live, self.policy.rf - 1)

    def _candidates(self) -> list[tuple[BPID, IPAddress]]:
        """Holder candidates, best first.

        Direct peers (the LIGLO-suggested neighbour set) ranked by
        lowest consecutive-timeout run then highest lifetime answer
        count; suspects are skipped.  Nodes remembered from answers but
        not currently peers follow, in stable BPID order — this is what
        lets an evicted-and-backfilled suspect that rejoined be chosen
        again.
        """
        node = self.node
        seen: set[BPID] = set()
        if node.engine is not None:
            seen.add(node.bpid)
        ranked: list[tuple[BPID, IPAddress]] = []
        peers = sorted(
            (peer for peer in node.peers.entries() if not peer.suspect),
            key=lambda peer: (
                peer.timeouts,
                -peer.total_answers,
                peer.bpid.liglo_id,
                peer.bpid.node_id,
            ),
        )
        for peer in peers:
            if peer.bpid in seen:
                continue
            seen.add(peer.bpid)
            ranked.append((peer.bpid, peer.address))
        extras = sorted(
            (
                (bpid, address)
                for bpid, address in self._last_seen.items()
                if bpid not in seen and bpid not in node.peers
            ),
            key=lambda item: (item[0].liglo_id, item[0].node_id),
        )
        ranked.extend(extras)
        return ranked

    def _place(self, rids: tuple[RecordId, ...], extra_copies: int) -> None:
        """Offer each rid to enough candidates to reach ``extra_copies``.

        Holders are recorded optimistically at offer time (and rolled
        back on decline or timeout) so overlapping share bursts do not
        over-place; an invalidate racing ahead of its push is harmless
        because the holder tombstones first.
        """
        if extra_copies < 1 or not self.enabled:
            return
        candidates = self._candidates()
        if not candidates:
            return
        assignments: dict[tuple[BPID, IPAddress], list[RecordId]] = {}
        for rid in rids:
            holders = self._holders.setdefault(rid, {})
            need = extra_copies - len(holders)
            for bpid, address in candidates:
                if need <= 0:
                    break
                if bpid in holders:
                    continue
                holders[bpid] = address
                assignments.setdefault((bpid, address), []).append(rid)
                need -= 1
        for (bpid, address), batch in assignments.items():
            self._offer(bpid, address, tuple(batch))

    def _offer(
        self, bpid: BPID, address: IPAddress, rids: tuple[RecordId, ...]
    ) -> None:
        node = self.node
        count = 0
        total = 0
        for rid in rids:
            try:
                obj = node.storm.get(rid)
            except StormError:
                continue
            count += 1
            total += obj.size
        if count == 0:
            self._rollback(bpid, rids)
            return
        token = self._tokens.next()
        timer = node.sim.schedule(node.config.fetch_timeout, self._expire_offer, token)
        self._pending_offers[token] = (bpid, address, rids, timer)
        self.offers_sent += 1
        node.host.send(
            address,
            PROTO_REPLICA_OFFER,
            ReplicaOffer(token=token, owner=node.bpid, record_count=count, total_bytes=total),
        )
        node.tracer.record(
            node.sim.now,
            "replication",
            "offer",
            node=node.name,
            holder=str(bpid),
            records=count,
        )

    def _rollback(self, bpid: BPID, rids: tuple[RecordId, ...]) -> None:
        for rid in rids:
            holders = self._holders.get(rid)
            if holders is not None:
                holders.pop(bpid, None)

    def _expire_offer(self, token: int) -> None:
        pending = self._pending_offers.pop(token, None)
        if pending is None:
            return
        bpid, address, rids, _timer = pending
        self._rollback(bpid, rids)
        self.node._charge_timeout("replica", bpid)
        self._resolve_and_reoffer(bpid, address, rids)

    def _resolve_and_reoffer(
        self, bpid: BPID, stale: IPAddress, rids: tuple[RecordId, ...]
    ) -> None:
        """An offer timed out; the candidate may simply have moved.

        Peers reconnect under fresh IPs (Section 2), so a candidate
        drawn from the last-seen ledger — an evicted-and-backfilled
        suspect, say — is often alive behind a stale address.  Its
        registered LIGLO is recoverable from the BPID, so ask it for
        the current IP and re-offer once if the peer moved.  A resolve
        that returns the address we already tried means the peer is
        genuinely unreachable, which bounds the retry: each extra
        attempt needs a *new* address.
        """
        if not self.enabled or self.node.engine is None:
            return

        def resolved(reply) -> None:
            if reply is None or not reply.online or reply.address is None:
                return
            if reply.address == stale:
                return
            self.note_peer_alive(bpid, reply.address)
            live = tuple(rid for rid in rids if rid in self._versions)
            if not live:
                return
            for rid in live:
                self._holders.setdefault(rid, {})[bpid] = reply.address
            self._offer(bpid, reply.address, live)

        self.node.liglo.resolve(bpid, resolved)

    def _on_accept(self, packet: "Packet") -> None:
        accept: ReplicaAccept = packet.payload
        pending = self._pending_offers.pop(accept.token, None)
        if pending is None:
            return
        bpid, address, rids, timer = pending
        timer.cancel()
        node = self.node
        node.peers.note_alive(accept.holder, node.sim.now)
        if not accept.accepted:
            self.offers_declined += 1
            self._rollback(bpid, rids)
            return
        records = []
        for rid in rids:
            version = self._versions.get(rid)
            if version is None:  # deleted while the offer was in flight
                continue
            try:
                obj = node.storm.get(rid)
            except StormError:
                continue
            records.append(
                ReplicaRecord(
                    rid=rid, version=version, keywords=obj.keywords, payload=obj.payload
                )
            )
        if not records:
            self._rollback(bpid, rids)
            return
        assert node.host.address is not None
        self.replicas_pushed += len(records)
        node.host.send(
            address,
            PROTO_REPLICA_PUSH,
            ReplicaPush(
                token=accept.token,
                owner=node.bpid,
                owner_address=node.host.address,
                records=tuple(records),
            ),
        )
        node.tracer.record(
            node.sim.now,
            "replication",
            "push",
            node=node.name,
            holder=str(bpid),
            records=len(records),
        )

    # -- owner: invalidation -----------------------------------------------------

    def on_delete(self, rid: RecordId, keywords: Sequence[str]) -> None:
        """The record at ``rid`` was just deleted from the primary store."""
        if replication_bypassed():
            return
        normalized = tuple(normalize_keyword(keyword) for keyword in keywords)
        if self.cache is not None:
            self.cache.invalidate_keywords(normalized)
        self._ewma.pop(rid, None)
        self._hot.discard(rid)
        version = self._versions.pop(rid, None)
        holders = self._holders.pop(rid, None)
        if version is None:
            return
        self._retired_versions[rid] = version
        if not holders:
            return
        invalidate = ReplicaInvalidate(
            owner=self.node.bpid,
            rid=rid,
            version=version,
            delete=True,
            keywords=normalized,
        )
        for address in holders.values():
            self.invalidations += 1
            self.node.host.send(address, PROTO_REPLICA_INVALIDATE, invalidate)

    def on_reshare(
        self,
        old_rid: RecordId,
        new_rid: RecordId,
        old_keywords: Sequence[str],
        new_keywords: Sequence[str],
    ) -> None:
        """``old_rid`` was republished as ``new_rid`` with fresh content.

        Every holder of the old copy is told to drop it and lazily
        read-repair from the replacement; versions bump so a stale push
        can never win over the repair.
        """
        if replication_bypassed():
            return
        normalized_old = tuple(normalize_keyword(keyword) for keyword in old_keywords)
        normalized_new = tuple(normalize_keyword(keyword) for keyword in new_keywords)
        if self.cache is not None:
            self.cache.invalidate_keywords(normalized_old + normalized_new)
        self._ewma.pop(old_rid, None)
        self._hot.discard(old_rid)
        old_version = self._versions.pop(old_rid, None)
        holders = self._holders.pop(old_rid, None)
        if old_version is None:
            # The old record predates replication being active; treat the
            # replacement as a fresh share.
            self.on_share((new_rid,))
            return
        self._retired_versions[old_rid] = old_version
        new_version = (
            max(old_version, self._retired_versions.get(new_rid, 0)) + 1
        )
        self._versions[new_rid] = new_version
        if not holders:
            if self.policy.rf > 1:
                self._place((new_rid,), self.policy.rf - 1)
            return
        self._holders[new_rid] = dict(holders)
        invalidate = ReplicaInvalidate(
            owner=self.node.bpid,
            rid=old_rid,
            version=new_version,
            delete=False,
            keywords=normalized_old,
            repair_rid=new_rid,
            repair_keywords=normalized_new,
        )
        for address in holders.values():
            self.invalidations += 1
            self.node.host.send(address, PROTO_REPLICA_INVALIDATE, invalidate)

    # -- owner: hotness ----------------------------------------------------------

    def note_query_hits(self, rids: Iterable[RecordId]) -> None:
        """A query matched these primary records here; bump their EWMAs.

        Each hit contributes 1 and decays the history by
        ``1 - ewma_alpha``, so the level approaches ``1 / ewma_alpha``
        under sustained hits; crossing ``hot_threshold`` promotes the
        record to ``hot_rf`` copies.
        """
        policy = self.policy
        if policy.hot_rf is None or policy.hot_rf <= 1 or replication_bypassed():
            return
        alpha = policy.ewma_alpha
        for rid in rids:
            level = self._ewma.get(rid, 0.0) * (1.0 - alpha) + 1.0
            self._ewma[rid] = level
            if level < policy.hot_threshold or rid in self._hot:
                continue
            self._hot.add(rid)
            if rid not in self._versions:
                self._versions[rid] = self._retired_versions.get(rid, 0) + 1
            self.node.tracer.record(
                self.node.sim.now,
                "replication",
                "hot-promote",
                node=self.node.name,
                rid=str(rid),
            )
            self._place((rid,), policy.hot_rf - 1)

    def hot_records(self) -> frozenset[RecordId]:
        """Records currently promoted to ``hot_rf`` copies."""
        return frozenset(self._hot)

    # -- holder: protocol handlers -----------------------------------------------

    def _on_offer(self, packet: "Packet") -> None:
        offer: ReplicaOffer = packet.payload
        node = self.node
        if node.engine is None:
            return  # not joined: cannot identify ourselves; offer expires
        accepted = self.policy.active and not replication_bypassed()
        reason = "" if accepted else "replication disabled"
        node.host.send(
            packet.src,
            PROTO_REPLICA_ACCEPT,
            ReplicaAccept(
                token=offer.token, holder=node.bpid, accepted=accepted, reason=reason
            ),
        )

    def _ensure_store(self) -> StorM:
        if self._store is None:
            self._store = StorM()
        return self._store

    def _on_push(self, packet: "Packet") -> None:
        push: ReplicaPush = packet.payload
        if replication_bypassed():
            return
        self._owner_addresses[push.owner] = push.owner_address
        stored_keywords: set[str] = set()
        for record in push.records:
            key = (push.owner, record.rid)
            tombstone = self._tombstones.get(key)
            if tombstone is not None and record.version <= tombstone:
                continue  # deleted meanwhile; never resurrect
            existing = self._copies.get(key)
            if existing is not None:
                if record.version <= existing.version:
                    continue
                self._drop_copy(key, existing)
            copy = self._store_copy(key, record.version, record.keywords, record.payload)
            stored_keywords.update(copy.keywords)
        if stored_keywords:
            # Publishing the replicated keywords into the hint directory
            # lets hint-routed queries find the holder even with the
            # owner gone — the "queries find replicas through existing
            # routing machinery" half of resilience.
            self.node._publish_hints(sorted(stored_keywords))

    def _store_copy(
        self,
        key: tuple[BPID, RecordId],
        version: int,
        keywords: Sequence[str],
        payload: bytes,
    ) -> _HolderCopy:
        store = self._ensure_store()
        store_rid = store.put(keywords, payload)
        copy = _HolderCopy(
            version=version,
            store_rid=store_rid,
            keywords=tuple(normalize_keyword(keyword) for keyword in keywords),
        )
        self._copies[key] = copy
        self._by_store_rid[store_rid] = key
        return copy

    def _drop_copy(self, key: tuple[BPID, RecordId], copy: _HolderCopy) -> None:
        assert self._store is not None
        self._store.delete(copy.store_rid)
        self._by_store_rid.pop(copy.store_rid, None)
        self._copies.pop(key, None)

    def _on_invalidate(self, packet: "Packet") -> None:
        invalidate: ReplicaInvalidate = packet.payload
        if replication_bypassed():
            return
        if self.cache is not None:
            touched = tuple(
                normalize_keyword(keyword)
                for keyword in (*invalidate.keywords, *invalidate.repair_keywords)
            )
            self.cache.invalidate_keywords(touched)
        key = (invalidate.owner, invalidate.rid)
        copy = self._copies.get(key)
        if invalidate.delete:
            previous = self._tombstones.get(key, 0)
            self._tombstones[key] = max(previous, invalidate.version)
            if copy is not None and copy.version <= invalidate.version:
                self._drop_copy(key, copy)
            return
        if copy is not None:
            if copy.version >= invalidate.version:
                return  # already repaired (or a newer push landed first)
            self._drop_copy(key, copy)
        if invalidate.repair_rid is None:
            return
        repair_keywords = tuple(
            normalize_keyword(keyword) for keyword in invalidate.repair_keywords
        )
        if not repair_keywords:
            return  # nothing to index the repaired copy under
        repair_key = (invalidate.owner, invalidate.repair_rid)
        tombstone = self._tombstones.get(repair_key)
        if tombstone is not None and invalidate.version <= tombstone:
            return
        owner_address = self._owner_addresses.get(invalidate.owner, packet.src)
        self._read_repair(
            repair_key, invalidate.version, repair_keywords, owner_address
        )

    def _read_repair(
        self,
        key: tuple[BPID, RecordId],
        version: int,
        keywords: tuple[str, ...],
        owner_address: IPAddress,
    ) -> None:
        """Lazily fetch a replacement record — an ordinary download."""
        owner, rid = key

        def repaired(reply) -> None:
            if reply is None or reply.payload is None or not reply.found:
                return
            tombstone = self._tombstones.get(key)
            if tombstone is not None and version <= tombstone:
                return  # deleted while the repair was in flight
            existing = self._copies.get(key)
            if existing is not None and existing.version >= version:
                return
            if existing is not None:
                self._drop_copy(key, existing)
            copy = self._store_copy(key, version, keywords, reply.payload)
            self.stale_repairs += 1
            self.node._publish_hints(sorted(copy.keywords))
            self.node.tracer.record(
                self.node.sim.now,
                "replication",
                "read-repair",
                node=self.node.name,
                owner=str(owner),
                rid=str(rid),
            )

        self.node.fetch(owner_address, rid, repaired)

    # -- holder: answering -------------------------------------------------------

    def replica_search(self, keyword: str, use_index: bool) -> SearchResult | None:
        """Search the replica store (None when there is nothing to search)."""
        if self._store is None or not self._copies:
            return None
        if replication_bypassed():
            return None
        if use_index:
            return self._store.search(keyword)
        return self._store.search_scan(keyword)

    def replica_answer_rid(self, store_rid: RecordId) -> RecordId:
        """The rid a replica match is advertised under (high bit set)."""
        return RecordId(store_rid.page_id | REPLICA_PAGE_BIT, store_rid.slot)

    def self_answer(self, query_id, keyword: str, mode: str, use_index: bool):
        """The initiator's own replica store answering its own query.

        Travelling agents never execute at the initiator, so without
        this a node that *holds* the only surviving copy of an object
        would not see it in its own answer set.  Returns a synthetic
        :class:`~repro.agents.messages.AnswerMessage` from self (zero
        hops, no network traffic) or None when nothing matches; the
        reconfiguration strategy already ignores self-answers.
        """
        result = self.replica_search(keyword, use_index)
        if result is None or not result.matches:
            return None
        from repro.agents.messages import AnswerItem, AnswerMessage

        node = self.node
        items = tuple(
            AnswerItem(
                rid=self.replica_answer_rid(rid),
                keywords=obj.keywords,
                size=obj.size,
                payload=obj.payload if mode == "direct" else None,
            )
            for rid, obj in result.matches
        )
        self.replica_answers += len(items)
        assert node.host.address is not None
        return AnswerMessage(
            query_id=query_id,
            responder=node.bpid,
            responder_address=node.host.address,
            hops=0,
            items=items,
        )

    def replica_payload(self, rid: RecordId) -> bytes | None:
        """Payload behind an advertised replica rid (fetch fallback)."""
        if self._store is None or not is_replica_rid(rid):
            return None
        try:
            return self._store.get(replica_store_rid(rid)).payload
        except StormError:
            return None

    # -- initiator: result cache -------------------------------------------------

    def cached_answers(self, keyword: str):
        """Cached answer tuple for ``keyword`` (None on miss/disabled)."""
        if self.cache is None or replication_bypassed():
            return None
        return self.cache.get(normalize_keyword(keyword))

    def cache_answers(self, keyword: str, answers: tuple) -> None:
        """A finished exhaustive query populates the result cache."""
        if self.cache is None or replication_bypassed() or not answers:
            return
        self.cache.put(normalize_keyword(keyword), answers)

    # -- liveness interplay --------------------------------------------------------

    def note_peer_alive(self, bpid: BPID, address: IPAddress) -> None:
        """An answer (or fetch reply) proved ``bpid`` is alive at ``address``.

        Fixes the suspicion/liveness interplay for replication: a holder
        that was suspected, evicted, and backfilled out of the peer
        table used to become undiscoverable forever.  Remembering it
        here keeps it selectable as a future holder and refreshes the
        address on every holder record the owner keeps for it.
        """
        if not self.policy.active or replication_bypassed():
            return
        node = self.node
        if node.engine is not None and bpid == node.bpid:
            return
        self._last_seen.pop(bpid, None)
        self._last_seen[bpid] = address
        while len(self._last_seen) > _LAST_SEEN_LIMIT:
            self._last_seen.pop(next(iter(self._last_seen)))
        for holders in self._holders.values():
            if bpid in holders:
                holders[bpid] = address

    # -- introspection (tests, demos) ----------------------------------------------

    def holders_of(self, rid: RecordId) -> dict[BPID, IPAddress]:
        """Current holder map of one owned record (copy)."""
        return dict(self._holders.get(rid, {}))

    def held_copies(self) -> dict[tuple[BPID, RecordId], int]:
        """(owner, rid) -> version of every replica held here (copy)."""
        return {key: copy.version for key, copy in self._copies.items()}
