"""Replication policy: how many copies, and when hotness adds more.

BestPeer as the paper describes it serves every shared object from
exactly one node, so a crashed owner silently removes its objects from
every answer set.  The :class:`ReplicationPolicy` turns that into a
tunable: ``rf`` total copies of every shared object (owner included)
are materialized at placement time, and objects whose per-record
query-hit EWMA crosses ``hot_threshold`` are promoted to ``hot_rf``
copies — the skew-chasing behaviour every production P2P system ends
up with (cf. the ``ard1102__p2p`` replication coordinator the ROADMAP
points at).

``rf=1`` (the default) keeps the paper's single-copy behaviour
bit-identical; ``REPRO_REPLICATION=off`` bypasses the whole subsystem
per call — like ``REPRO_TOPK`` — so ``--jobs`` worker processes
inherit the setting through their environment with no extra plumbing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ReplicationError

#: Per-call kill switch for the replication subsystem: ``off`` disables
#: placement, replica answering, invalidation, and the result cache even
#: when the config policy asks for them.  Checked from the environment
#: on each call — like ``REPRO_TOPK`` — so ``--jobs`` workers inherit it.
REPLICATION_ENV_VAR = "REPRO_REPLICATION"


def replication_bypassed() -> bool:
    """True when ``REPRO_REPLICATION=off`` disables replication."""
    value = os.environ.get(REPLICATION_ENV_VAR)
    if not value:
        return False
    normalized = value.strip().lower()
    if normalized not in ("on", "off"):
        raise ReplicationError(
            f"{REPLICATION_ENV_VAR}={value!r} is not one of 'on', 'off'"
        )
    return normalized == "off"


@dataclass(frozen=True)
class ReplicationPolicy:
    """Immutable per-node replication knobs.

    The owner drives everything: it picks holders, ships copies, and
    invalidates them on reshare/delete.  Holders are passive (they
    accept offers, answer queries from their replica store, and repair
    lazily when told a copy went stale).
    """

    #: total copies of every shared object, the owner's included.
    #: 1 reproduces the paper's single-copy behaviour exactly.
    rf: int = 1
    #: copies a *hot* object is promoted to (None: hotness never
    #: triggers extra placement; must be >= rf otherwise)
    hot_rf: int | None = None
    #: per-record query-hit EWMA level that marks an object hot.  Each
    #: hit contributes 1 and the level approaches ``1 / ewma_alpha``
    #: under sustained hits, so with the default alpha the default
    #: threshold trips on the second consecutive hitting query.
    hot_threshold: float = 1.5
    #: EWMA smoothing: each remote query hit contributes ``ewma_alpha``
    #: and the history decays by ``1 - ewma_alpha``
    ewma_alpha: float = 0.5
    #: query-path result cache entries at the initiator (0 disables);
    #: entries are invalidated by ReplicaInvalidate and local reshares
    cache_capacity: int = 0

    def __post_init__(self) -> None:
        if self.rf < 1:
            raise ReplicationError(f"rf must be >= 1, got {self.rf}")
        if self.hot_rf is not None and self.hot_rf < self.rf:
            raise ReplicationError(
                f"hot_rf must be >= rf ({self.rf}), got {self.hot_rf}"
            )
        if self.hot_threshold <= 0:
            raise ReplicationError(
                f"hot_threshold must be > 0, got {self.hot_threshold}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ReplicationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.cache_capacity < 0:
            raise ReplicationError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )

    @property
    def replicates(self) -> bool:
        """True when this policy ever places replicas (rf or hotness)."""
        return self.rf > 1 or (self.hot_rf is not None and self.hot_rf > 1)

    @property
    def caches(self) -> bool:
        """True when the query-path result cache is enabled."""
        return self.cache_capacity > 0

    @property
    def active(self) -> bool:
        """True when any replication feature is on."""
        return self.replicates or self.caches
