"""Replica-aware search agent.

The paper's :class:`~repro.agents.storm_agent.StorMSearchAgent` answers
from the visited host's own StorM store; this variant additionally
answers from the host's *replica store*, so a query finds an object as
long as **any** copy — owner's or replica — is on a reachable node.
On owner crash or suspicion the replica's answer is simply the one
that arrives; when both are up, both answer and the initiator's
:class:`~repro.core.query.QueryHandle` deduplicates, so RF > 1 never
double-counts.

Kept as a *separate* class rather than a change to the legacy agent on
purpose: agent class source ships over the wire (and is charged by
size), so touching ``StorMSearchAgent`` would shift the byte series of
every existing figure.  ``rf=1`` / ``REPRO_REPLICATION=off`` initiators
keep dispatching the legacy agent, bit-identical to before.

Like every shipped agent it subclasses ``Agent``, keeps its state
plain, and imports inside :meth:`execute` so the shipped source is
self-contained at any destination host.
"""

from __future__ import annotations

from repro.agents.agent import Agent


class ReplicatedSearchAgent(Agent):
    """Keyword search over each visited host's own and replica stores."""

    def __init__(
        self,
        keyword: str,
        mode: str = "direct",
        use_index: bool = False,
        reply_empty: bool = False,
    ):
        if mode not in ("direct", "metadata"):
            raise ValueError(f"mode must be 'direct' or 'metadata', got {mode!r}")
        self.keyword = keyword
        self.mode = mode
        self.use_index = use_index
        self.reply_empty = reply_empty

    def execute(self, context) -> None:
        # Imports live inside execute so the shipped source is
        # self-contained at any destination host.
        from repro.agents.messages import AnswerItem

        if self.use_index:
            result = context.storm.search(self.keyword)
        else:
            # The paper's behaviour: compare every stored object.
            result = context.storm.search_scan(self.keyword)
        context.charge_search(result)
        items = []
        for rid, obj in result.matches:
            payload = obj.payload if self.mode == "direct" else None
            items.append(
                AnswerItem(rid=rid, keywords=obj.keywords, size=obj.size, payload=payload)
            )
        # The replica store answers through the embedding node's
        # replication manager (absent on bare engines, inert when the
        # subsystem is off); matches there are charged like any scan.
        node = context.services.get("node")
        manager = getattr(node, "replication", None)
        if manager is not None:
            manager.note_query_hits(rid for rid, _obj in result.matches)
            replica_result = manager.replica_search(self.keyword, self.use_index)
            if replica_result is not None:
                context.charge_search(replica_result)
                for rid, obj in replica_result.matches:
                    payload = obj.payload if self.mode == "direct" else None
                    items.append(
                        AnswerItem(
                            rid=manager.replica_answer_rid(rid),
                            keywords=obj.keywords,
                            size=obj.size,
                            payload=payload,
                        )
                    )
                manager.replica_answers += len(replica_result.matches)
        if items or self.reply_empty:
            context.reply(items)
