"""Query-path result cache: Zipf-hot queries served without a flood.

A bounded LRU from normalized keyword to the answer set a finished
query collected.  A hit replays the cached answers into the new
query's handle at the initiator — zero network traffic, zero agent
executions — which is exactly the repeated-hot-query shape a Zipf
workload produces.

Staleness is handled by invalidation, not expiry: a
:class:`~repro.replication.messages.ReplicaInvalidate` arriving at this
node (and any local reshare/delete) drops every entry sharing a
keyword with the changed record.  Nodes that neither own nor hold a
changed record keep serving their cached copy — the same relaxed
consistency every answer already has between flood and fetch
("the target node may have removed the desired content ... during the
period of delay", Section 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ReplicationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.messages import AnswerMessage


class ResultCache:
    """Bounded LRU of keyword -> cached answer tuples."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ReplicationError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: insertion-ordered; the first key is the least recently used
        self._entries: dict[str, tuple["AnswerMessage", ...]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._entries

    def get(self, keyword: str) -> tuple["AnswerMessage", ...] | None:
        """The cached answers for ``keyword`` (marks it most recent)."""
        answers = self._entries.pop(keyword, None)
        if answers is None:
            self.misses += 1
            return None
        self._entries[keyword] = answers  # re-insert as most recent
        self.hits += 1
        return answers

    def put(self, keyword: str, answers: tuple["AnswerMessage", ...]) -> None:
        """Cache a finished query's answer set under its keyword."""
        self._entries.pop(keyword, None)
        while len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[keyword] = answers

    def invalidate_keywords(self, keywords: tuple[str, ...]) -> int:
        """Drop every entry keyed by one of ``keywords``; returns drops."""
        dropped = 0
        for keyword in keywords:
            if self._entries.pop(keyword, None) is not None:
                dropped += 1
        self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        self._entries.clear()
