"""Wire messages of the replication protocol.

Owner-driven placement is a three-step handshake plus an invalidation
path:

* :class:`ReplicaOffer` (control, ``0x010B``) — the owner proposes a
  batch of records to one candidate holder (count and byte total only,
  so a holder can decline cheaply).
* :class:`ReplicaAccept` (control, ``0x010C``) — the holder's verdict.
* :class:`ReplicaPush` (data, ``0x1009``) — on acceptance the owner
  ships the actual versioned records; payload-carrying, so it rides the
  ``0xD7`` streaming data codec like answers and fetch replies.
* :class:`ReplicaInvalidate` (control, ``0x010D``) — reshare or delete
  at the owner invalidates the holders' copies.  A delete is final
  (holders tombstone the version so no in-flight push resurrects it); a
  reshare names the replacement record so the holder can lazily
  read-repair with an ordinary out-of-network fetch.

Frame ids continue the established blocks: control ``0x010B``+ after
the LIGLO hint frames, data ``0x1009``+ after the top-k digests.  All
four are golden-vectored by the conformance batteries in ``tests/net``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import BPID
from repro.net import codec as wire
from repro.net import datacodec as data
from repro.net.address import IPAddress
from repro.storm.heapfile import RecordId

PROTO_REPLICA_OFFER = "bestpeer.replica.offer"
PROTO_REPLICA_ACCEPT = "bestpeer.replica.accept"
PROTO_REPLICA_PUSH = "bestpeer.replica.push"
PROTO_REPLICA_INVALIDATE = "bestpeer.replica.invalidate"


@dataclass(frozen=True, slots=True)
class ReplicaOffer:
    """Owner proposes a replica batch to one candidate holder."""

    token: int
    owner: BPID
    record_count: int
    total_bytes: int


@dataclass(frozen=True, slots=True)
class ReplicaAccept:
    """Holder's verdict on a :class:`ReplicaOffer`."""

    token: int
    holder: BPID
    accepted: bool
    reason: str = ""


@dataclass(frozen=True, slots=True)
class ReplicaRecord:
    """One versioned record inside a :class:`ReplicaPush`.

    ``rid`` is the *owner's* record id — the stable identity replicas
    are versioned and invalidated under; holders keep their own private
    storage rid for the copy.
    """

    rid: RecordId
    version: int
    keywords: tuple[str, ...]
    payload: bytes


@dataclass(frozen=True, slots=True)
class ReplicaPush:
    """The accepted batch itself: versioned records, payloads included."""

    token: int
    owner: BPID
    owner_address: IPAddress
    records: tuple[ReplicaRecord, ...]

    @property
    def record_count(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        return sum(len(record.payload) for record in self.records)


@dataclass(frozen=True, slots=True)
class ReplicaInvalidate:
    """Owner tells a holder one of its copies is stale or deleted.

    ``delete=True`` retires the record for good — the holder tombstones
    ``version`` so a late or replayed push can never resurrect it.
    ``delete=False`` marks a reshare: ``repair_rid`` names the
    replacement record at the owner, which the holder fetches lazily
    (an ordinary out-of-network download) and re-indexes under
    ``repair_keywords`` to repair its copy.  ``keywords`` are the stale
    record's keywords, for result-cache invalidation at the holder.
    """

    owner: BPID
    rid: RecordId
    version: int
    delete: bool
    keywords: tuple[str, ...] = ()
    repair_rid: RecordId | None = None
    repair_keywords: tuple[str, ...] = ()


# -- compact wire registrations (control block 0x01xx) --------------------------

_SAMPLE_OWNER = BPID("10.0.0.1", 7)
_SAMPLE_HOLDER = BPID("10.0.0.2", 9)

wire.register(
    ReplicaOffer,
    0x010B,
    (
        ("token", wire.I64),
        ("owner", wire.BPID_CODEC),
        ("record_count", wire.U16),
        ("total_bytes", wire.I64),
    ),
    sample=lambda: ReplicaOffer(
        token=61, owner=_SAMPLE_OWNER, record_count=2, total_bytes=1088
    ),
)
wire.register(
    ReplicaAccept,
    0x010C,
    (
        ("token", wire.I64),
        ("holder", wire.BPID_CODEC),
        ("accepted", wire.BOOL),
        ("reason", wire.STR),
    ),
    sample=lambda: ReplicaAccept(token=61, holder=_SAMPLE_HOLDER, accepted=True),
)
wire.register(
    ReplicaInvalidate,
    0x010D,
    (
        ("owner", wire.BPID_CODEC),
        ("rid", wire.RECORD_ID_CODEC),
        ("version", wire.U32),
        ("delete", wire.BOOL),
        ("keywords", wire.seq(wire.STR)),
        ("repair_rid", wire.opt(wire.RECORD_ID_CODEC)),
        ("repair_keywords", wire.seq(wire.STR)),
    ),
    sample=lambda: ReplicaInvalidate(
        owner=_SAMPLE_OWNER,
        rid=RecordId(3, 12),
        version=2,
        delete=False,
        keywords=("music", "mp3"),
        repair_rid=RecordId(3, 13),
        repair_keywords=("music", "flac"),
    ),
)

# -- data-plane wire registrations (block 0x10xx) -------------------------------

_REPLICA_RECORD_CODEC = wire.composite(
    "replica-record",
    (
        ("rid", wire.RECORD_ID_CODEC),
        ("version", wire.U32),
        ("keywords", wire.seq(wire.STR)),
        ("payload", wire.BYTES),
    ),
    ReplicaRecord,
)

data.register(
    ReplicaPush,
    0x1009,
    (
        ("token", wire.I64),
        ("owner", wire.BPID_CODEC),
        ("owner_address", data.ADDRESS_CODEC),
        ("records", wire.seq(_REPLICA_RECORD_CODEC)),
    ),
    sample=lambda: ReplicaPush(
        token=61,
        owner=_SAMPLE_OWNER,
        owner_address=IPAddress("10.0.4.9"),
        records=(
            ReplicaRecord(
                rid=RecordId(3, 12),
                version=1,
                keywords=("music", "mp3"),
                payload=b"notes",
            ),
        ),
    ),
)
