"""Replication and hot-object caching for BestPeer nodes.

The paper's system serves every shared object from exactly one node;
this package adds owner-driven replica placement, versioned
invalidation with lazy read-repair, query-hit-driven hot promotion,
and an initiator-side result cache — turning churn *survival* into
actual resilience.  See ``docs/REPLICATION.md`` for the design.
"""

from repro.replication.agent import ReplicatedSearchAgent
from repro.replication.cache import ResultCache
from repro.replication.manager import (
    REPLICA_PAGE_BIT,
    ReplicationManager,
    is_replica_rid,
    replica_store_rid,
)
from repro.replication.messages import (
    PROTO_REPLICA_ACCEPT,
    PROTO_REPLICA_INVALIDATE,
    PROTO_REPLICA_OFFER,
    PROTO_REPLICA_PUSH,
    ReplicaAccept,
    ReplicaInvalidate,
    ReplicaOffer,
    ReplicaPush,
    ReplicaRecord,
)
from repro.replication.policy import (
    REPLICATION_ENV_VAR,
    ReplicationPolicy,
    replication_bypassed,
)

__all__ = [
    "REPLICA_PAGE_BIT",
    "REPLICATION_ENV_VAR",
    "PROTO_REPLICA_ACCEPT",
    "PROTO_REPLICA_INVALIDATE",
    "PROTO_REPLICA_OFFER",
    "PROTO_REPLICA_PUSH",
    "ReplicaAccept",
    "ReplicaInvalidate",
    "ReplicaOffer",
    "ReplicaPush",
    "ReplicaRecord",
    "ReplicatedSearchAgent",
    "ReplicationManager",
    "ReplicationPolicy",
    "ResultCache",
    "is_replica_rid",
    "replica_store_rid",
    "replication_bypassed",
]
