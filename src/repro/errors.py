"""Exception hierarchy for the BestPeer reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulator errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class ProcessError(SimulationError):
    """A coroutine process yielded an unsupported command."""


class ShardingError(SimulationError):
    """The sharded kernel cannot guarantee conservative synchronization.

    Raised when the epoch-barrier protocol's preconditions fail: a zero
    (or negative) cross-shard lookahead, a cross-shard message arriving
    inside the window that produced it, or a distributed run driven from
    an unsupported configuration.
    """


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for network substrate errors."""


class AddressPoolExhausted(NetworkError):
    """The DHCP-like address pool has no free addresses left."""


class HostOffline(NetworkError):
    """An operation required an online host but it was offline."""


class UnknownProtocolError(NetworkError):
    """A packet arrived for a protocol the host has no handler for."""


class DeliveryError(NetworkError):
    """A packet could not be delivered (stale address, offline host)."""


class WireCodecError(NetworkError):
    """Base class for compact wire-codec errors (see :mod:`repro.net.codec`)."""


class WireEncodeError(WireCodecError):
    """A message could not be packed into a compact frame.

    Raised when a value does not fit its field codec (string too long,
    integer out of range) or the message is not registered/compactable.
    The wire path treats this as "fall back to pickle", so it never
    escapes to callers of :meth:`~repro.util.serialization.WireEncoder.encode`.
    """


class WireDecodeError(WireCodecError):
    """A compact frame is malformed and cannot be decoded.

    Covers truncated, bit-flipped, wrong-version, unknown-type,
    oversized, and trailing-garbage frames.  Hosts and live transports
    catch it, drop the packet, and count the drop in tracer stats —
    a corrupt frame must never crash a delivery loop.
    """


# ---------------------------------------------------------------------------
# StorM storage manager
# ---------------------------------------------------------------------------


class StormError(ReproError):
    """Base class for StorM storage manager errors."""


class PageError(StormError):
    """Malformed page, bad slot, or out-of-range page id."""


class BufferError_(StormError):
    """Buffer manager misuse (e.g. unpinning an unpinned page)."""


class BufferFullError(BufferError_):
    """Every frame is pinned; no page can be evicted."""


class RecordNotFound(StormError):
    """No record exists at the requested object id."""


class StorageClosedError(StormError):
    """Operation attempted on a closed store."""


# ---------------------------------------------------------------------------
# Mobile agents
# ---------------------------------------------------------------------------


class AgentError(ReproError):
    """Base class for mobile agent framework errors."""


class CodeShippingError(AgentError):
    """Agent class source could not be extracted, shipped, or loaded.

    Carries the originating agent class name (when known) so engine-level
    handlers — notably the park-and-request path, where the failing class
    is identified only by name — can report *which* class failed without
    parsing the message text.
    """

    def __init__(self, message: str, class_name: str | None = None):
        super().__init__(message)
        self.class_name = class_name


class AgentExpiredError(AgentError):
    """An agent with TTL <= 0 was asked to travel further."""


# ---------------------------------------------------------------------------
# LIGLO
# ---------------------------------------------------------------------------


class LigloError(ReproError):
    """Base class for LIGLO name server errors."""


class LigloFullError(LigloError):
    """The LIGLO server reached its membership capacity."""


class UnknownBPIDError(LigloError):
    """The BPID is not registered with this LIGLO server."""


class NotRegisteredError(LigloError):
    """A node attempted an operation that requires prior registration."""


class LigloUnreachableError(LigloError):
    """Every (retried) attempt to reach a LIGLO server went unanswered.

    Carries the number of attempts so callers — and tests — can confirm
    the configured :class:`~repro.util.retry.RetryPolicy` was honoured.
    """

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts


# ---------------------------------------------------------------------------
# BestPeer core
# ---------------------------------------------------------------------------


class BestPeerError(ReproError):
    """Base class for BestPeer node errors."""


class PeerTableError(BestPeerError):
    """Peer table misuse (duplicate peer, bad capacity, ...)."""


class QueryError(BestPeerError):
    """Query lifecycle misuse (e.g. collecting a closed query)."""


class SharingError(BestPeerError):
    """Resource-sharing failure (missing share, access denied, ...)."""


class AccessDeniedError(SharingError):
    """An active object refused access for the requester's access level."""


class ReplicationError(BestPeerError):
    """Replication subsystem misuse (bad policy, unknown replica, ...)."""


# ---------------------------------------------------------------------------
# Topologies / workloads / evaluation
# ---------------------------------------------------------------------------


class TopologyError(ReproError):
    """Invalid topology specification."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class ExperimentError(ReproError):
    """Experiment harness misuse or inconsistent results."""


# ---------------------------------------------------------------------------
# Robustness: retries and fault injection
# ---------------------------------------------------------------------------


class RetryError(ReproError):
    """Base class for retry-policy errors."""


class RetryExhaustedError(RetryError):
    """Every attempt a :class:`~repro.util.retry.RetryPolicy` allows failed."""

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts


class FaultPlanError(ReproError):
    """Invalid fault plan (unknown kind, unordered window, bad target...)."""
