"""Logical overlay topologies used by the paper's evaluation."""

from repro.topology.builders import (
    Topology,
    grid,
    line,
    random_graph,
    ring,
    star,
    tree,
)

__all__ = ["Topology", "star", "line", "tree", "ring", "random_graph", "grid"]
