"""Logical overlay topologies used by the paper's evaluation."""

from repro.topology.builders import (
    Topology,
    grid,
    line,
    random_graph,
    ring,
    star,
    tree,
)
from repro.topology.partition import PARTITION_MODES, assign_shards

__all__ = [
    "Topology",
    "star",
    "line",
    "tree",
    "ring",
    "random_graph",
    "grid",
    "assign_shards",
    "PARTITION_MODES",
]
