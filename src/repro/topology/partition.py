"""Topology-aware node-to-shard assignment for the sharded kernel.

Two modes:

* ``hash`` (the default) — a stable content hash of the node name, so
  the assignment needs no topology and never shifts when the overlay
  does.  Balanced in expectation, oblivious to locality.
* ``locality`` — a DFS preorder walk from the topology's base, chunked
  into contiguous ranges: a tree branch (or a star's contiguous arc of
  leaves) lands on one shard, so intra-cluster chatter stays off the
  epoch barrier.

Node 0 (the designated query initiator) is always pinned to shard 0,
alongside the LIGLO servers: driver callbacks scheduled through the
sharded facade land on shard 0's timeline, and co-residency keeps that
exactly equivalent to the serial kernel's single timeline.
"""

from __future__ import annotations

import zlib

from repro.errors import TopologyError
from repro.topology.builders import Topology

PARTITION_MODES = ("hash", "locality")


def _stable_hash(name: str) -> int:
    # crc32 rather than hash(): immune to PYTHONHASHSEED, identical
    # across processes — the assignment is part of the determinism story.
    return zlib.crc32(name.encode("utf-8"))


def _dfs_preorder(topology: Topology) -> list[int]:
    """Deterministic DFS from the base (ascending neighbors), with any
    disconnected remainder appended in index order."""
    order: list[int] = []
    seen: set[int] = set()
    stack = [topology.base]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # Reversed so the smallest neighbor is explored first.
        for neighbor in reversed(topology.neighbors(node)):
            if neighbor not in seen:
                stack.append(neighbor)
    for node in range(topology.node_count):
        if node not in seen:
            order.append(node)
    return order


def assign_shards(
    node_count: int,
    shard_count: int,
    topology: Topology | None = None,
    mode: str = "hash",
) -> list[int]:
    """Shard index for every node index ``0..node_count-1``.

    ``locality`` requires a ``topology`` (and falls back to ``hash``
    without one); both modes pin node 0 to shard 0.
    """
    if shard_count < 1:
        raise TopologyError(f"need >= 1 shard, got {shard_count}")
    if node_count < 1:
        raise TopologyError(f"need >= 1 node, got {node_count}")
    if mode not in PARTITION_MODES:
        raise TopologyError(
            f"unknown shard-partition mode {mode!r} (expected one of "
            f"{PARTITION_MODES})"
        )
    if topology is not None and topology.node_count != node_count:
        raise TopologyError(
            f"topology has {topology.node_count} nodes, expected {node_count}"
        )
    if shard_count == 1:
        return [0] * node_count
    if mode == "locality" and topology is not None:
        order = _dfs_preorder(topology)
        assignment = [0] * node_count
        # Contiguous chunks of the walk, near-equal sizes; the chunk
        # containing the base (walk position 0) is shard 0 by construction.
        base_size, remainder = divmod(node_count, shard_count)
        position = 0
        for shard in range(shard_count):
            size = base_size + (1 if shard < remainder else 0)
            for node in order[position : position + size]:
                assignment[node] = shard
            position += size
        assignment[0] = 0  # pin the initiator even off-walk (disconnected base)
        return assignment
    assignment = [_stable_hash(f"node-{index}") % shard_count for index in range(node_count)]
    assignment[0] = 0
    return assignment
