"""Overlay topology builders.

A :class:`Topology` is an undirected graph over node indices
``0..node_count-1`` with a designated *base* node (the query initiator;
the paper's experiments fix it per topology: the hub of the Star, the
root of the Tree, the left end of the Line).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.util.randomness import derive_rng


@dataclass(frozen=True)
class Topology:
    """An undirected overlay graph with a designated base node."""

    name: str
    node_count: int
    edges: frozenset[tuple[int, int]]
    base: int = 0
    _adjacency: dict[int, list[int]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise TopologyError(f"need >= 1 node, got {self.node_count}")
        if not 0 <= self.base < self.node_count:
            raise TopologyError(f"base {self.base} outside 0..{self.node_count - 1}")
        for a, b in self.edges:
            if a == b:
                raise TopologyError(f"self-loop on node {a}")
            if not (0 <= a < self.node_count and 0 <= b < self.node_count):
                raise TopologyError(f"edge ({a}, {b}) outside the node range")
            if a > b:
                raise TopologyError(f"edge ({a}, {b}) not normalized (a < b)")
        adjacency: dict[int, list[int]] = {i: [] for i in range(self.node_count)}
        for a, b in sorted(self.edges):
            adjacency[a].append(b)
            adjacency[b].append(a)
        object.__setattr__(self, "_adjacency", adjacency)

    def neighbors(self, node: int) -> list[int]:
        """Direct neighbors of ``node``, ascending."""
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise TopologyError(f"node {node} outside the topology") from None

    def degree(self, node: int) -> int:
        return len(self.neighbors(node))

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def is_connected(self) -> bool:
        """True when every node is reachable from the base."""
        return len(self.hops_from_base()) == self.node_count

    def hops_from_base(self) -> dict[int, int]:
        """BFS distance of every reachable node from the base."""
        distances = {self.base: 0}
        frontier = deque([self.base])
        while frontier:
            node = frontier.popleft()
            for neighbor in self.neighbors(node):
                if neighbor not in distances:
                    distances[neighbor] = distances[node] + 1
                    frontier.append(neighbor)
        return distances

    @property
    def depth(self) -> int:
        """Maximum hops from the base to any reachable node."""
        return max(self.hops_from_base().values())


def _normalize(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def star(node_count: int) -> Topology:
    """Every node connects directly to the base (node 0) — Figure 4(a)."""
    edges = frozenset(_normalize(0, i) for i in range(1, node_count))
    return Topology("star", node_count, edges, base=0)


def line(node_count: int) -> Topology:
    """A chain; the base is the left-most node — Figure 4(c)."""
    edges = frozenset(_normalize(i, i + 1) for i in range(node_count - 1))
    return Topology("line", node_count, edges, base=0)


def tree(node_count: int, branching: int = 2) -> Topology:
    """A complete ``branching``-ary tree filled level by level — Figure 4(b).

    The base is the root.  Node ``i``'s parent is ``(i - 1) // branching``.
    """
    if branching < 1:
        raise TopologyError(f"branching must be >= 1, got {branching}")
    edges = frozenset(
        _normalize((i - 1) // branching, i) for i in range(1, node_count)
    )
    return Topology("tree", node_count, edges, base=0)


def ring(node_count: int) -> Topology:
    """A cycle (line plus the wrap-around edge)."""
    if node_count < 3:
        raise TopologyError(f"a ring needs >= 3 nodes, got {node_count}")
    edges = {_normalize(i, (i + 1) % node_count) for i in range(node_count)}
    return Topology("ring", node_count, frozenset(edges), base=0)


def grid(rows: int, cols: int) -> Topology:
    """A rows x cols mesh; the base is the top-left corner."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid needs positive dims, got {rows}x{cols}")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.add(_normalize(node, node + 1))
            if r + 1 < rows:
                edges.add(_normalize(node, node + cols))
    return Topology("grid", rows * cols, frozenset(edges), base=0)


def random_graph(node_count: int, degree: int, seed: int = 0) -> Topology:
    """A connected random graph with average degree about ``degree``.

    Construction: a random spanning tree (guaranteeing connectivity)
    plus random extra edges until the edge budget ``node_count * degree
    / 2`` is met.  Used for the Gnutella-comparison overlays.
    """
    if node_count < 2:
        raise TopologyError(f"need >= 2 nodes, got {node_count}")
    if degree < 1:
        raise TopologyError(f"degree must be >= 1, got {degree}")
    rng = derive_rng(seed, "random_graph", node_count, degree)
    order = list(range(node_count))
    rng.shuffle(order)
    edges: set[tuple[int, int]] = set()
    for position in range(1, node_count):
        parent = order[rng.randrange(position)]
        edges.add(_normalize(parent, order[position]))
    target = min(
        node_count * degree // 2, node_count * (node_count - 1) // 2
    )
    attempts = 0
    while len(edges) < target and attempts < 50 * target:
        a, b = rng.sample(range(node_count), 2)
        edges.add(_normalize(a, b))
        attempts += 1
    return Topology("random", node_count, frozenset(edges), base=0)
