"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro figure 5a            # paper scale (1000 objects/node)
    python -m repro figure 8a --objects 200 --queries 4
    python -m repro ablation strategy
    python -m repro demo

``figure`` and ``ablation`` print the same series the benchmarks under
``benchmarks/`` assert on; ``--objects``/``--queries`` scale the
workload down for quick looks.
"""

from __future__ import annotations

import argparse
from typing import Callable, Sequence

from repro.eval import ablations, churn, figures, replication, routing, scaling, topk
from repro.eval.experiment import (
    ExperimentRunner,
    FigureResult,
    ParallelExperimentRunner,
    default_jobs,
)
from repro.eval.figures import FigureParams
from repro.eval.report import format_figure

#: figure name -> callable(params) -> FigureResult
FIGURES: dict[str, Callable[[FigureParams], FigureResult]] = {
    "5a": figures.figure_5a,
    "5b": figures.figure_5b,
    "5c": figures.figure_5c,
    "6": figures.figure_6,
    "7": figures.figure_7,
    "8a": figures.figure_8a,
    "8b": figures.figure_8b,
    "churn": churn.figure_churn,
    "replication": replication.figure_replication,
    "routing": routing.figure_routing,
    "topk": topk.figure_topk,
    "scaling": scaling.figure_scaling,
}

ABLATIONS: dict[str, Callable[[FigureParams], FigureResult]] = {
    "strategy": ablations.ablation_strategy,
    "compression": ablations.ablation_compression,
    "ttl": ablations.ablation_ttl,
    "result-mode": ablations.ablation_result_mode,
    "replication": ablations.ablation_replication,
    "shipping": ablations.ablation_shipping,
    "buffer": lambda params: ablations.ablation_buffer_strategy(
        objects=params.objects_per_node, object_size=params.object_size
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BestPeer (ICDE 2002) reproduction - experiment runner",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available figures and ablations")

    figure = commands.add_parser("figure", help="reproduce one paper figure")
    figure.add_argument("name", choices=sorted(FIGURES))
    _add_scale_arguments(figure)

    ablation = commands.add_parser("ablation", help="run one ablation study")
    ablation.add_argument("name", choices=sorted(ABLATIONS))
    _add_scale_arguments(ablation)

    verify = commands.add_parser(
        "verify", help="run every figure and check the paper's claims"
    )
    _add_scale_arguments(verify)

    commands.add_parser("demo", help="run a small end-to-end demonstration")
    return parser


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--objects",
        type=int,
        default=1000,
        help="objects per node (paper: 1000)",
    )
    parser.add_argument(
        "--queries", type=int, default=4, help="query repetitions (paper: 4)"
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for independent sweep points "
            "(default: $REPRO_JOBS or 1 = serial; results are identical)"
        ),
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render an ASCII chart of the series",
    )


def _params(args: argparse.Namespace) -> FigureParams:
    return FigureParams(
        objects_per_node=args.objects, queries=args.queries, seed=args.seed
    )


def _runner(args: argparse.Namespace) -> ExperimentRunner | None:
    """A parallel runner when ``--jobs``/``REPRO_JOBS`` asks for one."""
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        raise SystemExit(f"error: --jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return None
    return ParallelExperimentRunner(jobs=jobs)


def _run_list() -> int:
    print("figures:   " + "  ".join(sorted(FIGURES)))
    print("ablations: " + "  ".join(sorted(ABLATIONS)))
    return 0


def _run_figure(args: argparse.Namespace) -> int:
    result = FIGURES[args.name](_params(args), runner=_runner(args))
    _emit(result, args)
    if args.name == "churn":
        from repro.eval.report import format_churn_trials

        print()
        print("per-trial degradation detail:")
        print(format_churn_trials(churn.figure_churn.last_trials))
    elif args.name == "routing":
        from repro.eval.report import format_routing_trials

        print()
        print("per-strategy recall/traffic detail:")
        print(format_routing_trials(routing.figure_routing.last_trials))
    elif args.name == "topk":
        from repro.eval.report import format_topk_trials

        print()
        print("per-(k, ttl, rate) traffic/quality detail:")
        print(format_topk_trials(topk.figure_topk.last_trials))
    elif args.name == "scaling":
        from repro.eval.report import format_scaling_trials

        print()
        print("per-executor wall/critical-path detail:")
        print(format_scaling_trials(scaling.figure_scaling.last_trials))
    elif args.name == "replication":
        from repro.eval.report import format_replication_trials

        print()
        print("per-(scheme, rate) resilience/overhead detail:")
        print(
            format_replication_trials(
                replication.figure_replication.last_trials
            )
        )
    return 0


def _run_ablation(args: argparse.Namespace) -> int:
    result = ABLATIONS[args.name](_params(args))
    _emit(result, args)
    return 0


def _emit(result: FigureResult, args: argparse.Namespace) -> None:
    print(format_figure(result))
    if args.plot:
        from repro.eval.plot import render_ascii_plot

        print()
        print(render_ascii_plot(result))


def _run_verify(args: argparse.Namespace) -> int:
    from repro.eval.claims import CLAIMS, verify_all

    params = _params(args)
    runner = _runner(args)
    results = {}
    for key in sorted(CLAIMS):
        print(f"running figure {key} ...", flush=True)
        results[key] = FIGURES[key](params, runner=runner)
    report = verify_all(results)
    print()
    print(report)
    return 0 if "FAIL" not in report else 1


def _run_demo() -> int:
    from repro import BestPeerConfig, build_network, line
    from repro.replication import ReplicationPolicy

    net = build_network(
        6,
        config=BestPeerConfig(
            max_direct_peers=3,
            strategy="maxcount",
            replication=ReplicationPolicy(rf=2, hot_rf=3, cache_capacity=8),
        ),
        topology=line(6),
    )
    net.nodes[4].share(["demo"], b"found at the far end")
    net.nodes[5].share(["demo"], b"and even farther")
    first = net.base.issue_query("demo")
    net.sim.run()
    print(
        f"query 1: {first.network_answer_count} answers in "
        f"{first.completion_time:.4f}s (simulated)"
    )
    net.base.finish_query(first)
    second = net.base.issue_query("demo")
    net.sim.run()
    if second.served_from_cache:
        print(
            f"query 2: {second.network_answer_count} answers replayed "
            "from the invalidation-coherent result cache (no network)"
        )
        print("speedup: inf (cache hit)")
    else:
        print(
            f"query 2: {second.network_answer_count} answers in "
            f"{second.completion_time:.4f}s after reconfiguration"
        )
        print(f"speedup: {first.completion_time / second.completion_time:.2f}x")
    from repro.eval.report import format_degradation_stats, format_network_stats

    print()
    print("graceful-degradation counters:")
    print(format_degradation_stats(net.nodes))
    print()
    print("network/wire counters (control vs data plane):")
    print(format_network_stats(net.network))
    from repro.eval.report import format_replication_stats

    print()
    print("replication/cache counters (rf=2, hot_rf=3, cache=8):")
    print(format_replication_stats(net.nodes))
    net.base.finish_query(second)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _run_list()
    if args.command == "figure":
        return _run_figure(args)
    if args.command == "ablation":
        return _run_ablation(args)
    if args.command == "verify":
        return _run_verify(args)
    if args.command == "demo":
        return _run_demo()
    raise AssertionError(f"unhandled command {args.command!r}")
