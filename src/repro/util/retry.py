"""Capped exponential backoff with seeded jitter.

A :class:`RetryPolicy` is pure arithmetic: given the number of failures
so far and an RNG (derived from the experiment seed via
:func:`repro.util.randomness.derive_rng`), it yields the next delay.
Because the jitter draws come from a seeded stream, a retried exchange
replays bit-identically from the seed — the property every fault-
injection test in ``tests/faults/`` leans on.

The policy never sleeps or schedules by itself; simulated callers feed
delays to the event kernel, live callers to a sleep function (see
:func:`retry_call`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import RetryError, RetryExhaustedError

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff plus jitter.

    ``max_attempts`` counts *total* tries, so ``max_attempts=1`` means
    no retries at all.  The delay before attempt ``n+1`` (after ``n``
    failures) is ``min(max_delay, base_delay * multiplier**(n-1))``,
    stretched by a uniform jitter of up to ``±jitter`` of itself.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RetryError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise RetryError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise RetryError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise RetryError(
                f"max_delay {self.max_delay} < base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise RetryError(f"jitter must be in [0, 1), got {self.jitter}")

    def should_retry(self, failures: int) -> bool:
        """True while another attempt is allowed after ``failures`` failures."""
        return failures < self.max_attempts

    def delay(self, failures: int, rng: random.Random | None = None) -> float:
        """Backoff before the attempt following failure number ``failures``.

        ``failures`` is 1-based (the delay after the first failure is
        ``base_delay``-ish).  Without an RNG the delay is the exact cap
        — deterministic but synchronized; pass a seeded RNG to spread
        retries while staying replayable.
        """
        if failures < 1:
            raise RetryError(f"delay() needs failures >= 1, got {failures}")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (failures - 1))
        if rng is None or self.jitter == 0.0:
            return raw
        spread = self.jitter * (2.0 * rng.random() - 1.0)
        return raw * (1.0 + spread)


#: Defaults tuned to the simulator's LIGLO timeout (5 s): four attempts
#: spanning ~3.5 s of backoff on top of the per-attempt timeouts.
DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_call(
    func: Callable[[], T],
    policy: RetryPolicy,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
) -> T:
    """Blocking retry loop for the live (threaded) runtime.

    Calls ``func`` up to ``policy.max_attempts`` times, sleeping the
    policy's backoff between failures, and raises
    :class:`~repro.errors.RetryExhaustedError` (chaining the last
    exception) once attempts run out.  Simulated code never uses this —
    it schedules the delays on the event kernel instead.
    """
    if sleep is None:
        import time

        sleep = time.sleep
    failures = 0
    while True:
        try:
            return func()
        except retry_on as exc:
            failures += 1
            if not policy.should_retry(failures):
                raise RetryExhaustedError(
                    f"gave up after {failures} attempts: {exc}", attempts=failures
                ) from exc
            sleep(policy.delay(failures, rng))
