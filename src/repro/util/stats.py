"""Small statistics helpers used by the evaluation harness."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class RunningStats:
    """Welford accumulator for mean/variance without storing samples."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n - 1 denominator); 0 for a single sample."""
        if self.count == 0:
            raise ValueError("no samples")
        if self.count == 1:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        if self.count == 0:
            return "RunningStats(empty)"
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.minimum:.6g}, "
            f"max={self.maximum:.6g})"
        )
