"""Message compression codecs.

The paper: "We also incorporated the GZIP data-compression algorithm in
the current implementation of BestPeer.  All the agent and messages used
for communications between every nodes or peers are in a compressed data
representation.  Compression and un-compression are performed
automatically by BestPeer platform and are transparent to the software
developers."

We mirror that: every serialized payload passes through a
:class:`Codec` before its size is charged to the network model.  The
default is :class:`GzipCodec`; :class:`IdentityCodec` exists so the
compression ablation bench can turn the feature off.
"""

from __future__ import annotations

import gzip
import zlib


class Codec:
    """Interface for byte-level compression codecs."""

    #: short name used in traces and ablation reports
    name = "codec"

    def compress(self, data: bytes) -> bytes:
        raise NotImplementedError

    def decompress(self, data: bytes) -> bytes:
        raise NotImplementedError


class GzipCodec(Codec):
    """Real gzip compression, as the BestPeer prototype used.

    ``mtime=0`` keeps output deterministic so simulated message sizes do
    not depend on the wall clock.
    """

    name = "gzip"

    def __init__(self, level: int = 6):
        if not 0 <= level <= 9:
            raise ValueError(f"gzip level must be in 0..9, got {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return gzip.compress(data, compresslevel=self.level, mtime=0)

    def decompress(self, data: bytes) -> bytes:
        try:
            return gzip.decompress(data)
        except (OSError, EOFError, zlib.error) as exc:
            raise ValueError(f"corrupt gzip payload: {exc}") from exc


class IdentityCodec(Codec):
    """No-op codec used by the compression ablation."""

    name = "identity"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


DEFAULT_CODEC = GzipCodec()
