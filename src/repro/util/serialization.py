"""Payload serialization.

Agents, answers, and control messages are serialized with :mod:`pickle`
(the Python analogue of the Java serialization the prototype used) so that
the *real* byte size of each message feeds the simulated transmission-cost
model.  The simulation is single-process and the payloads are produced by
this library itself, so pickle's trust model is acceptable here; shipping
of agent *code* goes through the explicit source-shipping path in
:mod:`repro.agents.codeship` instead of pickled classes.

Small fixed-shape control messages additionally register with the compact
wire codec (:mod:`repro.net.codec`): those skip pickle+gzip entirely and
travel as struct-packed binary frames.  ``REPRO_WIRE_CODEC=pickle``
forces even registered messages down the pickle path — but the charged
wire size stays the canonical compact-frame size either way, so the
switch can never change a simulated byte count, only wall-clock.

Payload-carrying data-plane messages (answers, fetch/active/data
replies, sourced agent envelopes) register with the streaming data codec
(:mod:`repro.net.datacodec`) instead and travel as length-prefixed
stream frames; ``REPRO_WIRE_DATA=pickle`` forces them back to
pickle+gzip under the same charged-size invariance.  Per-plane counters
(`control`/`data`/`fallback`) record where the bytes actually go.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.util.compression import Codec
    from repro.util.tracing import Tracer

#: Protocol pinned for deterministic sizes across interpreter versions.
PICKLE_PROTOCOL = 4

#: Default number of payload objects a :class:`WireEncoder` memoizes.
#: Fan-out sends (agent floods, CS broadcasts, Gnutella relays) reuse one
#: payload object within a handful of simulator events, so a small cache
#: captures nearly all repeats.  Set to 0 to disable encoding caches
#: globally (the determinism regression tests do exactly that).
WIRE_CACHE_CAPACITY = 128

#: Lazily bound :mod:`repro.net.codec` (imported on first encode to keep
#: ``repro.util`` importable before ``repro.net`` finishes initialising).
_wire_codec_module = None


def _wire_codec():
    global _wire_codec_module
    if _wire_codec_module is None:
        from repro.net import codec

        _wire_codec_module = codec
    return _wire_codec_module


#: Lazily bound :mod:`repro.net.datacodec`, same rationale as above.
_data_codec_module = None


def _data_codec():
    global _data_codec_module
    if _data_codec_module is None:
        from repro.net import datacodec

        _data_codec_module = datacodec
    return _data_codec_module


def serialize(obj: Any) -> bytes:
    """Serialize ``obj`` to bytes."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    return pickle.loads(data)


def serialized_size(obj: Any) -> int:
    """Size in bytes of ``obj``'s serialized form (uncompressed)."""
    return len(serialize(obj))


class EncodedPayload:
    """One payload's wire form: transport bytes plus charged size.

    ``raw`` is what the receiver decodes — a compact frame under the
    compact codec, an uncompressed pickle otherwise; ``codec`` tags which
    (it travels into :class:`~repro.net.message.Packet` so lazy decode
    picks the right inverse).  ``compressed_size`` is what the
    transmission model charges (framing overhead excluded): the compact
    frame length for registered control messages *regardless of codec
    mode*, the gzip size of the pickle for everything else.
    """

    __slots__ = ("raw", "compressed_size", "codec")

    def __init__(self, raw: bytes, compressed_size: int, codec: str = "pickle"):
        self.raw = raw
        self.compressed_size = compressed_size
        self.codec = codec


class WireEncoder:
    """Serialize+compress payloads once per object, not once per recipient.

    Encoding is memoized on *payload identity*, keyed per wire codec: a
    fan-out loop that sends the same envelope object to N peers pays one
    encoding instead of N, and a mid-run ``REPRO_WIRE_CODEC`` flip can
    never serve bytes produced under the other codec.  Each cache entry
    keeps a strong reference to its payload so an ``id()`` can never be
    reused while the entry is live; the ``is`` check on lookup makes a
    stale hit impossible.

    The cache assumes payloads are not mutated between sends — true for
    every protocol message in this library (frozen dataclasses, tuples,
    bytes).  Encoded bytes are deterministic, so a hit returns exactly
    what re-encoding would; wire sizes are bit-identical either way.
    """

    def __init__(
        self,
        codec: "Codec",
        capacity: int | None = None,
        tracer: "Tracer | None" = None,
    ):
        self.codec = codec
        self.capacity = WIRE_CACHE_CAPACITY if capacity is None else capacity
        self.tracer = tracer
        self.hits = 0
        self.misses = 0
        #: payloads that took the compact control path / the streaming
        #: data path / the pickle(+gzip) fallback
        self.compact_frames = 0
        self.data_frames = 0
        self.pickle_payloads = 0
        #: charged bytes per plane (counted once per distinct encoding,
        #: i.e. on cache misses — the per-send totals live in Network)
        self.control_bytes = 0
        self.data_bytes = 0
        self.fallback_bytes = 0
        #: (id(payload), control mode, data mode) -> (payload, encoded)
        self._cache: OrderedDict[
            tuple[int, str, str], tuple[Any, EncodedPayload]
        ] = OrderedDict()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def encode(self, payload: Any) -> EncodedPayload:
        """Wire form of ``payload``, memoized per (object identity, codec)."""
        wire = _wire_codec()
        data = _data_codec()
        mode = wire.wire_codec_mode()
        data_mode = data.wire_data_mode()
        key = (id(payload), mode, data_mode)
        entry = self._cache.get(key)
        if entry is not None and entry[0] is payload:
            self.hits += 1
            self._cache.move_to_end(key)
            if self.tracer is not None:
                self.tracer.bump("net", "encode-hit")
            return entry[1]
        self.misses += 1
        if self.tracer is not None:
            self.tracer.bump("net", "encode-miss")
        encoded = self._encode(payload, wire, mode, data, data_mode)
        if self.capacity > 0:
            self._cache[key] = (payload, encoded)
            self._cache.move_to_end(key)
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
        return encoded

    def _encode(
        self, payload: Any, wire, mode: str, data, data_mode: str
    ) -> EncodedPayload:
        frame = wire.try_encode(payload)
        if frame is not None:
            self.compact_frames += 1
            self.control_bytes += len(frame)
            if self.tracer is not None:
                self.tracer.bump("net", "encode-compact")
            if mode == wire.CODEC_COMPACT:
                return EncodedPayload(frame, len(frame), wire.CODEC_COMPACT)
            # Pickle fallback mode: ship pickle bytes, but charge the
            # canonical compact-frame size so simulated byte counts are
            # bit-identical whichever codec is selected.
            return EncodedPayload(serialize(payload), len(frame), wire.CODEC_PICKLE)
        frame = data.try_encode(payload)
        if frame is not None:
            self.data_frames += 1
            self.data_bytes += len(frame)
            if self.tracer is not None:
                self.tracer.bump("net", "encode-stream")
            if data_mode == data.DATA_STREAM:
                return EncodedPayload(frame, len(frame), data.CODEC_STREAM)
            # Same charged-size invariance as the control plane: pickle
            # mode ships pickle bytes at the canonical stream-frame size.
            return EncodedPayload(serialize(payload), len(frame), wire.CODEC_PICKLE)
        self.pickle_payloads += 1
        raw = serialize(payload)
        encoded = EncodedPayload(raw, len(self.codec.compress(raw)), wire.CODEC_PICKLE)
        self.fallback_bytes += encoded.compressed_size
        return encoded

    def clear(self) -> None:
        """Drop all cached encodings (counters are kept)."""
        self._cache.clear()
