"""Payload serialization.

Agents, answers, and control messages are serialized with :mod:`pickle`
(the Python analogue of the Java serialization the prototype used) so that
the *real* byte size of each message feeds the simulated transmission-cost
model.  The simulation is single-process and the payloads are produced by
this library itself, so pickle's trust model is acceptable here; shipping
of agent *code* goes through the explicit source-shipping path in
:mod:`repro.agents.codeship` instead of pickled classes.
"""

from __future__ import annotations

import pickle
from typing import Any

#: Protocol pinned for deterministic sizes across interpreter versions.
PICKLE_PROTOCOL = 4


def serialize(obj: Any) -> bytes:
    """Serialize ``obj`` to bytes."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    return pickle.loads(data)


def serialized_size(obj: Any) -> int:
    """Size in bytes of ``obj``'s serialized form (uncompressed)."""
    return len(serialize(obj))
