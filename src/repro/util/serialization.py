"""Payload serialization.

Agents, answers, and control messages are serialized with :mod:`pickle`
(the Python analogue of the Java serialization the prototype used) so that
the *real* byte size of each message feeds the simulated transmission-cost
model.  The simulation is single-process and the payloads are produced by
this library itself, so pickle's trust model is acceptable here; shipping
of agent *code* goes through the explicit source-shipping path in
:mod:`repro.agents.codeship` instead of pickled classes.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.util.compression import Codec
    from repro.util.tracing import Tracer

#: Protocol pinned for deterministic sizes across interpreter versions.
PICKLE_PROTOCOL = 4

#: Default number of payload objects a :class:`WireEncoder` memoizes.
#: Fan-out sends (agent floods, CS broadcasts, Gnutella relays) reuse one
#: payload object within a handful of simulator events, so a small cache
#: captures nearly all repeats.  Set to 0 to disable encoding caches
#: globally (the determinism regression tests do exactly that).
WIRE_CACHE_CAPACITY = 128


def serialize(obj: Any) -> bytes:
    """Serialize ``obj`` to bytes."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    return pickle.loads(data)


def serialized_size(obj: Any) -> int:
    """Size in bytes of ``obj``'s serialized form (uncompressed)."""
    return len(serialize(obj))


class EncodedPayload:
    """One payload's wire form: serialized bytes plus compressed size.

    ``raw`` is the uncompressed pickle — receivers deserialize it to get
    an independent copy; ``compressed_size`` is what the transmission
    model charges (framing overhead excluded).
    """

    __slots__ = ("raw", "compressed_size")

    def __init__(self, raw: bytes, compressed_size: int):
        self.raw = raw
        self.compressed_size = compressed_size


class WireEncoder:
    """Serialize+compress payloads once per object, not once per recipient.

    Encoding is memoized on *payload identity*: a fan-out loop that sends
    the same envelope object to N peers pays one ``pickle.dumps`` and one
    compression instead of N.  Each cache entry keeps a strong reference
    to its payload so an ``id()`` can never be reused while the entry is
    live; the ``is`` check on lookup makes a stale hit impossible.

    The cache assumes payloads are not mutated between sends — true for
    every protocol message in this library (frozen dataclasses, tuples,
    bytes).  Encoded bytes are deterministic, so a hit returns exactly
    what re-encoding would; wire sizes are bit-identical either way.
    """

    def __init__(
        self,
        codec: "Codec",
        capacity: int | None = None,
        tracer: "Tracer | None" = None,
    ):
        self.codec = codec
        self.capacity = WIRE_CACHE_CAPACITY if capacity is None else capacity
        self.tracer = tracer
        self.hits = 0
        self.misses = 0
        #: id(payload) -> (payload, encoded); ordered for LRU eviction
        self._cache: OrderedDict[int, tuple[Any, EncodedPayload]] = OrderedDict()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def encode(self, payload: Any) -> EncodedPayload:
        """Wire form of ``payload``, memoized per object identity."""
        key = id(payload)
        entry = self._cache.get(key)
        if entry is not None and entry[0] is payload:
            self.hits += 1
            self._cache.move_to_end(key)
            if self.tracer is not None:
                self.tracer.bump("net", "encode-hit")
            return entry[1]
        self.misses += 1
        if self.tracer is not None:
            self.tracer.bump("net", "encode-miss")
        raw = serialize(payload)
        encoded = EncodedPayload(raw, len(self.codec.compress(raw)))
        if self.capacity > 0:
            self._cache[key] = (payload, encoded)
            self._cache.move_to_end(key)
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
        return encoded

    def clear(self) -> None:
        """Drop all cached encodings (counters are kept)."""
        self._cache.clear()
