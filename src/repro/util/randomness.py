"""Deterministic randomness helpers.

All stochastic choices in the library (tie breaking, workload generation,
churn) flow through ``random.Random`` instances derived from a single
experiment seed, so a run is reproducible bit-for-bit from its seed.
"""

from __future__ import annotations

import hashlib
import random


def derive_rng(seed: int, *scope: object) -> random.Random:
    """Return an RNG deterministically derived from ``seed`` and a scope.

    Two calls with the same ``(seed, scope)`` return streams with identical
    output; different scopes give independent-looking streams.  Scope parts
    are stringified, so any hashable-ish labels work::

        rng = derive_rng(42, "workload", node_index)
    """
    material = ":".join([str(seed)] + [str(part) for part in scope])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class SeedSequence:
    """Mints child seeds from a root seed, one per ``spawn()`` call."""

    def __init__(self, root_seed: int):
        self.root_seed = root_seed
        self._next_child = 0

    def spawn(self) -> int:
        """Return a fresh deterministic child seed."""
        child = self._next_child
        self._next_child += 1
        material = f"{self.root_seed}/{child}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")
