"""Structured trace-event collection.

Subsystems record :class:`TraceEvent` rows (message sent, agent executed,
peer replaced, packet dropped...) into a shared :class:`Tracer`.  The
evaluation harness and tests read the trace instead of scraping logs; a
disabled tracer costs one attribute check per record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record."""

    time: float
    category: str
    label: str
    fields: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """Look up one field by name."""
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def __str__(self) -> str:
        parts = " ".join(f"{name}={value!r}" for name, value in self.fields)
        return f"[{self.time:.6f}] {self.category}:{self.label} {parts}".rstrip()


@dataclass
class Tracer:
    """Collects trace events; can be disabled or filtered by category."""

    enabled: bool = True
    categories: frozenset[str] | None = None
    events: list[TraceEvent] = field(default_factory=list)
    #: optional live callback invoked for every recorded event
    sink: Callable[[TraceEvent], None] | None = None
    #: running counters for very hot events (e.g. wire-encoder cache hits)
    #: that would swamp ``events`` if recorded individually
    counters: dict[tuple[str, str], int] = field(default_factory=dict)
    #: accumulated wall-clock timers (e.g. agent-path profiling): total
    #: real seconds per (category, name), alongside the count in
    #: ``counters``
    timers: dict[tuple[str, str], float] = field(default_factory=dict)

    def record(self, time: float, category: str, label: str, **fields: Any) -> None:
        """Record one event (no-op if disabled or filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        event = TraceEvent(time, category, label, tuple(fields.items()))
        self.events.append(event)
        if self.sink is not None:
            self.sink(event)

    def select(self, category: str, label: str | None = None) -> Iterator[TraceEvent]:
        """Iterate events of one category (and optionally one label)."""
        for event in self.events:
            if event.category != category:
                continue
            if label is not None and event.label != label:
                continue
            yield event

    def count(self, category: str, label: str | None = None) -> int:
        """Number of matching events."""
        return sum(1 for _ in self.select(category, label))

    def bump(self, category: str, name: str, amount: int = 1) -> None:
        """Increment a running counter (no-op if disabled or filtered)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        key = (category, name)
        self.counters[key] = self.counters.get(key, 0) + amount

    def counter(self, category: str, name: str) -> int:
        """Current value of one running counter (0 when never bumped)."""
        return self.counters.get((category, name), 0)

    def add_time(self, category: str, name: str, seconds: float) -> None:
        """Accumulate wall-clock seconds into a running timer (no-op if
        disabled or filtered)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        key = (category, name)
        self.timers[key] = self.timers.get(key, 0.0) + seconds

    def timer(self, category: str, name: str) -> float:
        """Accumulated seconds of one timer (0.0 when never added to)."""
        return self.timers.get((category, name), 0.0)

    def clear(self) -> None:
        """Drop all recorded events, counters, and timers."""
        self.events.clear()
        self.counters.clear()
        self.timers.clear()


#: Shared "off" tracer for components constructed without one.
NULL_TRACER = Tracer(enabled=False)
