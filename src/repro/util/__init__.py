"""Shared utilities: compression, serialization, RNG, statistics, tracing."""

from repro.util.compression import Codec, GzipCodec, IdentityCodec
from repro.util.randomness import SeedSequence, derive_rng
from repro.util.serialization import deserialize, serialize, serialized_size
from repro.util.stats import RunningStats, mean, percentile
from repro.util.tracing import TraceEvent, Tracer

__all__ = [
    "Codec",
    "GzipCodec",
    "IdentityCodec",
    "SeedSequence",
    "derive_rng",
    "serialize",
    "deserialize",
    "serialized_size",
    "RunningStats",
    "mean",
    "percentile",
    "TraceEvent",
    "Tracer",
]
