"""The paper's StorM search agent.

Section 4.2: "We implemented a StorM agent, that takes as input a query
from the user (in the form of a keyword), and then search through the
entire BestPeer network. ... The agent makes a comparison for each object
stored in the Shared-StorM database with its query.  All the matched
results are stored in a temporally array.  The result is sent back to the
base node."

Two result modes (Section 2) are supported through ``mode``:
``"direct"`` ships matching payloads in the answer; ``"metadata"`` ships
descriptions only, for a later out-of-network fetch by the initiator.

The agent is written to be *code-shippable*: it subclasses ``Agent``
(present in every shipping namespace) and keeps its state plain.
"""

from __future__ import annotations

from repro.agents.agent import Agent


class StorMSearchAgent(Agent):
    """Keyword search over each visited host's StorM store."""

    def __init__(
        self,
        keyword: str,
        mode: str = "direct",
        use_index: bool = False,
        reply_empty: bool = False,
    ):
        if mode not in ("direct", "metadata"):
            raise ValueError(f"mode must be 'direct' or 'metadata', got {mode!r}")
        self.keyword = keyword
        self.mode = mode
        self.use_index = use_index
        self.reply_empty = reply_empty

    def execute(self, context) -> None:
        # Imports live inside execute so the shipped source is
        # self-contained at any destination host.
        from repro.agents.messages import AnswerItem

        if self.use_index:
            result = context.storm.search(self.keyword)
        else:
            # The paper's behaviour: compare every stored object.
            result = context.storm.search_scan(self.keyword)
        context.charge_search(result)
        items = []
        for rid, obj in result.matches:
            payload = obj.payload if self.mode == "direct" else None
            items.append(
                AnswerItem(rid=rid, keywords=obj.keywords, size=obj.size, payload=payload)
            )
        # "Any nodes with matching results will respond to the initiating
        # node directly" - nodes without matches stay silent by default.
        if items or self.reply_empty:
            context.reply(items)
