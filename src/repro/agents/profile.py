"""Per-node wall-clock profiling of the agent execute path.

The simulator already accounts for *simulated* agent costs
(:class:`~repro.agents.costs.AgentCosts`); this module measures the
*real* time the reproduction spends running that machinery — source
extraction, class install, agent execution, clone fan-out — so the
agent-path caches' effect shows up as evidence in ``BENCH_*.json``
files, the same way PR 1's wire counters did for the encoding cache.

Every :class:`~repro.agents.engine.AgentEngine` owns one
:class:`AgentPathProfiler` tagged with its host's name (per-node view);
the profiler also mirrors totals into the engine's shared
:class:`~repro.util.tracing.Tracer` as ``agent-path`` counters and
timers (network-wide view), which
:func:`repro.eval.report.agent_path_stats` renders alongside
``network_stats``.  Profiling costs one clock read pair per operation
and never touches simulated quantities.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.util.tracing import Tracer

#: Tracer category under which profiler totals are mirrored.
PROFILE_CATEGORY = "agent-path"

#: The profiled operations, in execute-path order.
#: ``extract`` — source extraction at dispatch; ``install`` — compiling
#: or rebinding a shipped class; ``execute`` — reconstructing the agent
#: from state and running it; ``clone`` — one clone-and-forward fan-out
#: (dispatch or relay), however many peers it reaches.
PROFILE_OPS = ("extract", "install", "execute", "clone")


@dataclass
class OpStats:
    """Running count and wall-clock total for one profiled operation."""

    count: int = 0
    seconds: float = 0.0


class AgentPathProfiler:
    """Counts and times the hot operations of one engine's agent path."""

    def __init__(
        self,
        node: str = "",
        tracer: "Tracer | None" = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.node = node
        self.tracer = tracer
        self.clock = clock
        self._ops: dict[str, OpStats] = {}

    @contextmanager
    def timed(self, op: str) -> Iterator[None]:
        """Time one operation; records even when the body raises."""
        start = self.clock()
        try:
            yield
        finally:
            self.add(op, self.clock() - start)

    def add(self, op: str, seconds: float) -> None:
        """Record one occurrence of ``op`` taking ``seconds`` wall-clock."""
        stats = self._ops.setdefault(op, OpStats())
        stats.count += 1
        stats.seconds += seconds
        if self.tracer is not None:
            self.tracer.bump(PROFILE_CATEGORY, op)
            self.tracer.add_time(PROFILE_CATEGORY, op, seconds)

    def count(self, op: str) -> int:
        """How many times ``op`` ran at this node."""
        stats = self._ops.get(op)
        return stats.count if stats is not None else 0

    def seconds(self, op: str) -> float:
        """Total wall-clock seconds ``op`` consumed at this node."""
        stats = self._ops.get(op)
        return stats.seconds if stats is not None else 0.0

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-op ``{"count": ..., "seconds": ...}`` for this node."""
        return {
            op: {"count": stats.count, "seconds": stats.seconds}
            for op, stats in sorted(self._ops.items())
        }

    def __repr__(self) -> str:
        ops = ", ".join(
            f"{op}={stats.count}/{stats.seconds:.6f}s"
            for op, stats in sorted(self._ops.items())
        )
        return f"AgentPathProfiler({self.node!r}, {ops})"
