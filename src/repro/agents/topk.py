"""In-network top-k query processing with score-based early termination.

A plain BestPeer flood returns *every* matching answer to the initiator
— the traffic pattern that collapses at scale.  Following Akbarinia,
Pacitti & Valduriez's fully-distributed top-k processing for
unstructured P2P systems, a top-k query instead carries a bounded
:class:`TopKAccumulator` inside the travelling agent's state: each hop
merges its local scored hits with the in-transit partial result, ships
only the hits that still rank in the current top-k straight back to the
initiator, and lets everything dominated by the current k-th score die
at that hop.  The accumulator (at most ``k`` score/holder/rid entries,
no payloads) *is* the piggybacked score threshold: the forwarded clone's
state carries it to every next hop.

The merge operator is a bounded top-k union under the strict total
order :attr:`TopKEntry.sort_key` ``(-score, holder, rid)``.  Because
distinct entries always have distinct keys, the top-k of any entry
multiset is unique — which makes the merge commutative, associative,
idempotent, and invariant under arbitrary partition and permutation of
the answer stream (proved by hypothesis in
``tests/agents/test_topk_merge.py``).  Dominance pruning is safe
because every entry an accumulator holds was already shipped to the
initiator by the hop that produced it: dropping a dominated answer can
never lose a record that belongs in the true top-k.

Exhaustive behaviour is fully preserved: with ``BestPeerConfig.top_k``
left ``None`` (or ``REPRO_TOPK=off``) queries use the legacy
:class:`~repro.agents.storm_agent.StorMSearchAgent` path and runs stay
bit-identical — pinned by ``tests/eval/test_fastpath_determinism.py``.

See ``docs/TOPK.md`` for the scoring model and merge semantics.
"""

from __future__ import annotations

import bisect
import os
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.agents.agent import Agent
from repro.errors import AgentError
from repro.ids import BPID, QueryId
from repro.net.address import IPAddress
from repro.storm.heapfile import RecordId

#: Per-call kill switch for in-network top-k: ``off`` makes every node
#: fall back to the exhaustive legacy agent even when ``top_k`` is
#: configured.  Checked from the environment on each query — like
#: ``REPRO_WIRE_CODEC`` — so ``--jobs`` workers inherit it for free.
TOPK_ENV_VAR = "REPRO_TOPK"


def topk_bypassed() -> bool:
    """True when ``REPRO_TOPK=off`` disables in-network top-k."""
    value = os.environ.get(TOPK_ENV_VAR)
    if not value:
        return False
    normalized = value.strip().lower()
    if normalized not in ("on", "off"):
        raise AgentError(
            f"{TOPK_ENV_VAR}={value!r} is not one of 'on', 'off'"
        )
    return normalized == "off"


# ---------------------------------------------------------------------------
# The merge operator
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TopKEntry:
    """One scored hit's identity: who holds which record, scoring what.

    Entries are the currency of the in-network merge — small enough to
    piggyback on every forwarded clone (no payloads), yet enough for
    the initiator to fetch any record out-of-network afterwards.
    """

    score: float
    holder: BPID
    rid: RecordId

    @property
    def sort_key(self) -> tuple[float, str, int, int, int]:
        """Strict total order: best score first, ties broken on the
        holder's BPID then the record id, so distinct entries never
        compare equal and the top-k of any entry set is unique."""
        return (
            -self.score,
            self.holder.liglo_id,
            self.holder.node_id,
            self.rid.page_id,
            self.rid.slot,
        )


class TopKAccumulator:
    """A bounded, mergeable top-k set of :class:`TopKEntry`.

    Holds at most ``k`` entries, ordered best-first by
    :attr:`TopKEntry.sort_key`.  :meth:`add` is the whole merge
    operator: an entry ranking within the current top-k displaces the
    worst entry; a dominated entry is rejected.  Because rejection only
    depends on the (monotonically tightening) k-th key, adds commute
    and the final state is independent of arrival order.
    """

    __slots__ = ("k", "_entries", "_keys", "_idents")

    def __init__(self, k: int, entries: Sequence[TopKEntry] = ()):
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise AgentError(f"top-k accumulator needs k >= 1, got {k!r}")
        self.k = k
        self._entries: list[TopKEntry] = []
        self._keys: list[tuple] = []
        self._idents: set[tuple[BPID, RecordId]] = set()
        for entry in entries:
            self.add(entry)

    def add(self, entry: TopKEntry) -> bool:
        """Merge one entry; True when it is in the top-k afterwards.

        Re-adding a present entry is a no-op (idempotence); an entry
        dominated by the current k-th key is rejected and — since the
        threshold only ever tightens — would be rejected by every later
        state too, so a False here is final.
        """
        ident = (entry.holder, entry.rid)
        if ident in self._idents:
            return True
        key = entry.sort_key
        if len(self._entries) == self.k and key > self._keys[-1]:
            return False
        index = bisect.bisect_left(self._keys, key)
        self._keys.insert(index, key)
        self._entries.insert(index, entry)
        self._idents.add(ident)
        if len(self._entries) > self.k:
            evicted = self._entries.pop()
            self._keys.pop()
            self._idents.discard((evicted.holder, evicted.rid))
            return evicted is not entry
        return True

    def merge(self, entries: "TopKAccumulator | Sequence[TopKEntry]") -> None:
        """Fold another accumulator (or plain entries) into this one."""
        for entry in entries:
            self.add(entry)

    @property
    def entries(self) -> tuple[TopKEntry, ...]:
        """Current entries, best-first."""
        return tuple(self._entries)

    @property
    def threshold(self) -> float | None:
        """The k-th best score once full (None while under-filled):
        any hit scoring below it is dominated and dies at this hop."""
        if len(self._entries) < self.k:
            return None
        return self._entries[-1].score

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TopKEntry]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopKAccumulator):
            return NotImplemented
        return self.k == other.k and self._entries == other._entries

    def __repr__(self) -> str:
        return f"TopKAccumulator(k={self.k}, entries={self._entries!r})"

    # -- travelling state ------------------------------------------------------

    def as_state(self) -> list[tuple[float, str, int, int, int]]:
        """Plain-data form (what rides inside an agent envelope)."""
        return [
            (
                entry.score,
                entry.holder.liglo_id,
                entry.holder.node_id,
                entry.rid.page_id,
                entry.rid.slot,
            )
            for entry in self._entries
        ]

    @classmethod
    def from_state(
        cls, k: int, state: Sequence[Sequence] = ()
    ) -> "TopKAccumulator":
        """Inverse of :meth:`as_state`."""
        return cls(
            k,
            [
                TopKEntry(score, BPID(liglo_id, node_id), RecordId(page_id, slot))
                for score, liglo_id, node_id, page_id, slot in state
            ],
        )


# ---------------------------------------------------------------------------
# Wire messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ScoredItem:
    """One surviving match, as reported to the initiator — an
    :class:`~repro.agents.messages.AnswerItem` plus its score."""

    rid: RecordId
    keywords: tuple[str, ...]
    size: int
    score: float
    #: present in MODE_DIRECT, None in MODE_METADATA
    payload: bytes | None = None


@dataclass(frozen=True, slots=True)
class ScoredAnswer:
    """One responder's *surviving* hits for one top-k query.

    Shaped like :class:`~repro.agents.messages.AnswerMessage` (same
    attribute surface: ``answer_count``, ``answer_bytes``, ...) so the
    initiating node's answer accounting and reconfiguration strategies
    consume it unchanged; it additionally reports how many local
    matches the accumulator's threshold killed at this hop.
    """

    query_id: QueryId
    responder: BPID
    responder_address: IPAddress
    #: how far (in overlay hops) the responder was from the initiator
    hops: int
    items: tuple[ScoredItem, ...]
    #: local matches dominated by the in-transit top-k (died here)
    dominated_dropped: int = 0

    @property
    def answer_count(self) -> int:
        return len(self.items)

    @property
    def answer_bytes(self) -> int:
        """Total object bytes represented (payloads or reported sizes)."""
        return sum(item.size for item in self.items)


@dataclass(frozen=True, slots=True)
class TopKDigest:
    """What a hop with *no* surviving hits tells the initiator.

    Carries the merged partial top-k (score/holder/rid only — a few
    dozen bytes) instead of the dominated payloads, so the initiator
    still observes the hop's liveness and its dominated-answer count
    without paying exhaustive answer traffic.
    """

    query_id: QueryId
    responder: BPID
    responder_address: IPAddress
    hops: int
    k: int
    entries: tuple[TopKEntry, ...]
    dominated_dropped: int = 0


# ---------------------------------------------------------------------------
# The agent
# ---------------------------------------------------------------------------


class TopKSearchAgent(Agent):
    """Keyword search returning only hits still in the global top-k.

    The travelling twin of
    :class:`~repro.agents.storm_agent.StorMSearchAgent`: at each host it
    runs a *scored* search, merges the local hits into the accumulator
    it arrived with, replies with the survivors (or a
    :class:`TopKDigest` when everything was dominated), and — because
    ``forward_merges_state`` is set — the engine forwards its clones
    *after* execution with the refreshed accumulator, piggybacking the
    tightened score threshold onto every next hop.
    """

    #: engine hook: clone-forward after execute, from refreshed state
    forward_merges_state = True

    def __init__(
        self,
        keyword: str,
        k: int,
        mode: str = "direct",
        use_index: bool = False,
        entries: Sequence[Sequence] = (),
    ):
        if mode not in ("direct", "metadata"):
            raise ValueError(f"mode must be 'direct' or 'metadata', got {mode!r}")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ValueError(f"top-k search needs k >= 1, got {k!r}")
        self.keyword = keyword
        self.k = k
        self.mode = mode
        self.use_index = use_index
        #: accumulator state (plain tuples) — see TopKAccumulator.as_state
        self.entries = [tuple(entry) for entry in entries]

    def execute(self, context) -> None:
        # Imports live inside execute so the shipped source is
        # self-contained at any destination host.
        from repro.agents.engine import PROTO_ANSWER
        from repro.agents.topk import (
            ScoredAnswer,
            ScoredItem,
            TopKAccumulator,
            TopKDigest,
            TopKEntry,
        )

        accumulator = TopKAccumulator.from_state(self.k, self.entries)
        if self.use_index:
            result = context.storm.scored_search(self.keyword, self.k)
        else:
            # The paper's behaviour: compare every stored object.
            result = context.storm.scored_search_scan(self.keyword, self.k)
        context.charge_search(result)
        # Matches beyond the local k-th are dominated by this host's own
        # better hits, so the store-level truncation already counts them.
        dominated = result.truncated
        survivors = []
        for score, rid, obj in result.matches:
            entry = TopKEntry(score, context.host_id, rid)
            if accumulator.add(entry):
                payload = obj.payload if self.mode == "direct" else None
                survivors.append(
                    ScoredItem(
                        rid=rid,
                        keywords=obj.keywords,
                        size=obj.size,
                        score=score,
                        payload=payload,
                    )
                )
            else:
                dominated += 1
        # The refreshed accumulator travels on with the forwarded clones.
        self.entries = accumulator.as_state()
        if survivors:
            context.send(
                context.initiator_address,
                PROTO_ANSWER,
                ScoredAnswer(
                    query_id=context.query_id,
                    responder=context.host_id,
                    responder_address=context.host_address,
                    hops=context.hops,
                    items=tuple(survivors),
                    dominated_dropped=dominated,
                ),
            )
        elif dominated:
            context.send(
                context.initiator_address,
                PROTO_ANSWER,
                TopKDigest(
                    query_id=context.query_id,
                    responder=context.host_id,
                    responder_address=context.host_address,
                    hops=context.hops,
                    k=self.k,
                    entries=accumulator.entries,
                    dominated_dropped=dominated,
                ),
            )
        # No matches at all: stay silent, like the exhaustive agent.


# -- data-plane wire registrations (type id block 0x10xx) ----------------------
#
# Scored answers carry payloads, digests ride the same answer path; both
# belong on the streaming data codec next to AnswerMessage (0x1001).

from repro.net import codec as wire
from repro.net import datacodec as data

_SCORED_ITEM_CODEC = wire.composite(
    "scored-item",
    (
        ("rid", wire.RECORD_ID_CODEC),
        ("keywords", wire.seq(wire.STR)),
        ("size", wire.I64),
        ("score", wire.F64),
        ("payload", wire.opt(wire.BYTES)),
    ),
    ScoredItem,
)

_TOPK_ENTRY_CODEC = wire.composite(
    "topk-entry",
    (
        ("score", wire.F64),
        ("holder", wire.BPID_CODEC),
        ("rid", wire.RECORD_ID_CODEC),
    ),
    TopKEntry,
)

SCORED_ANSWER_FIELDS = (
    ("query_id", wire.QUERY_ID_CODEC),
    ("responder", wire.BPID_CODEC),
    # sim IPAddress or live (host, port) — answers cross both runtimes
    ("responder_address", data.ADDRESS_CODEC),
    ("hops", wire.U32),
    ("items", wire.seq(_SCORED_ITEM_CODEC)),
    ("dominated_dropped", wire.U32),
)

TOPK_DIGEST_FIELDS = (
    ("query_id", wire.QUERY_ID_CODEC),
    ("responder", wire.BPID_CODEC),
    ("responder_address", data.ADDRESS_CODEC),
    ("hops", wire.U32),
    ("k", wire.U16),
    ("entries", wire.seq(_TOPK_ENTRY_CODEC)),
    ("dominated_dropped", wire.U32),
)


def _sample_scored_answer() -> ScoredAnswer:
    origin = BPID("10.0.0.1", 7)
    return ScoredAnswer(
        query_id=QueryId(origin, 3),
        responder=BPID("10.0.0.5", 11),
        responder_address=IPAddress("10.0.4.9"),
        hops=2,
        items=(
            ScoredItem(
                rid=RecordId(3, 12),
                keywords=("music", "mp3"),
                size=5,
                score=0.5,
                payload=b"notes",
            ),
            ScoredItem(
                rid=RecordId(4, 1),
                keywords=("music",),
                size=9,
                score=1.0,
                payload=None,
            ),
        ),
        dominated_dropped=4,
    )


def _sample_topk_digest() -> TopKDigest:
    origin = BPID("10.0.0.1", 7)
    return TopKDigest(
        query_id=QueryId(origin, 3),
        responder=BPID("10.0.0.6", 13),
        responder_address=IPAddress("10.0.4.10"),
        hops=3,
        k=2,
        entries=(
            TopKEntry(score=1.0, holder=BPID("10.0.0.2", 9), rid=RecordId(1, 4)),
            TopKEntry(score=0.25, holder=BPID("10.0.0.5", 11), rid=RecordId(7, 2)),
        ),
        dominated_dropped=2,
    )


data.register(
    ScoredAnswer,
    0x1007,
    SCORED_ANSWER_FIELDS,
    sample=_sample_scored_answer,
)
data.register(
    TopKDigest,
    0x1008,
    TOPK_DIGEST_FIELDS,
    sample=_sample_topk_digest,
)
