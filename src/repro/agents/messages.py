"""Answer messages: what flows straight back to the query initiator.

"Any nodes with matching results will respond to the initiating node
directly" — answers never retrace the query path (the heart of
BestPeer's advantage over CS and Gnutella return routing).

The two result modes of Section 2 are both supported: in mode 1 each
:class:`AnswerItem` carries the object payload; in mode 2 it carries
metadata only (the initiator fetches chosen objects afterwards with a
direct out-of-network download).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import BPID, QueryId
from repro.net.address import IPAddress
from repro.storm.heapfile import RecordId

#: Mode 1 of Section 2: matching nodes return the answers directly.
MODE_DIRECT = "direct"
#: Mode 2: matching nodes return metadata; the initiator fetches later.
MODE_METADATA = "metadata"


@dataclass(frozen=True, slots=True)
class AnswerItem:
    """One matching object, as reported to the initiator."""

    rid: RecordId
    keywords: tuple[str, ...]
    size: int
    #: present in MODE_DIRECT, None in MODE_METADATA
    payload: bytes | None = None


@dataclass(frozen=True, slots=True)
class AnswerMessage:
    """One responder's complete answer for one query."""

    query_id: QueryId
    responder: BPID
    responder_address: IPAddress
    #: how far (in overlay hops) the responder was from the initiator
    hops: int
    items: tuple[AnswerItem, ...]

    @property
    def answer_count(self) -> int:
        return len(self.items)

    @property
    def answer_bytes(self) -> int:
        """Total object bytes represented (payloads or reported sizes)."""
        return sum(item.size for item in self.items)
