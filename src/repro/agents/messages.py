"""Answer messages: what flows straight back to the query initiator.

"Any nodes with matching results will respond to the initiating node
directly" — answers never retrace the query path (the heart of
BestPeer's advantage over CS and Gnutella return routing).

The two result modes of Section 2 are both supported: in mode 1 each
:class:`AnswerItem` carries the object payload; in mode 2 it carries
metadata only (the initiator fetches chosen objects afterwards with a
direct out-of-network download).

:class:`BatchedAnswers` is an *encoding-layer* coalescing of several
answers to the same (destination, query): the engine ships one frame
instead of N, the receiver still records each answer individually, so
per-answer delivery semantics and :class:`~repro.core.query.QueryHandle`
accounting are untouched.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.ids import BPID, QueryId
from repro.net.address import IPAddress
from repro.storm.heapfile import RecordId

#: Mode 1 of Section 2: matching nodes return the answers directly.
MODE_DIRECT = "direct"
#: Mode 2: matching nodes return metadata; the initiator fetches later.
MODE_METADATA = "metadata"


@dataclass(frozen=True, slots=True)
class AnswerItem:
    """One matching object, as reported to the initiator."""

    rid: RecordId
    keywords: tuple[str, ...]
    size: int
    #: present in MODE_DIRECT, None in MODE_METADATA
    payload: bytes | None = None


@dataclass(frozen=True, slots=True)
class AnswerMessage:
    """One responder's complete answer for one query."""

    query_id: QueryId
    responder: BPID
    responder_address: IPAddress
    #: how far (in overlay hops) the responder was from the initiator
    hops: int
    items: tuple[AnswerItem, ...]

    @property
    def answer_count(self) -> int:
        return len(self.items)

    @property
    def answer_bytes(self) -> int:
        """Total object bytes represented (payloads or reported sizes)."""
        return sum(item.size for item in self.items)


class BatchedAnswers:
    """Several answers to one (destination, query), coalesced on the wire.

    The batching decision is made from the outbox contents alone — never
    from the selected codec — so both ``REPRO_WIRE_DATA`` modes ship the
    same batches and charge the same wire sizes.  Decoding a batch frame
    yields a *lazy* instance (built via :meth:`lazy`) that holds
    zero-copy memoryview slices into the frame; the answer tuple is
    materialized once, on first access, so packets dropped before their
    handler runs never pay the record decode.
    """

    __slots__ = ("_answers", "_records", "_loader")

    def __init__(self, answers: Sequence[AnswerMessage]):
        self._answers: tuple[AnswerMessage, ...] | None = tuple(answers)
        self._records: tuple[memoryview, ...] | None = None
        self._loader: Callable[[memoryview], AnswerMessage] | None = None

    @classmethod
    def lazy(
        cls,
        records: Sequence[memoryview],
        loader: Callable[[memoryview], AnswerMessage],
    ) -> "BatchedAnswers":
        """A batch deferring record decode until :attr:`answers` is read."""
        batch = cls.__new__(cls)
        batch._answers = None
        batch._records = tuple(records)
        batch._loader = loader
        return batch

    @property
    def answers(self) -> tuple[AnswerMessage, ...]:
        """The batched answers (lazy instances decode here, once)."""
        if self._answers is None:
            assert self._records is not None and self._loader is not None
            self._answers = tuple(self._loader(record) for record in self._records)
            self._records = None
            self._loader = None
        return self._answers

    @property
    def materialized(self) -> bool:
        """True once the answer records have been decoded."""
        return self._answers is not None

    def __len__(self) -> int:
        if self._answers is None:
            assert self._records is not None
            return len(self._records)
        return len(self._answers)

    def __iter__(self) -> Iterator[AnswerMessage]:
        return iter(self.answers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchedAnswers):
            return NotImplemented
        return self.answers == other.answers

    def __repr__(self) -> str:
        return f"BatchedAnswers(answers={self.answers!r})"

    def __reduce__(self):
        # Pickle mode ships the materialized form; the lazy memoryviews
        # are a decode-side optimization, never part of the value.
        return (BatchedAnswers, (self.answers,))


# -- data-plane wire registrations (type id block 0x10xx) ----------------------
#
# Answers are the bytes that dominate a flood at scale: every responder
# sends one straight back to the initiator.  They carry object payloads,
# so they belong on the streaming data codec, not the control codec.

from repro.net import codec as wire
from repro.net import datacodec as data

_ANSWER_ITEM_CODEC = wire.composite(
    "answer-item",
    (
        ("rid", wire.RECORD_ID_CODEC),
        ("keywords", wire.seq(wire.STR)),
        ("size", wire.I64),
        ("payload", wire.opt(wire.BYTES)),
    ),
    AnswerItem,
)

#: AnswerMessage body layout, shared by the plain frame (0x1001) and the
#: per-record bodies inside a BatchedAnswers frame (0x1002).
ANSWER_FIELDS = (
    ("query_id", wire.QUERY_ID_CODEC),
    ("responder", wire.BPID_CODEC),
    # sim IPAddress or live (host, port) — answers cross both runtimes
    ("responder_address", data.ADDRESS_CODEC),
    ("hops", wire.U32),
    ("items", wire.seq(_ANSWER_ITEM_CODEC)),
)


def _sample_answer(serial: int = 1) -> AnswerMessage:
    origin = BPID("10.0.0.1", 7)
    return AnswerMessage(
        query_id=QueryId(origin, serial),
        responder=BPID("10.0.0.2", 9),
        responder_address=IPAddress("10.0.4.9"),
        hops=2,
        items=(
            AnswerItem(
                rid=RecordId(3, 12),
                keywords=("music", "mp3"),
                size=5,
                payload=b"notes",
            ),
            AnswerItem(
                rid=RecordId(4, 1),
                keywords=("music",),
                size=9,
                payload=None,
            ),
        ),
    )


def _pack_batch(batch: BatchedAnswers, out: bytearray) -> None:
    answers = batch.answers
    if len(answers) > 0xFFFF:
        raise wire.WireEncodeError(f"batch of {len(answers)} answers exceeds u16")
    out += wire.U16._struct.pack(len(answers))  # type: ignore[attr-defined]
    for answer in answers:
        record = bytearray()
        data.pack_fields(ANSWER_FIELDS, answer, record)
        out += wire.U32._struct.pack(len(record))  # type: ignore[attr-defined]
        out += record


def _load_answer_record(record: memoryview) -> AnswerMessage:
    return data.unpack_fields(ANSWER_FIELDS, AnswerMessage, bytes(record))


def _unpack_batch(body: memoryview) -> BatchedAnswers:
    # Record *boundaries* are validated eagerly (a corrupt length table
    # fails at decode); record *contents* stay as zero-copy slices into
    # the frame until someone reads ``batch.answers``.
    count, offset = wire.U16.unpack(body, 0)
    records: list[memoryview] = []
    for _ in range(count):
        length, offset = wire.U32.unpack(body, offset)
        end = offset + length
        if end > len(body):
            raise wire.WireDecodeError(
                f"batch record of {length} bytes overruns the frame body"
            )
        records.append(body[offset:end])
        offset = end
    if offset != len(body):
        raise wire.WireDecodeError(
            f"{len(body) - offset} trailing bytes after the last batch record"
        )
    return BatchedAnswers.lazy(records, _load_answer_record)


data.register(
    AnswerMessage,
    0x1001,
    ANSWER_FIELDS,
    sample=_sample_answer,
)
data.register(
    BatchedAnswers,
    0x1002,
    (),
    sample=lambda: BatchedAnswers([_sample_answer(1), _sample_answer(2)]),
    pack_body=_pack_batch,
    unpack_body=_unpack_batch,
)
