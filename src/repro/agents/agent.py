"""The agent programming model.

An agent is a subclass of :class:`Agent` whose *code* (class source) and
*state* (a plain-data dict) travel the network independently: code is
cached per host, state ships with every envelope.  At the destination the
engine reconstructs the instance and calls :meth:`Agent.execute` with an
:class:`~repro.agents.engine.AgentContext` giving access to the host's
shared resources.

State must be plain data (numbers, strings, bytes, lists, dicts, ids):
it is what crosses the wire.  The default :meth:`get_state` /
:meth:`set_state` simply use ``__dict__``, which suffices for agents that
keep their attributes plain; agents with richer attributes override both.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.agents.engine import AgentContext


class Agent:
    """Base class for mobile agents.

    Subclass, implement :meth:`execute`, and dispatch through a
    BestPeer node (or an :class:`~repro.agents.engine.AgentEngine`
    directly).  Keep instance attributes plain-data so the default
    state capture works.
    """

    #: When True, a flood-mode engine forwards this agent's clones
    #: *after* local execution, re-captured from the executed instance's
    #: state — so state mutated during :meth:`execute` (e.g. a top-k
    #: accumulator's tightened threshold) piggybacks onto every next
    #: hop.  The default (False) keeps the paper's order: clones leave
    #: before local execution, so flooding never waits on local work.
    forward_merges_state = False

    def execute(self, context: "AgentContext") -> None:
        """Run at the destination host.  Override in subclasses.

        Use ``context`` to reach the host's StorM store and services, to
        charge simulated CPU time for the work performed, and to send
        results straight back to the initiator (``context.reply``).
        """
        raise NotImplementedError

    def get_state(self) -> dict[str, Any]:
        """Capture travelling state; must return plain data."""
        return dict(self.__dict__)

    def set_state(self, state: dict[str, Any]) -> None:
        """Restore travelling state captured by :meth:`get_state`."""
        self.__dict__.update(state)

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "Agent":
        """Reconstruct an instance from shipped state without __init__."""
        agent = cls.__new__(cls)
        agent.set_state(state)
        return agent
