"""Code shipping: moving agent *classes* between hosts.

The prototype relied on Java serialization plus class loading: "both the
agent and its class have to be present for the agent to resume execution
at the destination engine.  Thus, if the class is not already at the
destination node, the class has to be transmitted also."

Here a class ships as its real Python source (via
:func:`inspect.getsource`), and the destination's
:class:`AgentCodeRegistry` ``exec``-utes it into an isolated namespace on
first arrival.  Later arrivals of the same class ship state only.

The exec namespace provides ``Agent`` (every shipped class subclasses
it); anything else an agent needs must be imported inside its methods so
the source stays self-contained.

Two process-wide caches keep the execute path O(1) after first use —
pure wall-clock optimisations that change nothing observable (per-host
``installs`` counters, charged install costs and wire bytes are
identical with the caches off; ``tests/agents/test_codeship_cache.py``
and ``tests/eval/test_fastpath_determinism.py`` assert exactly that):

* a **source cache** keyed by class identity, so
  :func:`extract_source` pays :func:`inspect.getsource` (a file scan
  plus a re-parse) at most once per class per process;
* a **compile cache** keyed by ``(class_name, sha256(source))``, so
  :meth:`AgentCodeRegistry.install` compiles and ``exec``-utes each
  shipped source once per process; later installs on other registries
  rebind the already-built class object.  Locally *defined* classes
  never enter the compile cache — a shipped source must always produce
  a class distinct from the sender's original.

Set ``REPRO_NO_AGENT_CACHE=1`` to bypass both caches (the determinism
regression tests run every figure that way); the variable is consulted
per call, so parallel-runner worker processes honour it too.

Trust model: agents are arbitrary code run on behalf of remote peers —
exactly what the paper proposes.  This reproduction runs everything in
one process and makes no sandboxing claims; do not feed it hostile
sources.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import textwrap
import weakref

from repro.agents.agent import Agent
from repro.errors import CodeShippingError

#: Environment variable that disables both agent-path caches when set to
#: any non-empty value.  Checked on every call (an ``os.environ`` lookup
#: is two orders of magnitude cheaper than the work the caches avoid).
NO_CACHE_ENV_VAR = "REPRO_NO_AGENT_CACHE"

#: Module-level master switch, AND-ed with the environment variable.
AGENT_CACHE_ENABLED = True

#: class object -> dedented source.  Weak keys: exec'd classes from
#: short-lived registries must not be pinned by the cache.
_source_cache: "weakref.WeakKeyDictionary[type, str]" = weakref.WeakKeyDictionary()

#: (class_name, sha256 hex of source) -> the exec'd class object.
_compile_cache: dict[tuple[str, str], type] = {}

#: Process-wide cache effectiveness counters (see :func:`cache_stats`).
source_cache_hits = 0
source_cache_misses = 0
compile_cache_hits = 0
compile_cache_misses = 0


def agent_cache_enabled() -> bool:
    """True when the source/compile caches are active."""
    return AGENT_CACHE_ENABLED and not os.environ.get(NO_CACHE_ENV_VAR)


def cache_stats() -> dict[str, int]:
    """Process-wide agent-path cache counters (for reports and benches)."""
    return {
        "source_cache_hits": source_cache_hits,
        "source_cache_misses": source_cache_misses,
        "compile_cache_hits": compile_cache_hits,
        "compile_cache_misses": compile_cache_misses,
        "compile_cache_size": len(_compile_cache),
    }


def clear_caches() -> None:
    """Drop both process-wide caches and reset their counters."""
    global source_cache_hits, source_cache_misses
    global compile_cache_hits, compile_cache_misses
    _source_cache.clear()
    _compile_cache.clear()
    source_cache_hits = 0
    source_cache_misses = 0
    compile_cache_hits = 0
    compile_cache_misses = 0


def extract_source(agent_class: type) -> str:
    """Return the dedented source text of an agent class.

    Works for classes defined in modules, scripts, and (via the
    ``linecache`` entries pytest and exec'd registries leave behind)
    classes that themselves arrived by code shipping.
    """
    global source_cache_hits, source_cache_misses
    if not (isinstance(agent_class, type) and issubclass(agent_class, Agent)):
        raise CodeShippingError(
            f"{agent_class!r} is not an Agent subclass",
            class_name=getattr(agent_class, "__name__", None),
        )
    # A class we installed ourselves remembers its shipped source.
    shipped = getattr(agent_class, "__shipped_source__", None)
    if shipped is not None:
        return shipped
    caching = agent_cache_enabled()
    if caching:
        cached = _source_cache.get(agent_class)
        if cached is not None:
            source_cache_hits += 1
            return cached
    source_cache_misses += 1
    try:
        source = inspect.getsource(agent_class)
    except (OSError, TypeError) as exc:
        raise CodeShippingError(
            f"cannot extract source of {agent_class.__name__}: {exc}",
            class_name=agent_class.__name__,
        ) from exc
    source = textwrap.dedent(source)
    if caching:
        _source_cache[agent_class] = source
    return source


def _compile_install(class_name: str, source: str) -> type:
    """Execute shipped source and return the Agent subclass it defines."""
    namespace: dict[str, object] = {"Agent": Agent}
    try:
        exec(compile(source, f"<agent:{class_name}>", "exec"), namespace)
    except SyntaxError as exc:
        raise CodeShippingError(
            f"shipped source for {class_name!r} does not compile: {exc}",
            class_name=class_name,
        ) from exc
    installed = namespace.get(class_name)
    if not (isinstance(installed, type) and issubclass(installed, Agent)):
        raise CodeShippingError(
            f"shipped source does not define Agent subclass {class_name!r}",
            class_name=class_name,
        )
    installed.__shipped_source__ = source  # re-shippable from here
    return installed


class AgentCodeRegistry:
    """Per-host cache of agent classes, keyed by class name."""

    def __init__(self):
        self._classes: dict[str, type] = {}
        self._sources: dict[str, str] = {}
        #: counts installs, for tests and cost accounting
        self.installs = 0

    def has(self, class_name: str) -> bool:
        """True when the class is already present at this host."""
        return class_name in self._classes

    def get(self, class_name: str) -> type:
        """Fetch an installed class."""
        try:
            return self._classes[class_name]
        except KeyError:
            raise CodeShippingError(
                f"class {class_name!r} is not installed", class_name=class_name
            ) from None

    def source_of(self, class_name: str) -> str:
        """The source an installed class was installed from."""
        try:
            return self._sources[class_name]
        except KeyError:
            raise CodeShippingError(
                f"class {class_name!r} is not installed", class_name=class_name
            ) from None

    def register_local(self, agent_class: type) -> str:
        """Register a locally-defined class (the originating host's path).

        Returns the class name used on the wire.
        """
        source = extract_source(agent_class)
        name = agent_class.__name__
        self._classes[name] = agent_class
        self._sources[name] = source
        return name

    def install(self, class_name: str, source: str) -> type:
        """Install a shipped class by executing its source (idempotent).

        With the process-wide compile cache on, identical source for the
        same class name compiles once per process; this registry only
        rebinds the cached class object.  The ``installs`` counter and
        the simulated install cost charged by the engine are identical
        either way — only the real compile/exec wall-clock is saved.
        """
        global compile_cache_hits, compile_cache_misses
        if class_name in self._classes:
            return self._classes[class_name]
        installed: type | None = None
        key: tuple[str, str] | None = None
        if agent_cache_enabled():
            key = (class_name, hashlib.sha256(source.encode()).hexdigest())
            installed = _compile_cache.get(key)
        if installed is not None:
            compile_cache_hits += 1
        else:
            compile_cache_misses += 1
            installed = _compile_install(class_name, source)
            if key is not None:
                _compile_cache[key] = installed
        self._classes[class_name] = installed
        self._sources[class_name] = source
        self.installs += 1
        return installed

    @property
    def class_names(self) -> set[str]:
        """Names of all installed classes."""
        return set(self._classes)
