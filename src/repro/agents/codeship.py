"""Code shipping: moving agent *classes* between hosts.

The prototype relied on Java serialization plus class loading: "both the
agent and its class have to be present for the agent to resume execution
at the destination engine.  Thus, if the class is not already at the
destination node, the class has to be transmitted also."

Here a class ships as its real Python source (via
:func:`inspect.getsource`), and the destination's
:class:`AgentCodeRegistry` ``exec``-utes it into an isolated namespace on
first arrival.  Later arrivals of the same class ship state only.

The exec namespace provides ``Agent`` (every shipped class subclasses
it); anything else an agent needs must be imported inside its methods so
the source stays self-contained.

Trust model: agents are arbitrary code run on behalf of remote peers —
exactly what the paper proposes.  This reproduction runs everything in
one process and makes no sandboxing claims; do not feed it hostile
sources.
"""

from __future__ import annotations

import inspect
import textwrap

from repro.agents.agent import Agent
from repro.errors import CodeShippingError


def extract_source(agent_class: type) -> str:
    """Return the dedented source text of an agent class.

    Works for classes defined in modules, scripts, and (via the
    ``linecache`` entries pytest and exec'd registries leave behind)
    classes that themselves arrived by code shipping.
    """
    if not (isinstance(agent_class, type) and issubclass(agent_class, Agent)):
        raise CodeShippingError(f"{agent_class!r} is not an Agent subclass")
    # A class we installed ourselves remembers its shipped source.
    shipped = getattr(agent_class, "__shipped_source__", None)
    if shipped is not None:
        return shipped
    try:
        source = inspect.getsource(agent_class)
    except (OSError, TypeError) as exc:
        raise CodeShippingError(
            f"cannot extract source of {agent_class.__name__}: {exc}"
        ) from exc
    return textwrap.dedent(source)


class AgentCodeRegistry:
    """Per-host cache of agent classes, keyed by class name."""

    def __init__(self):
        self._classes: dict[str, type] = {}
        self._sources: dict[str, str] = {}
        #: counts installs, for tests and cost accounting
        self.installs = 0

    def has(self, class_name: str) -> bool:
        """True when the class is already present at this host."""
        return class_name in self._classes

    def get(self, class_name: str) -> type:
        """Fetch an installed class."""
        try:
            return self._classes[class_name]
        except KeyError:
            raise CodeShippingError(f"class {class_name!r} is not installed") from None

    def source_of(self, class_name: str) -> str:
        """The source an installed class was installed from."""
        try:
            return self._sources[class_name]
        except KeyError:
            raise CodeShippingError(f"class {class_name!r} is not installed") from None

    def register_local(self, agent_class: type) -> str:
        """Register a locally-defined class (the originating host's path).

        Returns the class name used on the wire.
        """
        source = extract_source(agent_class)
        name = agent_class.__name__
        self._classes[name] = agent_class
        self._sources[name] = source
        return name

    def install(self, class_name: str, source: str) -> type:
        """Install a shipped class by executing its source (idempotent)."""
        if class_name in self._classes:
            return self._classes[class_name]
        namespace: dict[str, object] = {"Agent": Agent}
        try:
            exec(compile(source, f"<agent:{class_name}>", "exec"), namespace)
        except SyntaxError as exc:
            raise CodeShippingError(
                f"shipped source for {class_name!r} does not compile: {exc}"
            ) from exc
        installed = namespace.get(class_name)
        if not (isinstance(installed, type) and issubclass(installed, Agent)):
            raise CodeShippingError(
                f"shipped source does not define Agent subclass {class_name!r}"
            )
        installed.__shipped_source__ = source  # re-shippable from here
        self._classes[class_name] = installed
        self._sources[class_name] = source
        self.installs += 1
        return installed

    @property
    def class_names(self) -> set[str]:
        """Names of all installed classes."""
        return set(self._classes)
