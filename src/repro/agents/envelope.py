"""The wire form of a travelling agent.

"The lifetime of an agent is determined by Time-to-live (TTL) and Hops
variables. ... Once received an incoming agent, if the agent is not
expired (if TTL > 0), remote host will decrease the TTL values of an
agent before sending it to any other host that it is directly connected
to.  Hops variable will be increased at the same time too.  The redundant
use of TTL and Hops together is to enable hosts to drop any incoming
agent that already has a copy on the site."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.ids import BPID, AgentId, QueryId
from repro.net.address import IPAddress

#: Default agent lifetime, matching Gnutella's customary TTL.
DEFAULT_TTL = 7

#: Flooding mode: clone-and-forward to every direct peer.
MODE_FLOOD = "flood"
#: Itinerary mode: visit a pre-defined path of hosts, one by one.
MODE_ITINERARY = "itinerary"


@dataclass(frozen=True, slots=True)
class AgentEnvelope:
    """Everything that crosses the wire for one agent hop."""

    agent_id: AgentId
    class_name: str
    #: class source; None when the sender believes the receiver has it
    source: str | None
    #: plain-data instance state
    state: dict[str, Any]
    ttl: int
    hops: int
    initiator: BPID
    initiator_address: IPAddress
    query_id: QueryId | None = None
    mode: str = MODE_FLOOD
    #: itinerary mode only: remaining stops after the current one
    path: tuple[IPAddress, ...] = field(default=())

    @property
    def expired(self) -> bool:
        """An expired agent is executed locally but travels no further."""
        return self.ttl <= 0

    def hop(self, source: str | None) -> "AgentEnvelope":
        """The envelope for the next hop: TTL down, Hops up."""
        return replace(self, ttl=self.ttl - 1, hops=self.hops + 1, source=source)

    def with_source(self, source: str | None) -> "AgentEnvelope":
        """Same hop, different source inclusion (per-destination choice).

        Returns ``self`` when nothing changes, so a flood fan-out sends
        one envelope *object* to every peer and the network's wire
        encoder serializes it exactly once.
        """
        if source == self.source:
            return self
        return replace(self, source=source)

    def with_state(self, state: dict[str, Any]) -> "AgentEnvelope":
        """Same envelope, refreshed state (itinerary agents mutate state)."""
        return replace(self, state=state)

    def advance_path(self) -> "AgentEnvelope":
        """Pop the next itinerary stop."""
        return replace(self, path=self.path[1:])


# -- compact wire registration (type id block 0x03xx) --------------------------
#
# Only state-only hops (``source is None``) take the compact path: a
# shipped class source is a large, highly compressible text blob that
# genuinely benefits from the gzip'd pickle fallback.

from repro.net import codec as wire

wire.register(
    AgentEnvelope,
    0x0301,
    (
        ("agent_id", wire.AGENT_ID_CODEC),
        ("class_name", wire.STR),
        ("source", wire.opt(wire.STR)),
        ("state", wire.PICKLE_BLOB),
        ("ttl", wire.I32),
        ("hops", wire.U32),
        ("initiator", wire.BPID_CODEC),
        ("initiator_address", wire.IPADDR_CODEC),
        ("query_id", wire.opt(wire.QUERY_ID_CODEC)),
        ("mode", wire.STR),
        ("path", wire.seq(wire.IPADDR_CODEC)),
    ),
    sample=lambda: AgentEnvelope(
        agent_id=AgentId(BPID("10.0.0.1", 7), 3),
        class_name="SearchAgent",
        source=None,
        state={"keyword": "music", "matches": 2},
        ttl=5,
        hops=2,
        initiator=BPID("10.0.0.1", 7),
        initiator_address=IPAddress("10.0.4.2"),
        query_id=QueryId(BPID("10.0.0.1", 7), 1),
        mode=MODE_FLOOD,
        path=(),
    ),
    compactable=lambda envelope: envelope.source is None,
)

# -- data-plane wire registration (type id block 0x10xx) -----------------------
#
# Sourced hops (the expensive ones — they carry the whole class text)
# stream on the data codec with the source zlib-compressed *inside* the
# frame, cached by codeship's sha256 digest so each distinct class is
# compressed once per process, not once per envelope.

from repro.net import datacodec as data

data.register(
    AgentEnvelope,
    0x1006,
    (
        ("agent_id", wire.AGENT_ID_CODEC),
        ("class_name", wire.STR),
        ("source", data.COMPRESSED_SOURCE),
        ("state", wire.PICKLE_BLOB),
        ("ttl", wire.I32),
        ("hops", wire.U32),
        ("initiator", wire.BPID_CODEC),
        # sim IPAddress or live (host, port) — envelopes cross both runtimes
        ("initiator_address", data.ADDRESS_CODEC),
        ("query_id", wire.opt(wire.QUERY_ID_CODEC)),
        ("mode", wire.STR),
        ("path", wire.seq(data.ADDRESS_CODEC)),
    ),
    sample=lambda: AgentEnvelope(
        agent_id=AgentId(BPID("10.0.0.1", 7), 3),
        class_name="DemoAgent",
        source="class DemoAgent:\n    def run(self, node):\n        return []\n",
        state={"keyword": "music"},
        ttl=5,
        hops=2,
        initiator=BPID("10.0.0.1", 7),
        initiator_address=IPAddress("10.0.4.2"),
        query_id=QueryId(BPID("10.0.0.1", 7), 1),
        mode=MODE_FLOOD,
        path=(),
    ),
    streamable=lambda envelope: envelope.source is not None,
)
