"""Mobile agent framework.

BestPeer's defining integration: queries are *agents* — code plus state —
shipped to peers and executed where the data lives.  This package
implements:

``agent``       the :class:`Agent` base class (code + plain-data state)
``codeship``    source extraction and per-host class caches (the Python
                analogue of Java serialization + class loading)
``envelope``    the wire form of a travelling agent (TTL, Hops, ...)
``messages``    answer messages sent straight back to the initiator
``costs``       CPU cost knobs for installing and running agents
``engine``      the per-host execution engine: dedup, clone-and-forward
                flooding, itinerary travel, class-miss requests
``profile``     real wall-clock profiling of the execute path
``storm_agent`` the paper's StorM keyword-search agent
"""

from repro.agents.agent import Agent
from repro.agents.codeship import AgentCodeRegistry, extract_source
from repro.agents.costs import AgentCosts
from repro.agents.engine import AgentContext, AgentEngine
from repro.agents.envelope import AgentEnvelope
from repro.agents.messages import AnswerItem, AnswerMessage
from repro.agents.profile import AgentPathProfiler
from repro.agents.storm_agent import StorMSearchAgent

__all__ = [
    "Agent",
    "AgentCodeRegistry",
    "extract_source",
    "AgentCosts",
    "AgentEnvelope",
    "AgentEngine",
    "AgentContext",
    "AgentPathProfiler",
    "AnswerItem",
    "AnswerMessage",
    "StorMSearchAgent",
]
