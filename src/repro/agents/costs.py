"""CPU cost knobs for agent installation and execution.

Calibrated for *shape* rather than absolute milliseconds (the paper ran
on Pentium-II PCs under a JVM): code shipping must be visibly more
expensive than plain query shipping — "not only do they need to transmit
the code/agent to the peers, they must also incur the overhead of
reconstructing the agent at the peer site" — while the per-object match
and page-I/O terms make StorM's buffer behaviour show up in agent
service times.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class AgentCosts:
    """Seconds charged for the pieces of agent handling."""

    #: executing shipped source on first arrival of a class at a host
    class_install_time: float = 0.012
    #: reconstructing an agent instance from shipped state
    state_install_time: float = 0.002
    #: fixed overhead of starting the agent's thread of execution
    execute_overhead: float = 0.001
    #: one page read that missed the buffer pool
    page_io_time: float = 0.003
    #: comparing one stored object against the query
    object_match_time: float = 0.00003

    def __post_init__(self) -> None:
        for name in (
            "class_install_time",
            "state_install_time",
            "execute_overhead",
            "page_io_time",
            "object_match_time",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
