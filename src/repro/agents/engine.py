"""The per-host agent execution engine.

One engine runs on every host that participates in agent traffic.  Its
responsibilities, straight from Section 3.1 of the paper:

* **Dedup** — drop any incoming (flood-mode) agent whose id has already
  been seen at this host.
* **Clone and forward** — a live agent (TTL > 0) is re-shipped to every
  direct peer (except the one it arrived from) with TTL decremented and
  Hops incremented, *before* local execution, so flooding never waits on
  local CPU work.
* **Class management** — a class ships as source on the first envelope
  to a destination; a receiver that gets state-only for an unknown class
  parks the envelope and asks the sender for the source (one round
  trip), mirroring on-demand class loading in Java agent systems.
* **Execution** — the agent really runs (actual Python against the
  host's actual StorM store), but all its *outputs* (answer messages,
  next itinerary hop) are released only after the simulated CPU service
  time elapses, so simulated time reflects install + search costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.agents.agent import Agent
from repro.agents.codeship import AgentCodeRegistry
from repro.agents.costs import AgentCosts
from repro.agents.envelope import (
    DEFAULT_TTL,
    MODE_FLOOD,
    MODE_ITINERARY,
    AgentEnvelope,
)
from repro.agents.messages import AnswerItem, AnswerMessage, BatchedAnswers
from repro.agents.profile import AgentPathProfiler
from repro.errors import AgentError, CodeShippingError
from repro.ids import BPID, AgentId, QueryId, SerialCounter
from repro.net.address import IPAddress
from repro.net.message import Packet
from repro.net.network import Host
from repro.util.tracing import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storm.store import SearchResult, StorM

PROTO_AGENT = "bestpeer.agent"
PROTO_CLASS_REQUEST = "bestpeer.agent.class-request"
PROTO_CLASS_RESPONSE = "bestpeer.agent.class-response"
PROTO_ANSWER = "bestpeer.answer"
PROTO_AGENT_HOME = "bestpeer.agent.home"


def _coalesce_answers(
    outbox: Sequence[tuple[IPAddress, str, Any]],
) -> list[tuple[IPAddress, str, Any]]:
    """Coalesce consecutive same-(dst, query) answer runs into batches.

    The wire analogue of :meth:`AgentEngine._ship_many`'s envelope
    sharing: an agent that replies several times to one initiator ships
    one :class:`BatchedAnswers` frame instead of N answer frames.  The
    decision reads only the outbox contents — never the selected codec —
    so both ``REPRO_WIRE_DATA`` modes ship identical message sequences.
    Non-answer sends keep their positions; ordering is preserved.
    """
    out: list[tuple[IPAddress, str, Any]] = []
    run: list[tuple[IPAddress, AnswerMessage]] = []

    def flush() -> None:
        if not run:
            return
        dst = run[0][0]
        if len(run) == 1:
            out.append((dst, PROTO_ANSWER, run[0][1]))
        else:
            out.append((dst, PROTO_ANSWER, BatchedAnswers([a for _, a in run])))
        run.clear()

    for dst, protocol, payload in outbox:
        if protocol == PROTO_ANSWER and isinstance(payload, AnswerMessage):
            if run and (
                run[0][0] != dst or run[0][1].query_id != payload.query_id
            ):
                flush()
            run.append((dst, payload))
        else:
            flush()
            out.append((dst, protocol, payload))
    flush()
    return out


class AgentContext:
    """What an executing agent sees of its host.

    Exposes the host's shared services (``storm`` and anything else the
    embedding node registered), cost charging, and *deferred* messaging:
    sends requested during :meth:`Agent.execute` leave the host only
    after the agent's simulated service time has been paid.
    """

    def __init__(self, engine: "AgentEngine", envelope: AgentEnvelope):
        self._engine = engine
        self._envelope = envelope
        self.charged_time = 0.0
        self._outbox: list[tuple[IPAddress, str, Any]] = []

    # -- environment -----------------------------------------------------------

    @property
    def services(self) -> dict[str, Any]:
        """Host services registered by the embedding node."""
        return self._engine.services

    @property
    def storm(self) -> "StorM":
        """The host's StorM store (raises if the host shares none)."""
        try:
            return self._engine.services["storm"]
        except KeyError:
            raise AgentError("host exposes no 'storm' service") from None

    @property
    def host_id(self) -> BPID:
        """BPID of the host the agent is executing on."""
        return self._engine.local_bpid

    @property
    def initiator(self) -> BPID:
        return self._envelope.initiator

    @property
    def initiator_address(self) -> IPAddress:
        """Where the dispatching node listens for direct replies."""
        return self._envelope.initiator_address

    @property
    def host_address(self) -> IPAddress:
        """This (executing) host's current address."""
        assert self._engine.host.address is not None
        return self._engine.host.address

    @property
    def query_id(self) -> QueryId | None:
        return self._envelope.query_id

    @property
    def hops(self) -> int:
        """Overlay distance from the initiator to this host."""
        return self._envelope.hops

    @property
    def now(self) -> float:
        return self._engine.host.sim.now

    # -- cost charging -----------------------------------------------------------

    def charge(self, seconds: float) -> None:
        """Add explicit simulated CPU time to this execution."""
        if seconds < 0:
            raise AgentError(f"cannot charge negative time {seconds}")
        self.charged_time += seconds

    def charge_search(self, result: "SearchResult") -> None:
        """Charge a StorM search: per-object matching plus buffer misses."""
        costs = self._engine.costs
        self.charge(
            result.objects_examined * costs.object_match_time
            + result.io.physical_reads * costs.page_io_time
        )

    # -- deferred output -----------------------------------------------------------

    def send(self, dst: IPAddress, protocol: str, payload: Any) -> None:
        """Queue a message; it leaves when the service time is paid."""
        self._outbox.append((dst, protocol, payload))

    def reply(self, items: Sequence[AnswerItem]) -> None:
        """Send an :class:`AnswerMessage` straight back to the initiator."""
        assert self._engine.host.address is not None
        message = AnswerMessage(
            query_id=self._envelope.query_id,
            responder=self._engine.local_bpid,
            responder_address=self._engine.host.address,
            hops=self._envelope.hops,
            items=tuple(items),
        )
        self.send(self._envelope.initiator_address, PROTO_ANSWER, message)


class AgentEngine:
    """Agent runtime bound to one :class:`~repro.net.network.Host`."""

    def __init__(
        self,
        host: Host,
        local_bpid: BPID,
        services: dict[str, Any] | None = None,
        costs: AgentCosts | None = None,
        registry: AgentCodeRegistry | None = None,
        get_peers: Callable[[], Sequence[IPAddress]] | None = None,
        tracer: Tracer | None = None,
    ):
        self.host = host
        self.local_bpid = local_bpid
        self.services = services if services is not None else {}
        self.costs = costs if costs is not None else AgentCosts()
        self.registry = registry if registry is not None else AgentCodeRegistry()
        self.get_peers = get_peers if get_peers is not None else (lambda: [])
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: real (not simulated) time spent on this node's agent path
        self.profiler = AgentPathProfiler(node=host.name, tracer=self.tracer)
        #: called with (agent_id, state) when an itinerary agent comes home
        self.on_agent_home: Callable[[AgentEnvelope, dict], None] | None = None
        self._serials = SerialCounter()
        self._seen: set[AgentId] = set()
        #: destinations believed to hold each class: (address, class_name)
        self._shipped: set[tuple[IPAddress, str]] = set()
        #: envelopes waiting for a class to arrive, keyed by class name
        self._parked: dict[str, list[AgentEnvelope]] = {}
        #: counters
        self.agents_executed = 0
        self.agents_deduped = 0
        host.bind(PROTO_AGENT, self._on_agent)
        host.bind(PROTO_CLASS_REQUEST, self._on_class_request)
        host.bind(PROTO_CLASS_RESPONSE, self._on_class_response)
        host.bind(PROTO_AGENT_HOME, self._on_agent_home)

    # -- dispatching (the initiating side) ----------------------------------------

    def dispatch(
        self,
        agent: Agent,
        query_id: QueryId | None = None,
        ttl: int = DEFAULT_TTL,
        mode: str = MODE_FLOOD,
        path: Sequence[IPAddress] = (),
        targets: Sequence[IPAddress] | None = None,
    ) -> AgentId:
        """Launch ``agent`` into the network from this host.

        Flood mode clones the agent to every current direct peer (or to
        the explicit ``targets`` subset when given — used by targeted,
        single-hop dispatches); itinerary mode sends it along ``path``
        and it returns home after the last stop.  Returns the agent id
        (all clones share it).
        """
        if ttl < 1:
            raise AgentError(f"dispatch needs ttl >= 1, got {ttl}")
        if mode not in (MODE_FLOOD, MODE_ITINERARY):
            raise AgentError(f"unknown agent mode {mode!r}")
        if mode == MODE_ITINERARY and not path:
            raise AgentError("itinerary mode needs a non-empty path")
        if self.host.address is None:
            raise AgentError("cannot dispatch from an offline host")
        try:
            with self.profiler.timed("extract"):
                class_name = self.registry.register_local(type(agent))
        except CodeShippingError as exc:
            # Keep the originating class visible: a parked receiver's
            # later class-request can only name the class, so the error
            # must carry the name rather than lose it here.
            if exc.class_name is None:
                exc.class_name = type(agent).__name__
            self.tracer.record(
                self.host.sim.now,
                "agent",
                "ship-error",
                klass=type(agent).__name__,
                error=str(exc),
            )
            raise
        agent_id = AgentId(self.local_bpid, self._serials.next())
        self._seen.add(agent_id)  # a clone routed back here is a duplicate
        envelope = AgentEnvelope(
            agent_id=agent_id,
            class_name=class_name,
            source=None,
            state=agent.get_state(),
            ttl=ttl,
            hops=0,
            initiator=self.local_bpid,
            initiator_address=self.host.address,
            query_id=query_id,
            mode=mode,
            path=tuple(path[1:]) if mode == MODE_ITINERARY else (),
        )
        self.tracer.record(
            self.host.sim.now,
            "agent",
            "dispatch",
            agent=str(agent_id),
            klass=class_name,
            mode=mode,
        )
        first_hop = envelope.hop(None)
        if mode == MODE_FLOOD:
            recipients = targets if targets is not None else self.get_peers()
            with self.profiler.timed("clone"):
                self._ship_many(first_hop, recipients)
        else:
            self._ship(first_hop, path[0])
        return agent_id

    def _ship(self, envelope: AgentEnvelope, dst: IPAddress) -> None:
        """Send one envelope, including class source only on first contact."""
        key = (dst, envelope.class_name)
        if key in self._shipped:
            outgoing = envelope.with_source(None)
        else:
            outgoing = envelope.with_source(
                self.registry.source_of(envelope.class_name)
            )
            self._shipped.add(key)
        self.host.send(dst, PROTO_AGENT, outgoing)

    def _ship_many(
        self, envelope: AgentEnvelope, recipients: Sequence[IPAddress]
    ) -> None:
        """Fan one envelope out, building each wire form at most once.

        All already-contacted destinations share the stripped
        (source-less) envelope *object* and all first contacts share the
        source-carrying one, so the network's wire encoder serializes
        each form once per fan-out instead of once per recipient.  The
        per-destination source decision and send order are exactly what
        per-recipient :meth:`_ship` calls would produce.
        """
        stripped = envelope.with_source(None)
        sourced: AgentEnvelope | None = None
        for dst in recipients:
            key = (dst, envelope.class_name)
            if key in self._shipped:
                self.host.send(dst, PROTO_AGENT, stripped)
            else:
                if sourced is None:
                    sourced = envelope.with_source(
                        self.registry.source_of(envelope.class_name)
                    )
                self._shipped.add(key)
                self.host.send(dst, PROTO_AGENT, sourced)

    # -- receiving ------------------------------------------------------------------

    def _on_agent(self, packet: Packet) -> None:
        envelope: AgentEnvelope = packet.payload
        if envelope.mode == MODE_FLOOD:
            if envelope.agent_id in self._seen:
                self.agents_deduped += 1
                self.tracer.record(
                    self.host.sim.now, "agent", "dedup", agent=str(envelope.agent_id)
                )
                return
            self._seen.add(envelope.agent_id)
        if envelope.source is not None:
            newly = not self.registry.has(envelope.class_name)
            with self.profiler.timed("install"):
                self.registry.install(envelope.class_name, envelope.source)
            self._run(envelope, packet.src, install_charged=newly)
        elif self.registry.has(envelope.class_name):
            self._run(envelope, packet.src, install_charged=False)
        else:
            # State-only envelope for an unknown class: ask the sender.
            self._parked.setdefault(envelope.class_name, []).append(envelope)
            self.tracer.record(
                self.host.sim.now,
                "agent",
                "class-miss",
                klass=envelope.class_name,
                asking=str(packet.src),
            )
            self.host.send(packet.src, PROTO_CLASS_REQUEST, envelope.class_name)

    def _on_class_request(self, packet: Packet) -> None:
        class_name: str = packet.payload
        if not self.registry.has(class_name):
            # We relayed a state-only envelope for a class we never had
            # (e.g. our own cache was wiped): nothing to serve.  The
            # requester's park entry expires with its query.
            self.tracer.record(
                self.host.sim.now, "agent", "class-unavailable", klass=class_name
            )
            return
        source = self.registry.source_of(class_name)
        self.host.send(packet.src, PROTO_CLASS_RESPONSE, (class_name, source))

    def _on_class_response(self, packet: Packet) -> None:
        class_name, source = packet.payload
        newly = not self.registry.has(class_name)
        with self.profiler.timed("install"):
            self.registry.install(class_name, source)
        parked = self._parked.pop(class_name, [])
        for index, envelope in enumerate(parked):
            # The install cost is paid once, by the first parked envelope.
            self._run(envelope, packet.src, install_charged=newly and index == 0)

    # -- execution --------------------------------------------------------------------

    def _run(
        self, envelope: AgentEnvelope, arrived_from: IPAddress, install_charged: bool
    ) -> None:
        agent_class = self.registry.get(envelope.class_name)
        forwards = envelope.mode == MODE_FLOOD and not envelope.expired
        # Agent classes that merge in-transit state (top-k accumulators)
        # forward *after* execution, from the refreshed state; everyone
        # else keeps the paper's order — clones leave before local
        # execution, so flooding never waits for the CPU-heavy search.
        merge_forward = forwards and getattr(
            agent_class, "forward_merges_state", False
        )
        if forwards and not merge_forward:
            with self.profiler.timed("clone"):
                next_hop = envelope.hop(None)
                self._ship_many(
                    next_hop,
                    [
                        peer
                        for peer in self.get_peers()
                        if peer != arrived_from
                        and peer != envelope.initiator_address
                    ],
                )
        context = AgentContext(self, envelope)
        with self.profiler.timed("execute"):
            agent = agent_class.from_state(envelope.state)
            agent.execute(context)
        if merge_forward:
            # Execution is real Python (no simulated time passes), so
            # the merged-state clones still leave at the arrival instant
            # — the flood's timing is unchanged, only its state is.
            with self.profiler.timed("clone"):
                next_hop = envelope.with_state(agent.get_state()).hop(None)
                self._ship_many(
                    next_hop,
                    [
                        peer
                        for peer in self.get_peers()
                        if peer != arrived_from
                        and peer != envelope.initiator_address
                    ],
                )
        self.agents_executed += 1
        service_time = (
            self.costs.execute_overhead
            + self.costs.state_install_time
            + (self.costs.class_install_time if install_charged else 0.0)
            + context.charged_time
        )
        self.tracer.record(
            self.host.sim.now,
            "agent",
            "execute",
            agent=str(envelope.agent_id),
            hops=envelope.hops,
            service=service_time,
        )
        self.host.cpu.submit(
            service_time, self._release_outputs, envelope, agent, context
        )

    def _release_outputs(
        self, envelope: AgentEnvelope, agent: Agent, context: AgentContext
    ) -> None:
        if not self.host.online:
            return  # the host went down mid-execution; outputs are lost
        for dst, protocol, payload in _coalesce_answers(context._outbox):
            self.host.send(dst, protocol, payload)
        if envelope.mode == MODE_ITINERARY:
            self._continue_itinerary(envelope, agent)

    def _continue_itinerary(self, envelope: AgentEnvelope, agent: Agent) -> None:
        travelled = envelope.with_state(agent.get_state())
        if travelled.path and not travelled.expired:
            next_stop = travelled.path[0]
            self._ship(travelled.advance_path().hop(None), next_stop)
        else:
            self.host.send(
                travelled.initiator_address,
                PROTO_AGENT_HOME,
                (travelled.agent_id, travelled.class_name, travelled.state),
            )

    def _on_agent_home(self, packet: Packet) -> None:
        agent_id, class_name, state = packet.payload
        self.tracer.record(
            self.host.sim.now, "agent", "home", agent=str(agent_id), klass=class_name
        )
        if self.on_agent_home is not None:
            self.on_agent_home(agent_id, state)

    # -- local bookkeeping ---------------------------------------------------------------

    def mark_seen(self, agent_id: AgentId) -> None:
        """Pre-mark an agent id as seen (e.g. the initiator's own agent)."""
        self._seen.add(agent_id)

    def has_seen(self, agent_id: AgentId) -> bool:
        """True when a flood agent with this id already visited this host."""
        return agent_id in self._seen
