"""Synthetic workloads matching the paper's experimental setup."""

from repro.workloads.corpus import KeywordCorpus, ObjectSpec, generate_objects
from repro.workloads.placement import AnswerPlacement
from repro.workloads.queries import QueryWorkload
from repro.workloads.replication import ReplicationSpec

__all__ = [
    "KeywordCorpus",
    "ObjectSpec",
    "generate_objects",
    "AnswerPlacement",
    "QueryWorkload",
    "ReplicationSpec",
]
