"""Store provisioning for experiments: bulk load once, clone thereafter.

Every figure sweep loads the same per-node corpus (plus optional placed
answers) into a fresh StorM store at every sweep point.
:func:`provision_store` funnels all of that through two fast paths:

* the objects are inserted with :meth:`StorM.put_many` (bulk load), and
* the populated store is frozen into a
  :class:`~repro.storm.template.StoreTemplate` keyed by a content digest
  of the exact object sequence, so the next sweep point needing the
  same (corpus, node, size) combination gets a copy-on-write clone
  instead of re-inserting a thousand objects.

Both paths are observationally identical to a fresh ``put`` loop —
record ids, postings, search results, and per-search buffer deltas all
match bit-for-bit — and both honour their environment kill switches
(``REPRO_NO_BULK_LOAD``, ``REPRO_NO_STORE_TEMPLATE``).
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Sequence

from repro.storm.store import StorM
from repro.storm.template import (
    StoreTemplate,
    cached_template,
    register_template,
    templates_disabled,
)
from repro.workloads.corpus import KeywordCorpus, generate_objects
from repro.workloads.placement import AnswerPlacement

_U32 = struct.Struct("<I")

#: ``(keywords, payload)`` pairs as :meth:`StorM.put_many` accepts them.
Items = list[tuple[tuple[str, ...], bytes]]


def experiment_items(
    node_index: int,
    *,
    count: int,
    size: int,
    corpus: KeywordCorpus,
    seed: int,
    placement: AnswerPlacement | None = None,
) -> Items:
    """One node's full object load: background corpus + placed answers."""
    items: Items = [
        (spec.keywords, spec.payload)
        for spec in generate_objects(
            node_index, count=count, size=size, corpus=corpus, seed=seed
        )
    ]
    if placement is not None:
        items.extend(
            ((placement.keyword,), payload)
            for payload in placement.objects_for(node_index, size=size)
        )
    return items


def content_digest(items: Sequence[tuple[Sequence[str], bytes]]) -> str:
    """A collision-resistant key for an exact object sequence.

    Every field is length-prefixed, so no two distinct sequences share
    an encoding; templates cached under this key can only ever be
    cloned for a byte-identical load.
    """
    hasher = hashlib.sha256()
    for keywords, payload in items:
        for keyword in keywords:
            raw = keyword.encode("utf-8")
            hasher.update(_U32.pack(len(raw)))
            hasher.update(raw)
        hasher.update(b"\xff")
        hasher.update(_U32.pack(len(payload)))
        hasher.update(payload)
    return hasher.hexdigest()


def store_for_items(items: Items) -> StorM:
    """A store holding exactly ``items``, via the template registry.

    With templating disabled (``REPRO_NO_STORE_TEMPLATE=1``) every call
    populates a fresh store; otherwise the first call per distinct item
    sequence builds and registers a template and later calls clone it.
    """
    if templates_disabled():
        store = StorM()
        store.put_many(items)
        return store
    key = content_digest(items)
    template = cached_template(key)
    if template is None:
        prototype = StorM()
        prototype.put_many(items)
        template = StoreTemplate.from_store(prototype)
        prototype.close()
        register_template(key, template)
    return template.instantiate()


def provision_store(
    node_index: int,
    *,
    count: int,
    size: int,
    corpus: KeywordCorpus,
    seed: int,
    placement: AnswerPlacement | None = None,
    warm: bool = True,
) -> StorM:
    """Build one experiment node's store, ready to attach to the node.

    ``warm=True`` reproduces the figures' warm-up scan (touch every
    page once) so cold-cache I/O does not drown protocol effects.
    """
    items = experiment_items(
        node_index,
        count=count,
        size=size,
        corpus=corpus,
        seed=seed,
        placement=placement,
    )
    store = store_for_items(items)
    if warm:
        store.search_scan(corpus.keyword(0))
    return store
