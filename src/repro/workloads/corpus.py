"""Object corpus generation.

The paper's setup: "each node stores 1000 objects in StorM to be shared
... we have set all objects to be of the same size - 1K bytes.
Moreover, there is no replication, i.e., there is only one copy of an
object in the BestPeer network."

:func:`generate_objects` produces per-node object specs obeying both
properties: fixed size and globally unique payloads, with keyword tags
drawn from a shared :class:`KeywordCorpus`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.util.randomness import derive_rng


@dataclass(frozen=True, slots=True)
class ObjectSpec:
    """One object to load into a node's StorM store."""

    keywords: tuple[str, ...]
    payload: bytes


class KeywordCorpus:
    """A fixed vocabulary of synthetic keywords.

    ``keyword(i)`` is deterministic, so experiments can name "the
    keyword held by every node" (topology experiments) or "the keyword
    held by exactly three nodes" (the Gnutella comparison) without
    communicating strings around.
    """

    def __init__(self, size: int = 100):
        if size < 1:
            raise WorkloadError(f"corpus size must be >= 1, got {size}")
        self.size = size

    def keyword(self, index: int) -> str:
        """The ``index``-th keyword (wraps modulo the corpus size)."""
        return f"kw{index % self.size:04d}"

    def keywords(self) -> list[str]:
        return [self.keyword(i) for i in range(self.size)]


def generate_objects(
    node_index: int,
    count: int = 1000,
    size: int = 1024,
    corpus: KeywordCorpus | None = None,
    keywords_per_object: int = 1,
    seed: int = 0,
) -> list[ObjectSpec]:
    """Generate one node's object load.

    Payloads embed the node index and object number, so every object in
    the network is unique (the paper's no-replication property), padded
    to exactly ``size`` bytes.  Keywords cycle through the corpus so
    every keyword appears ``count / corpus.size`` times per node.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    if size < 1:
        raise WorkloadError(f"object size must be >= 1, got {size}")
    corpus = corpus if corpus is not None else KeywordCorpus()
    rng = derive_rng(seed, "objects", node_index)
    specs = []
    for i in range(count):
        primary = corpus.keyword(i)
        keywords = [primary]
        for extra in range(1, keywords_per_object):
            keywords.append(corpus.keyword(rng.randrange(corpus.size)))
        header = f"object:{node_index}:{i}:".encode("ascii")
        filler_len = size - len(header)
        if filler_len < 0:
            raise WorkloadError(f"object size {size} too small for the header")
        payload = header + rng.randbytes(filler_len)
        specs.append(ObjectSpec(tuple(dict.fromkeys(keywords)), payload))
    return specs
