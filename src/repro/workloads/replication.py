"""Replication-aware data placement.

The paper's evaluation deliberately ran with "no replication, i.e.,
there is only one copy of an object in the BestPeer network", and its
future work asks "how placement of data and replication can be exploited
to improve performance".  This module supplies the workload for that
study: a set of distinct objects, each stored at ``factor`` randomly
chosen nodes, so experiments can sweep the replication factor and watch
the time-to-first-answer fall as replicas land nearer the querier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.util.randomness import derive_rng


@dataclass(frozen=True)
class ReplicationSpec:
    """``distinct_objects`` objects, each replicated at ``factor`` nodes."""

    node_count: int
    #: copies of every object ("1" reproduces the paper's no-replication)
    factor: int
    distinct_objects: int = 10
    object_size: int = 1024
    keyword: str = "replicated"
    #: nodes that never hold copies (the querying base by default)
    exclude: frozenset[int] = frozenset({0})
    seed: int = 0
    #: node index -> payloads stored there (derived)
    placements: dict[int, list[bytes]] = field(init=False)

    def __post_init__(self) -> None:
        eligible = [i for i in range(self.node_count) if i not in self.exclude]
        if not 1 <= self.factor <= len(eligible):
            raise WorkloadError(
                f"replication factor {self.factor} impossible with "
                f"{len(eligible)} eligible nodes"
            )
        if self.distinct_objects < 1:
            raise WorkloadError("need at least one distinct object")
        rng = derive_rng(self.seed, "replication", self.node_count, self.factor)
        placements: dict[int, list[bytes]] = {i: [] for i in eligible}
        for number in range(self.distinct_objects):
            header = f"replica:{number}:".encode("ascii")
            payload = header.ljust(self.object_size, b"\x2b")
            for holder in rng.sample(eligible, self.factor):
                placements[holder].append(payload)
        object.__setattr__(
            self, "placements", {i: p for i, p in placements.items() if p}
        )

    def objects_for(self, node_index: int, size: int | None = None) -> list[bytes]:
        """Payloads node ``node_index`` stores (may be empty).

        ``size`` is accepted for interface compatibility with
        :class:`~repro.workloads.placement.AnswerPlacement` but ignored:
        replica sizes are fixed by the spec's ``object_size``.
        """
        return list(self.placements.get(node_index, []))

    @property
    def holders(self) -> frozenset[int]:
        """Nodes holding at least one replica."""
        return frozenset(self.placements)

    @property
    def total_copies(self) -> int:
        """Copies across the network (the completion oracle)."""
        return self.distinct_objects * self.factor

    def distinct_reachable(self) -> int:
        """Distinct objects stored somewhere (== distinct_objects)."""
        return self.distinct_objects
