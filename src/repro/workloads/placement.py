"""Answer placement: controlling who holds the matches.

The Gnutella comparison "restrict[s] the answers to come from only a few
nodes": the queried keyword must exist at a chosen subset of nodes and
nowhere else.  :class:`AnswerPlacement` picks that subset
deterministically and provides the special keyword plus per-node object
injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.util.randomness import derive_rng


@dataclass(frozen=True)
class AnswerPlacement:
    """A keyword held by exactly ``holder_count`` of ``node_count`` nodes."""

    node_count: int
    holder_count: int
    #: matching objects per holding node
    answers_per_holder: int = 5
    #: the base (querying) node never holds answers
    exclude: frozenset[int] = frozenset({0})
    seed: int = 0
    keyword: str = "rare-target"
    holders: frozenset[int] = field(init=False)

    def __post_init__(self) -> None:
        eligible = [i for i in range(self.node_count) if i not in self.exclude]
        if not 1 <= self.holder_count <= len(eligible):
            raise WorkloadError(
                f"cannot place answers at {self.holder_count} of "
                f"{len(eligible)} eligible nodes"
            )
        rng = derive_rng(self.seed, "placement", self.node_count, self.holder_count)
        chosen = frozenset(rng.sample(eligible, self.holder_count))
        object.__setattr__(self, "holders", chosen)

    def holds_answers(self, node_index: int) -> bool:
        return node_index in self.holders

    def objects_for(self, node_index: int, size: int = 1024) -> list[bytes]:
        """Payloads of the matching objects this node should store."""
        if not self.holds_answers(node_index):
            return []
        payloads = []
        for i in range(self.answers_per_holder):
            header = f"answer:{node_index}:{i}:".encode("ascii")
            payloads.append(header.ljust(size, b"\x2a"))
        return payloads

    @property
    def total_answers(self) -> int:
        """How many matches exist network-wide (the completion oracle)."""
        return self.holder_count * self.answers_per_holder
