"""Query workload generation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.util.randomness import derive_rng
from repro.workloads.corpus import KeywordCorpus


@dataclass(frozen=True)
class QueryWorkload:
    """A deterministic stream of query keywords.

    ``skew`` controls popularity: 0 is uniform over the corpus; larger
    values Zipf-concentrate queries on low-index keywords, the classic
    model for content popularity in file-sharing networks.
    """

    corpus: KeywordCorpus
    skew: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.skew < 0:
            raise WorkloadError(f"skew must be >= 0, got {self.skew}")

    def keywords(self, count: int) -> list[str]:
        """The first ``count`` query keywords of this workload."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        rng = derive_rng(self.seed, "queries", self.skew)
        if self.skew == 0.0:
            return [
                self.corpus.keyword(rng.randrange(self.corpus.size))
                for _ in range(count)
            ]
        weights = [1.0 / (rank + 1) ** self.skew for rank in range(self.corpus.size)]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        chosen = []
        for _ in range(count):
            point = rng.random()
            index = next(
                (i for i, edge in enumerate(cumulative) if point <= edge),
                self.corpus.size - 1,
            )
            chosen.append(self.corpus.keyword(index))
        return chosen
