"""Query lifecycle at the initiating node.

A :class:`QueryHandle` accumulates the answers that flow straight back
from responders, with arrival timestamps (the raw material for the
paper's response-rate and answer-quantity figures), and — once the
query is *finished* — yields the per-candidate observations the
reconfiguration strategy ranks.

Completion is externally decided: a P2P node cannot know when the last
answer has arrived ("the users have no idea of which peers will be
providing the answers"), so either the application calls
``node.finish_query`` (experiments use an oracle), or the node finishes
the query automatically after a quiet period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.agents.messages import AnswerMessage
from repro.agents.topk import TopKDigest
from repro.errors import QueryError
from repro.ids import BPID, QueryId
from repro.storm.heapfile import RecordId
from repro.storm.objects import normalize_keyword
from repro.storm.store import ScoredSearchResult, SearchResult


@dataclass
class QueryHandle:
    """One outstanding (or finished) query at its initiator."""

    query_id: QueryId
    keyword: str
    issued_at: float
    #: network answers in arrival order
    answers: list[AnswerMessage] = field(default_factory=list)
    #: simulated arrival time of each answer (parallel to ``answers``)
    arrival_times: list[float] = field(default_factory=list)
    #: result of searching the initiator's own store (if configured)
    local_result: SearchResult | None = None
    #: in-network top-k bound this query ran with (None = exhaustive)
    top_k: int | None = None
    #: scored local-store result (top-k queries; replaces local_result)
    local_scored: ScoredSearchResult | None = None
    #: digests from hops whose every match was dominated in-network
    digests: list[TopKDigest] = field(default_factory=list)
    #: arrival time of each digest (parallel to ``digests``)
    digest_times: list[float] = field(default_factory=list)
    #: matches terminated in-network because the current k-th score
    #: dominated them (reported by answers and digests alike)
    dominated_dropped: int = 0
    finished: bool = False
    finished_at: float | None = None
    #: True when some responses were knowingly lost (the answer set is
    #: partial but still returned — graceful degradation, never silence)
    degraded: bool = False
    #: degradation cause -> occurrence count (fetch-timeout, data-timeout,
    #: suspect-peer-skipped, ...)
    drop_causes: dict[str, int] = field(default_factory=dict)
    #: answers were replayed from the initiator's result cache — no
    #: agents travelled, no network traffic was spent on this query
    served_from_cache: bool = False
    #: called with (handle, answer) on every arrival
    on_answer: Callable[["QueryHandle", AnswerMessage], None] | None = None
    #: called with (handle,) when the query finishes
    on_finish: Callable[["QueryHandle"], None] | None = None

    # -- accumulation (called by the node) -----------------------------------------

    def record_answer(self, answer: AnswerMessage, now: float) -> None:
        if self.finished:
            raise QueryError(f"{self.query_id} is finished; late answer dropped")
        self.answers.append(answer)
        self.arrival_times.append(now)
        # ScoredAnswers report how many of their hop's matches the
        # in-transit top-k killed; plain answers have no such counter.
        self.dominated_dropped += getattr(answer, "dominated_dropped", 0)
        if self.on_answer is not None:
            self.on_answer(self, answer)

    def record_digest(self, digest: TopKDigest, now: float) -> None:
        """Record a hop whose matches were all dominated in-network.

        Digests are liveness plus accounting, not answers: they carry
        no items, so they join neither ``answers`` nor the strategy's
        observations — but they do reset the quiet period (the hop is
        demonstrably alive and still working the query).
        """
        if self.finished:
            raise QueryError(f"{self.query_id} is finished; late digest dropped")
        self.digests.append(digest)
        self.digest_times.append(now)
        self.dominated_dropped += digest.dominated_dropped

    def mark_degraded(self, cause: str) -> None:
        """Record that part of this query's answer set was lost.

        The query still completes with whatever arrived; ``degraded``
        plus the per-cause counters tell the application (and the eval
        reports) that the numbers are a lower bound.
        """
        self.degraded = True
        self.drop_causes[cause] = self.drop_causes.get(cause, 0) + 1

    def mark_finished(self, now: float) -> None:
        if self.finished:
            raise QueryError(f"{self.query_id} is already finished")
        self.finished = True
        self.finished_at = now
        if self.on_finish is not None:
            self.on_finish(self)

    # -- results -----------------------------------------------------------------------

    @property
    def responders(self) -> set[BPID]:
        """Every node that returned at least one answer."""
        return {answer.responder for answer in self.answers}

    @property
    def network_answer_count(self) -> int:
        """Total answers from the network (excludes the local store)."""
        return sum(answer.answer_count for answer in self.answers)

    @property
    def total_answer_count(self) -> int:
        """Network answers plus local-store matches."""
        if self.local_scored is not None:
            local = self.local_scored.match_count
        else:
            local = self.local_result.match_count if self.local_result else 0
        return self.network_answer_count + local

    @property
    def distinct_payload_count(self) -> int:
        """Distinct object payloads among the network answers.

        With replication the same object arrives from several holders;
        this deduplicates by payload bytes.  Only meaningful in result
        mode 1 (direct) — metadata answers carry no payloads and each
        counts as distinct.
        """
        seen: set[bytes] = set()
        placeholder = 0
        for answer in self.answers:
            for item in answer.items:
                if item.payload is None:
                    placeholder += 1
                else:
                    seen.add(item.payload)
        return len(seen) + placeholder

    @property
    def distinct_answer_count(self) -> int:
        """Network answers deduplicated by object content.

        With RF > 1 the owner *and* its replica holders each answer, so
        :attr:`network_answer_count` double-counts replicated objects.
        This counts each distinct ``(keywords, size, payload)`` identity
        once, making RF > 1 recall directly comparable to RF = 1 — on a
        fault-free network the two counts are equal.  (Two genuinely
        different objects with identical tags, size, and payload — or
        identical tags and size in metadata mode — merge; the corpora
        the figures use give every object a distinct keyword, so the
        approximation is exact there.)
        """
        seen: set[tuple] = set()
        for answer in self.answers:
            for item in answer.items:
                seen.add((item.keywords, item.size, item.payload))
        return len(seen)

    @property
    def last_arrival(self) -> float | None:
        """Arrival time of the most recent answer or digest (None
        before any) — digests count as activity for quiet periods."""
        latest = self.arrival_times[-1] if self.arrival_times else None
        if self.digest_times and (latest is None or self.digest_times[-1] > latest):
            return self.digest_times[-1]
        return latest

    @property
    def completion_time(self) -> float | None:
        """Time from issue to the last received answer."""
        if self.last_arrival is None:
            return None
        return self.last_arrival - self.issued_at

    def top_answers(
        self, k: int | None = None
    ) -> list[tuple[float, BPID, RecordId]]:
        """The global top-k view: best (score, holder, rid) triples.

        Merges the local-store result with every network answer,
        re-scoring unscored (exhaustive) items from their keyword tags
        — the same TF model :meth:`~repro.storm.objects.StoredObject.score`
        uses — so exhaustive and top-k runs are directly comparable.
        Ordered by the :class:`~repro.agents.topk.TopKEntry` sort key
        and truncated to ``k`` (default: the query's own ``top_k``;
        None returns every entry, ranked).
        """
        if k is None:
            k = self.top_k
        needle = normalize_keyword(self.keyword)
        merged: dict[tuple[BPID, RecordId], float] = {}
        origin = self.query_id.origin
        if self.local_scored is not None:
            for score, rid, _obj in self.local_scored.matches:
                merged[(origin, rid)] = score
        elif self.local_result is not None:
            for rid, obj in self.local_result.matches:
                merged[(origin, rid)] = obj.score(self.keyword)
        for answer in self.answers:
            for item in answer.items:
                score = getattr(item, "score", None)
                if score is None:
                    count = item.keywords.count(needle)
                    score = count / len(item.keywords) if count else 0.0
                key = (answer.responder, item.rid)
                if score > merged.get(key, -1.0):
                    merged[key] = score
        ranked = sorted(
            (
                (score, holder, rid)
                for (holder, rid), score in merged.items()
            ),
            key=lambda entry: (
                -entry[0],
                entry[1].liglo_id,
                entry[1].node_id,
                entry[2].page_id,
                entry[2].slot,
            ),
        )
        return ranked if k is None else ranked[:k]

    def arrivals(self) -> list[tuple[float, AnswerMessage]]:
        """(arrival time, answer) pairs in arrival order."""
        return list(zip(self.arrival_times, self.answers))

    def answers_by_responder(self) -> dict[BPID, int]:
        """Total answer count per responder."""
        counts: dict[BPID, int] = {}
        for answer in self.answers:
            counts[answer.responder] = (
                counts.get(answer.responder, 0) + answer.answer_count
            )
        return counts
