"""The direct-peer table.

Holds at most ``max_peers`` (the node's ``k``) entries, each mapping a
peer's permanent BPID to its last known IP address plus the statistics
the reconfiguration strategies feed on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PeerTableError
from repro.ids import BPID
from repro.net.address import IPAddress


@dataclass
class PeerInfo:
    """One direct peer, as this node knows it."""

    bpid: BPID
    address: IPAddress
    added_at: float = 0.0
    #: answers in the most recently finished query
    last_answers: int = 0
    #: hops distance piggybacked with the most recent answers
    last_hops: int | None = None
    #: lifetime answer total across queries
    total_answers: int = 0


@dataclass
class PeerTable:
    """Bounded mapping of direct peers."""

    max_peers: int
    _entries: dict[BPID, PeerInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_peers < 1:
            raise PeerTableError(f"max_peers must be >= 1, got {self.max_peers}")

    def add(self, bpid: BPID, address: IPAddress, now: float = 0.0) -> None:
        """Add a direct peer; errors when full or duplicate."""
        if bpid in self._entries:
            raise PeerTableError(f"{bpid} is already a direct peer")
        if len(self._entries) >= self.max_peers:
            raise PeerTableError(
                f"peer table is full ({self.max_peers}); reconfigure instead"
            )
        self._entries[bpid] = PeerInfo(bpid=bpid, address=address, added_at=now)

    def remove(self, bpid: BPID) -> None:
        """Drop a direct peer."""
        if bpid not in self._entries:
            raise PeerTableError(f"{bpid} is not a direct peer")
        del self._entries[bpid]

    def replace_all(self, peers: list[PeerInfo]) -> None:
        """Install a whole new peer set (the reconfiguration commit)."""
        if len(peers) > self.max_peers:
            raise PeerTableError(
                f"{len(peers)} peers exceed the table capacity {self.max_peers}"
            )
        bpids = [peer.bpid for peer in peers]
        if len(set(bpids)) != len(bpids):
            raise PeerTableError("duplicate BPIDs in replacement peer set")
        self._entries = {peer.bpid: peer for peer in peers}

    def update_address(self, bpid: BPID, address: IPAddress) -> None:
        """Record a peer's new IP (learned from LIGLO or an answer)."""
        entry = self._entries.get(bpid)
        if entry is None:
            raise PeerTableError(f"{bpid} is not a direct peer")
        entry.address = address

    # -- queries -----------------------------------------------------------------

    def __contains__(self, bpid: BPID) -> bool:
        return bpid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, bpid: BPID) -> PeerInfo | None:
        return self._entries.get(bpid)

    def entries(self) -> list[PeerInfo]:
        """All peers, in insertion order."""
        return list(self._entries.values())

    def bpids(self) -> list[BPID]:
        return list(self._entries)

    def addresses(self) -> list[IPAddress]:
        """Current addresses of all direct peers (the broadcast fan-out)."""
        return [entry.address for entry in self._entries.values()]

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.max_peers
