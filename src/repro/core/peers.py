"""The direct-peer table.

Holds at most ``max_peers`` (the node's ``k``) entries, each mapping a
peer's permanent BPID to its last known IP address plus the statistics
the reconfiguration strategies feed on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PeerTableError
from repro.ids import BPID
from repro.net.address import IPAddress


@dataclass
class PeerInfo:
    """One direct peer, as this node knows it."""

    bpid: BPID
    address: IPAddress
    added_at: float = 0.0
    #: answers in the most recently finished query
    last_answers: int = 0
    #: hops distance piggybacked with the most recent answers
    last_hops: int | None = None
    #: lifetime answer total across queries
    total_answers: int = 0
    #: consecutive request timeouts charged against this peer
    timeouts: int = 0
    #: suspected dead (timeouts crossed the threshold); floods skip it
    suspect: bool = False
    #: sim time of the last message received from this peer
    last_seen: float = 0.0


@dataclass
class PeerTable:
    """Bounded mapping of direct peers."""

    max_peers: int
    _entries: dict[BPID, PeerInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_peers < 1:
            raise PeerTableError(f"max_peers must be >= 1, got {self.max_peers}")

    def add(self, bpid: BPID, address: IPAddress, now: float = 0.0) -> None:
        """Add a direct peer; errors when full or duplicate."""
        if bpid in self._entries:
            raise PeerTableError(f"{bpid} is already a direct peer")
        if len(self._entries) >= self.max_peers:
            raise PeerTableError(
                f"peer table is full ({self.max_peers}); reconfigure instead"
            )
        self._entries[bpid] = PeerInfo(bpid=bpid, address=address, added_at=now)

    def remove(self, bpid: BPID) -> None:
        """Drop a direct peer."""
        if bpid not in self._entries:
            raise PeerTableError(f"{bpid} is not a direct peer")
        del self._entries[bpid]

    def replace_all(self, peers: list[PeerInfo]) -> None:
        """Install a whole new peer set (the reconfiguration commit)."""
        if len(peers) > self.max_peers:
            raise PeerTableError(
                f"{len(peers)} peers exceed the table capacity {self.max_peers}"
            )
        bpids = [peer.bpid for peer in peers]
        if len(set(bpids)) != len(bpids):
            raise PeerTableError("duplicate BPIDs in replacement peer set")
        self._entries = {peer.bpid: peer for peer in peers}

    def update_address(self, bpid: BPID, address: IPAddress) -> None:
        """Record a peer's new IP (learned from LIGLO or an answer)."""
        entry = self._entries.get(bpid)
        if entry is None:
            raise PeerTableError(f"{bpid} is not a direct peer")
        entry.address = address

    def discard(self, bpid: BPID) -> None:
        """Drop a peer if present (no error when already gone)."""
        self._entries.pop(bpid, None)

    # -- liveness ----------------------------------------------------------------

    def note_timeout(self, bpid: BPID, threshold: int) -> bool:
        """Charge one request timeout against ``bpid``.

        Returns True exactly when this timeout pushes the peer over
        ``threshold`` consecutive timeouts, i.e. the peer *became*
        suspect now.  Unknown BPIDs are ignored (the peer may have been
        evicted while the request was in flight).
        """
        entry = self._entries.get(bpid)
        if entry is None:
            return False
        entry.timeouts += 1
        if not entry.suspect and entry.timeouts >= threshold:
            entry.suspect = True
            return True
        return False

    def note_alive(self, bpid: BPID, now: float) -> None:
        """Any message from ``bpid`` clears suspicion and the timeout run."""
        entry = self._entries.get(bpid)
        if entry is None:
            return
        entry.timeouts = 0
        entry.suspect = False
        entry.last_seen = now

    def suspect_bpids(self) -> list[BPID]:
        """BPIDs currently suspected dead."""
        return [bpid for bpid, entry in self._entries.items() if entry.suspect]

    def live_entries(self) -> list[PeerInfo]:
        """Peers not suspected dead, in insertion order."""
        return [entry for entry in self._entries.values() if not entry.suspect]

    def live_addresses(self) -> list[IPAddress]:
        """Addresses of non-suspect peers (the degraded-mode fan-out)."""
        return [entry.address for entry in self._entries.values() if not entry.suspect]

    # -- queries -----------------------------------------------------------------

    def __contains__(self, bpid: BPID) -> bool:
        return bpid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, bpid: BPID) -> PeerInfo | None:
        return self._entries.get(bpid)

    def entries(self) -> list[PeerInfo]:
        """All peers, in insertion order."""
        return list(self._entries.values())

    def bpids(self) -> list[BPID]:
        return list(self._entries)

    def addresses(self) -> list[IPAddress]:
        """Current addresses of all direct peers (the broadcast fan-out)."""
        return [entry.address for entry in self._entries.values()]

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.max_peers
