"""Code-shipping vs. data-shipping: the paper's first future-work item.

Section 6: "our current implementation provides no optimization schemes
- basically, a node will always send its agent to the destination node
to process the data there.  We plan to make a node more intelligent by
allowing it to determine at runtime which strategy to adopt -
code-shipping or data-shipping."

This module implements that decision.  For each direct peer a
:class:`ShippingPolicy` chooses:

* **code** — ship the search agent (the paper's default): pays agent
  transmission + installation, moves only the matches;
* **data** — fetch the peer's sharable dataset once, cache it locally,
  and evaluate this and future queries against the cache: pays a large
  one-off transfer, then answers locally for free until the cache is
  invalidated.

Data-shipping amortizes: it wins when many queries will hit the same
peer's slowly-changing data; code-shipping wins for one-off queries over
big stores.  :class:`AdaptiveShippingPolicy` estimates both costs from
observed store sizes and the query count so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BestPeerError
from repro.net import codec as wire

CODE = "code"
DATA = "data"

PROTO_DATA_REQUEST = "bestpeer.data-request"
PROTO_DATA_REPLY = "bestpeer.data-reply"


@dataclass(frozen=True, slots=True)
class DataRequest:
    """Ask a peer for its sharable dataset (data-shipping)."""

    token: int


@dataclass(frozen=True, slots=True)
class DataReply:
    """A peer's full sharable dataset: (keywords, payload) pairs."""

    token: int
    objects: tuple[tuple[tuple[str, ...], bytes], ...]

    @property
    def total_bytes(self) -> int:
        return sum(len(payload) for _, payload in self.objects)


@dataclass
class PeerEstimate:
    """What a node believes about one peer, for the shipping decision."""

    #: estimated bytes of the peer's sharable data (0 = unknown)
    store_bytes: int = 0
    #: queries this node has issued that involved the peer
    queries_seen: int = 0
    #: does this node hold a live cached copy of the peer's data?
    cached: bool = False


class ShippingPolicy:
    """Decides, per peer and per query, how to execute the search."""

    name = "abstract"

    def choose(self, estimate: PeerEstimate) -> str:
        """Return :data:`CODE` or :data:`DATA`."""
        raise NotImplementedError


class AlwaysCodePolicy(ShippingPolicy):
    """The paper's current implementation: always ship the agent."""

    name = "always-code"

    def choose(self, estimate: PeerEstimate) -> str:
        return CODE


class AlwaysDataPolicy(ShippingPolicy):
    """Always pull the data (degenerates to a mirroring client)."""

    name = "always-data"

    def choose(self, estimate: PeerEstimate) -> str:
        return DATA


@dataclass
class AdaptiveShippingPolicy(ShippingPolicy):
    """Cost-based runtime choice.

    Per query against one peer:

    * code cost  ≈ ``agent_bytes / bandwidth + install_time``
    * data cost  ≈ ``store_bytes / bandwidth`` once, then ~0 from cache

    Data-shipping is chosen when the projected spend over the expected
    number of future queries (``horizon``) is lower - i.e. when
    ``store_bytes / bandwidth < horizon * per-query code cost`` - and
    the store size is actually known.  A cached peer is always served
    from the cache.
    """

    #: typical serialized agent size (bytes) - state-only envelopes
    agent_bytes: int = 600
    #: effective bandwidth (bytes/second), matching the LinkModel default
    bandwidth: float = 1_250_000.0
    #: per-execution install/overhead cost at the peer (seconds)
    install_time: float = 0.014
    #: how many future queries to amortize a data transfer over
    horizon: int = 10
    name: str = field(default="adaptive", init=False)

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise BestPeerError(f"horizon must be >= 1, got {self.horizon}")
        if self.bandwidth <= 0:
            raise BestPeerError(f"bandwidth must be > 0, got {self.bandwidth}")

    def code_cost(self) -> float:
        """Estimated cost of one code-shipped query (seconds)."""
        return self.agent_bytes / self.bandwidth + self.install_time

    def data_cost(self, estimate: PeerEstimate) -> float:
        """Estimated one-off cost of pulling the peer's store (seconds)."""
        return estimate.store_bytes / self.bandwidth

    def choose(self, estimate: PeerEstimate) -> str:
        if estimate.cached:
            return DATA
        if estimate.store_bytes <= 0:
            return CODE  # "in the face of ambiguity", ship the agent
        if self.data_cost(estimate) < self.horizon * self.code_cost():
            return DATA
        return CODE


_POLICIES = {
    "always-code": AlwaysCodePolicy,
    "always-data": AlwaysDataPolicy,
    "adaptive": AdaptiveShippingPolicy,
}


def make_shipping_policy(name: str, **kwargs) -> ShippingPolicy:
    """Construct a shipping policy by name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise BestPeerError(
            f"unknown shipping policy {name!r}; known: {known}"
        ) from None
    return factory(**kwargs)


# -- compact wire registration (type id block 0x02xx) --------------------------

wire.register(
    DataRequest,
    0x0203,
    (("token", wire.I64),),
    sample=lambda: DataRequest(token=11),
)

# -- data-plane wire registration (type id block 0x10xx) -----------------------
#
# A DataReply carries a peer's whole sharable dataset — the single
# largest message in the system.  Stores past the data codec's frame cap
# fall back to pickle+gzip; the decision depends only on the value, so
# both ``REPRO_WIRE_DATA`` modes agree on the charged size.

from repro.net import datacodec as data

data.register(
    DataReply,
    0x1005,
    (
        ("token", wire.I64),
        ("objects", wire.seq(wire.pair(wire.seq(wire.STR), wire.BYTES))),
    ),
    sample=lambda: DataReply(
        token=11,
        objects=((("music", "mp3"), b"notes"), (("news",), b"daily")),
    ),
)
