"""Cost-aware peer selection: the P4P/ALTO idea.

Rank candidates by answer yield *per unit of network cost*: a peer that
returns the same answers over a cheaper link (lower
:class:`repro.net.link.LinkModel` latency) wins the slot.  Once bound to
a node, the strategy reads live link costs from ``repro.net`` for the
directed pair (this node → candidate); unbound (unit tests, the
conformance battery) every candidate costs the same and the ranking
degenerates to MaxCount's yield order.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.routing.base import (
    PeerObservation,
    RoutingStrategy,
    eligible,
    register_strategy,
)
from repro.errors import BestPeerError
from repro.net.address import IPAddress

#: Additive yield smoothing, so silent candidates still rank by cost
#: (a cheap silent peer beats an expensive silent peer).
DEFAULT_SMOOTHING = 1.0


@register_strategy
class CostAwareStrategy(RoutingStrategy):
    """Rank candidates by ``(answers + smoothing) / link cost``."""

    name = "costaware"

    def __init__(self, smoothing: float = DEFAULT_SMOOTHING):
        if smoothing <= 0.0:
            raise BestPeerError(f"smoothing must be > 0, got {smoothing}")
        self._smoothing = smoothing
        self._cost_of: Callable[[IPAddress], float] | None = None

    def bind(self, node) -> None:
        network = node.network
        host = node.host

        def link_cost(address: IPAddress) -> float:
            source = host.address
            if source is None:  # offline during churn: no link to price
                return 1.0
            return max(network.link_for(source, address).latency, 1e-9)

        self._cost_of = link_cost

    def cost(self, address: IPAddress) -> float:
        """Current link cost towards ``address`` (1.0 when unbound)."""
        if self._cost_of is None:
            return 1.0
        return self._cost_of(address)

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        ranked = sorted(
            eligible(candidates),
            key=lambda obs: (
                -(obs.answers + self._smoothing) / self.cost(obs.address),
                not obs.is_current,
                str(obs.bpid),
            ),
        )
        return ranked[:k]
