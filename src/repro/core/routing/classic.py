"""The paper's strategies, ported onto the routing framework.

Selection behaviour is bit-identical to the pre-framework
``repro.core.reconfig`` implementations (same sort keys, same
tie-breaks), and the inherited default :meth:`flood_targets` reproduces
the hard-coded fan-out, so every series these strategies produce is
unchanged — ``test_fastpath_determinism.py`` holds the proof.

* **MaxCount** — "sorts the peers based on the number of answers they
  returned ... ties are arbitrarily broken.  The k peers with the
  highest values are retained."  (Our arbitrary tie-break is
  deterministic: current peers first, then BPID order, so runs are
  reproducible.)
* **MinHops** — "orders peers based on the number of hops, and pick
  those with the larger hops values as the immediate peers.  In the
  event of ties, the one with the larger number of answers is
  preferred."  Bringing far answer-bearers close minimizes the hops
  needed to reach everything.
* **random** — uniformly random replacement, the ablation control.
* **static** — no reconfiguration (the paper's BPS scheme).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.routing.base import (
    PeerObservation,
    RoutingStrategy,
    eligible,
    register_strategy,
)
from repro.util.randomness import derive_rng


@register_strategy
class MaxCountStrategy(RoutingStrategy):
    """Keep the peers that returned the most answers."""

    name = "maxcount"

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        ranked = sorted(
            eligible(candidates),
            key=lambda obs: (-obs.answers, not obs.is_current, str(obs.bpid)),
        )
        return ranked[:k]


@register_strategy
class MinHopsStrategy(RoutingStrategy):
    """Keep the *farthest* answer-bearing peers (larger hops first).

    Candidates that returned no answers carry no hops evidence and rank
    below every responder.
    """

    name = "minhops"

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        ranked = sorted(
            eligible(candidates),
            key=lambda obs: (
                -(obs.hops if obs.hops is not None else -1),
                -obs.answers,
                not obs.is_current,
                str(obs.bpid),
            ),
        )
        return ranked[:k]


@register_strategy
class RandomReplacementStrategy(RoutingStrategy):
    """Keep a uniformly random subset — the ablation control.

    The sample stream routes through :func:`repro.util.randomness.derive_rng`
    (like the fault plans do), scoped by ``(seed, node name)``: two nodes
    configured with the same seed draw *independent* streams, and the
    same node replays the same stream bit-identically — serial or under
    ``--jobs`` workers, which construct their own instances from the
    same scope.  (The pre-framework version seeded ``random.Random(seed)``
    directly, so every node with the default seed walked one identical
    sequence.)
    """

    name = "random"

    def __init__(self, seed: int = 0, scope: str = ""):
        self._seed = seed
        self._scope = scope
        self._rng = derive_rng(seed, "routing", "random", scope)

    def bind(self, node) -> None:
        self._scope = node.name
        self._rng = derive_rng(self._seed, "routing", "random", node.name)

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        ordered = sorted(eligible(candidates), key=lambda obs: str(obs.bpid))
        if len(ordered) <= k:
            return ordered
        return self._rng.sample(ordered, k)


@register_strategy
class StaticStrategy(RoutingStrategy):
    """No reconfiguration: current peers stay (the paper's BPS scheme)."""

    name = "static"

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        return [obs for obs in eligible(candidates) if obs.is_current][:k]
