"""Pluggable routing strategies: peer selection + query forwarding.

Importing this package registers every built-in strategy; construct one
by name with :func:`make_routing_strategy` or enumerate them with
:func:`registered_strategies`.  See ``docs/ROUTING.md``.
"""

from repro.core.routing.base import (
    ROUTING_ENV_VAR,
    PeerObservation,
    RoutingStrategy,
    eligible,
    make_routing_strategy,
    register_strategy,
    registered_strategies,
    routing_bypassed,
)
from repro.core.routing.classic import (
    MaxCountStrategy,
    MinHopsStrategy,
    RandomReplacementStrategy,
    StaticStrategy,
)
from repro.core.routing.costaware import CostAwareStrategy
from repro.core.routing.history import QueryHistoryStrategy
from repro.core.routing.superpeer import SuperPeerStrategy

__all__ = [
    "ROUTING_ENV_VAR",
    "PeerObservation",
    "RoutingStrategy",
    "CostAwareStrategy",
    "MaxCountStrategy",
    "MinHopsStrategy",
    "QueryHistoryStrategy",
    "RandomReplacementStrategy",
    "StaticStrategy",
    "SuperPeerStrategy",
    "eligible",
    "make_routing_strategy",
    "register_strategy",
    "registered_strategies",
    "routing_bypassed",
]
