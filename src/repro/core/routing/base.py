"""The routing-strategy interface.

A :class:`RoutingStrategy` owns the two routing decisions a BestPeer
node makes:

* **peer selection** — after each query, rank the candidates (current
  direct peers plus every responder) and keep the top ``k``.  This is
  the paper's reconfiguration contract, unchanged.
* **query forwarding** — which direct peers a flood visits, and in what
  order.  Before this framework the fan-out was hard-coded to "every
  non-suspect peer, table order" in ``core/node.py``; strategies can now
  reorder or trim it (and the super-peer strategy can skip the flood
  entirely by consulting its LIGLO's hint directory first).

Strategies register themselves by name at import time; nodes construct
them via :func:`make_routing_strategy` from ``BestPeerConfig.strategy``.
Setting ``REPRO_ROUTING=legacy`` in the environment bypasses the new
*forwarding* path per call (selection keeps going through the strategy,
exactly as it always has) — the same per-call env-var convention every
other fast path in this repo uses, so ``--jobs`` workers inherit it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import BestPeerError
from repro.ids import BPID
from repro.net.address import IPAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (node -> routing)
    from repro.core.node import BestPeerNode
    from repro.core.peers import PeerInfo

#: Env var that bypasses strategy-driven forwarding ("legacy" floods to
#: every non-suspect peer in table order, the pre-framework behaviour).
ROUTING_ENV_VAR = "REPRO_ROUTING"


def routing_bypassed() -> bool:
    """True when ``REPRO_ROUTING=legacy`` disables strategy forwarding.

    Checked per call (not cached) so parallel-runner workers inherit the
    switch through their environment.
    """
    return os.environ.get(ROUTING_ENV_VAR, "").strip().lower() == "legacy"


@dataclass(frozen=True, slots=True)
class PeerObservation:
    """Everything a node learned about one candidate in one query."""

    bpid: BPID
    address: IPAddress
    #: answers this candidate returned for the query (0 if silent)
    answers: int = 0
    #: overlay distance piggybacked with the answers; None if silent
    hops: int | None = None
    #: is the candidate currently a direct peer?
    is_current: bool = False
    #: is the candidate suspected dead?  The node filters suspects out
    #: before calling a strategy, but strategies must never select one
    #: even when handed such an observation directly.
    suspect: bool = False


def eligible(candidates: Sequence[PeerObservation]) -> list[PeerObservation]:
    """Candidates a strategy may select: everything not suspected dead."""
    return [obs for obs in candidates if not obs.suspect]


class RoutingStrategy:
    """Ranks candidates and shapes the flood fan-out."""

    name = "abstract"
    #: True when the strategy wants the node to consult its LIGLO's
    #: keyword hint directory before flooding (super-peer routing).
    uses_hint_directory = False

    # -- lifecycle -------------------------------------------------------------

    def bind(self, node: "BestPeerNode") -> None:
        """Attach node context (name, config, network) after construction.

        Called once by the node that owns this strategy; the default
        needs nothing.  Strategies stay constructible without a node so
        they can be unit-tested standalone.
        """

    # -- peer selection --------------------------------------------------------

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        """Return at most ``k`` observations, highest priority first."""
        raise NotImplementedError

    def select_for(
        self,
        candidates: Sequence[PeerObservation],
        k: int,
        keyword: str | None = None,
    ) -> list[PeerObservation]:
        """Keyword-aware selection; defaults to plain :meth:`select`."""
        return self.select(candidates, k)

    # -- query forwarding ------------------------------------------------------

    def flood_targets(
        self, keyword: str | None, peers: Sequence["PeerInfo"]
    ) -> list[IPAddress]:
        """Fan-out for a flood: addresses to visit, in visit order.

        The default reproduces the pre-framework behaviour exactly:
        every non-suspect direct peer, in peer-table order.
        """
        return [peer.address for peer in peers if not peer.suspect]

    # -- learning --------------------------------------------------------------

    def observe(
        self, keyword: str, observations: Sequence[PeerObservation]
    ) -> None:
        """Feed one finished query's outcome back into the strategy.

        Called by the node just before selection, with the same
        observation list selection will see.  The default learns
        nothing.
        """


# -- registry -------------------------------------------------------------------

_REGISTRY: dict[str, type[RoutingStrategy]] = {}


def register_strategy(cls: type[RoutingStrategy]) -> type[RoutingStrategy]:
    """Class decorator: make a strategy constructible by name."""
    if not cls.name or cls.name == "abstract":
        raise BestPeerError(f"{cls.__name__} needs a concrete name to register")
    _REGISTRY[cls.name] = cls
    return cls


def registered_strategies() -> dict[str, type[RoutingStrategy]]:
    """Every registered strategy class, keyed and sorted by name."""
    return dict(sorted(_REGISTRY.items()))


def make_routing_strategy(name: str, **kwargs) -> RoutingStrategy:
    """Construct a routing strategy by registered name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise BestPeerError(
            f"unknown routing strategy {name!r}; known: {known}"
        ) from None
    return factory(**kwargs)
