"""Query-history routing: route by past per-keyword hit rates.

The query-mining idea (arxiv 1109.5679): a peer that answered queries
for a keyword before will likely answer them again, so learn a
per-``(keyword, peer)`` hit-rate EWMA from every finished query's
:class:`~repro.core.query.QueryHandle` outcome and

* **select** historically-productive peers into the direct-peer set
  first (falling back to the MaxCount ordering where history is silent),
* **forward** floods to historically-productive peers first — and, with
  a configured fan-out cap, *only* to the top scorers.

Scores live per strategy instance, i.e. per node: this is each node's
private query log, not shared state.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.routing.base import (
    PeerObservation,
    RoutingStrategy,
    eligible,
    register_strategy,
)
from repro.errors import BestPeerError
from repro.ids import BPID
from repro.net.address import IPAddress
from repro.storm.objects import normalize_keyword

#: Default EWMA weight of the newest observation.
DEFAULT_ALPHA = 0.3


@register_strategy
class QueryHistoryStrategy(RoutingStrategy):
    """Per-keyword hit-rate EWMA over observed query outcomes."""

    name = "history"

    def __init__(self, alpha: float = DEFAULT_ALPHA, fanout: int | None = None):
        if not 0.0 < alpha <= 1.0:
            raise BestPeerError(f"alpha must be in (0, 1], got {alpha}")
        if fanout is not None and fanout < 1:
            raise BestPeerError(f"fanout must be >= 1, got {fanout}")
        self._alpha = alpha
        self._fanout = fanout
        #: normalized keyword -> peer -> hit-rate EWMA in [0, 1]
        self._scores: dict[str, dict[BPID, float]] = {}

    def bind(self, node) -> None:
        if node.config.routing_fanout is not None:
            self._fanout = node.config.routing_fanout

    # -- learning --------------------------------------------------------------

    def observe(
        self, keyword: str, observations: Sequence[PeerObservation]
    ) -> None:
        table = self._scores.setdefault(normalize_keyword(keyword), {})
        for obs in observations:
            hit = 1.0 if obs.answers > 0 else 0.0
            previous = table.get(obs.bpid)
            if previous is None:
                table[obs.bpid] = hit
            else:
                table[obs.bpid] = previous + self._alpha * (hit - previous)

    def score(self, keyword: str, bpid: BPID) -> float:
        """Learned hit rate for ``(keyword, peer)`` (0.0 when unseen)."""
        return self._scores.get(normalize_keyword(keyword), {}).get(bpid, 0.0)

    # -- selection -------------------------------------------------------------

    def select_for(
        self,
        candidates: Sequence[PeerObservation],
        k: int,
        keyword: str | None = None,
    ) -> list[PeerObservation]:
        table = (
            self._scores.get(normalize_keyword(keyword), {})
            if keyword is not None
            else {}
        )
        ranked = sorted(
            eligible(candidates),
            key=lambda obs: (
                -table.get(obs.bpid, 0.0),
                -obs.answers,
                not obs.is_current,
                str(obs.bpid),
            ),
        )
        return ranked[:k]

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        return self.select_for(candidates, k)

    # -- forwarding ------------------------------------------------------------

    def flood_targets(
        self, keyword: str | None, peers: Sequence
    ) -> list[IPAddress]:
        live = [peer for peer in peers if not peer.suspect]
        table = (
            self._scores.get(normalize_keyword(keyword), {})
            if keyword is not None
            else {}
        )
        # Stable sort on -score: unscored peers keep table order, so an
        # empty history reproduces the default fan-out exactly.
        order = sorted(
            range(len(live)), key=lambda i: (-table.get(live[i].bpid, 0.0), i)
        )
        targets = [live[i].address for i in order]
        if self._fanout is not None:
            targets = targets[: self._fanout]
        return targets
