"""Super-peer routing: consult the LIGLO hint directory before flooding.

Super-peer query routing (arxiv 1111.5518) concentrates routing state
in an index tier — which our LIGLO servers already are.  Nodes publish
a per-keyword digest of what they share to their LIGLO
(:class:`repro.liglo.messages.HintPublish`); a querying node first asks
its LIGLO which *online* members hold the keyword
(:class:`~repro.liglo.messages.HintQuery` /
:class:`~repro.liglo.messages.HintReply`, compact-codec control frames)
and ships the search agent straight to those holders with TTL 1 —
no relaying, no duplicate-agent dedup traffic.  When the directory has
no hints, or the LIGLO never answers (outage), the node falls back to a
normal flood, so recall is never *worse* than flooding.

The hint exchange itself lives in ``repro.liglo`` (client ops + server
directory); this class carries the selection policy and the
``uses_hint_directory`` flag the node keys the forwarding path on.
Selection reuses MaxCount's ranking — with targeted dispatch every
holder answers from hop 1, so answer-count is the signal that remains.
"""

from __future__ import annotations

from repro.core.routing.base import register_strategy
from repro.core.routing.classic import MaxCountStrategy


@register_strategy
class SuperPeerStrategy(MaxCountStrategy):
    """Hint-directory forwarding with MaxCount selection."""

    name = "superpeer"
    uses_hint_directory = True
