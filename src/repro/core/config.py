"""Node configuration.

Every knob the paper mentions is here: the per-node cap on direct peers
("Every BestPeer node has its own control over the maximum number of
direct peers it can have"), the reconfiguration strategy, agent TTL, the
result-return mode of Section 2, and the CPU/cost parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.costs import AgentCosts
from repro.agents.envelope import DEFAULT_TTL
from repro.agents.messages import MODE_DIRECT, MODE_METADATA
from repro.errors import BestPeerError
from repro.replication.policy import ReplicationPolicy
from repro.util.retry import RetryPolicy


@dataclass(frozen=True)
class BestPeerConfig:
    """Immutable per-node configuration."""

    #: k - the maximum number of directly connected peers
    max_direct_peers: int = 8
    #: agent lifetime in overlay hops
    ttl: int = DEFAULT_TTL
    #: "direct" ships payloads in answers; "metadata" defers to fetches
    result_mode: str = MODE_DIRECT
    #: routing strategy name (selection + forwarding; see
    #: repro.core.routing): maxcount | minhops | random | static |
    #: history | superpeer | costaware
    strategy: str = "maxcount"
    #: search with the inverted index instead of the paper's full scan
    use_index: bool = False
    #: also search this node's own store when it issues a query
    search_own_store: bool = True
    #: CPU threads on the node's host (the BestPeer prototype is threaded)
    cpu_threads: int = 8
    #: how long a fetch (out-of-network download) waits before giving up
    fetch_timeout: float = 5.0
    #: shipping decision for smart queries: always-code | always-data |
    #: adaptive (the paper's future-work runtime choice)
    shipping_policy: str = "always-code"
    #: agent install/execution cost model
    agent_costs: AgentCosts = field(default_factory=AgentCosts)
    #: retry/backoff for LIGLO exchanges, fetches, and rejoin; None keeps
    #: the legacy single-attempt behaviour (healthy networks unchanged)
    retry_policy: RetryPolicy | None = None
    #: consecutive request timeouts before a direct peer turns suspect
    suspect_after: int = 3
    #: seed scope for retry jitter (combined with the node name)
    retry_seed: int = 0
    #: flood fan-out cap honoured by ordering strategies such as
    #: query-history routing (None floods every live peer)
    routing_fanout: int | None = None
    #: publish per-keyword hint digests to this node's LIGLO on share;
    #: super-peer routing publishes regardless of this flag
    publish_hints: bool = False
    #: how long a super-peer hint fetch waits before falling back to a
    #: plain flood (kept well under any query quiet period)
    hint_timeout: float = 1.0
    #: in-network top-k: queries return only the k best-scored answers,
    #: with dominated answers terminated at the hop that finds them
    #: (see repro.agents.topk).  None keeps the paper's exhaustive
    #: floods bit-identical; REPRO_TOPK=off bypasses per call.
    top_k: int | None = None
    #: replication and hot-object caching knobs (see
    #: repro.replication).  The default ``rf=1`` policy keeps the
    #: paper's single-copy behaviour bit-identical;
    #: REPRO_REPLICATION=off bypasses per call.
    replication: ReplicationPolicy = field(default_factory=ReplicationPolicy)

    def __post_init__(self) -> None:
        if self.suspect_after < 1:
            raise BestPeerError(
                f"suspect_after must be >= 1, got {self.suspect_after}"
            )
        if self.max_direct_peers < 1:
            raise BestPeerError(
                f"max_direct_peers must be >= 1, got {self.max_direct_peers}"
            )
        if self.ttl < 1:
            raise BestPeerError(f"ttl must be >= 1, got {self.ttl}")
        if self.result_mode not in (MODE_DIRECT, MODE_METADATA):
            raise BestPeerError(f"unknown result mode {self.result_mode!r}")
        if self.cpu_threads < 1:
            raise BestPeerError(f"cpu_threads must be >= 1, got {self.cpu_threads}")
        if self.fetch_timeout <= 0:
            raise BestPeerError(f"fetch_timeout must be > 0, got {self.fetch_timeout}")
        if self.routing_fanout is not None and self.routing_fanout < 1:
            raise BestPeerError(
                f"routing_fanout must be >= 1, got {self.routing_fanout}"
            )
        if self.hint_timeout <= 0:
            raise BestPeerError(f"hint_timeout must be > 0, got {self.hint_timeout}")
        if self.top_k is not None and not 1 <= self.top_k <= 0xFFFF:
            raise BestPeerError(
                f"top_k must be in [1, 65535] or None, got {self.top_k}"
            )
