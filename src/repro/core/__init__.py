"""BestPeer core: the node software and its self-configuration machinery.

``config``    node configuration and cost-model knobs
``routing``   pluggable routing strategies (selection + forwarding)
``reconfig``  the pre-framework strategy surface (compat shim)
``peers``     the direct-peer table
``query``     query lifecycle: answers, observations, completion
``sharing``   static files, active objects, compute shipping
``node``      :class:`BestPeerNode` — everything wired together
``builder``   convenience construction of whole BestPeer networks
"""

from repro.core.builder import BestPeerNetwork, build_network
from repro.core.config import BestPeerConfig
from repro.core.discovery import (
    ContentReport,
    DiscoveryAgent,
    KnowledgeBase,
    KnowledgeStrategy,
)
from repro.core.node import BestPeerNode
from repro.core.peers import PeerInfo, PeerTable
from repro.core.query import QueryHandle
from repro.core.reconfig import (
    MaxCountStrategy,
    MinHopsStrategy,
    PeerObservation,
    RandomReplacementStrategy,
    ReconfigurationStrategy,
    StaticStrategy,
    make_reconfig_strategy,
)
from repro.core.routing import (
    CostAwareStrategy,
    QueryHistoryStrategy,
    RoutingStrategy,
    SuperPeerStrategy,
    make_routing_strategy,
    registered_strategies,
)
from repro.core.sharing import ActiveObject, ShareCatalog
from repro.core.shipping import (
    AdaptiveShippingPolicy,
    AlwaysCodePolicy,
    AlwaysDataPolicy,
    PeerEstimate,
    ShippingPolicy,
    make_shipping_policy,
)

__all__ = [
    "BestPeerConfig",
    "BestPeerNode",
    "BestPeerNetwork",
    "build_network",
    "PeerTable",
    "PeerInfo",
    "QueryHandle",
    "ReconfigurationStrategy",
    "MaxCountStrategy",
    "MinHopsStrategy",
    "RandomReplacementStrategy",
    "StaticStrategy",
    "PeerObservation",
    "make_reconfig_strategy",
    "RoutingStrategy",
    "QueryHistoryStrategy",
    "SuperPeerStrategy",
    "CostAwareStrategy",
    "make_routing_strategy",
    "registered_strategies",
    "ActiveObject",
    "ShareCatalog",
    "ShippingPolicy",
    "AlwaysCodePolicy",
    "AlwaysDataPolicy",
    "AdaptiveShippingPolicy",
    "PeerEstimate",
    "make_shipping_policy",
    "DiscoveryAgent",
    "ContentReport",
    "KnowledgeBase",
    "KnowledgeStrategy",
]
