"""Offline network discovery: agents that map who shares what.

Section 3.1: "the use of agents allows BestPeer nodes to collect
information (e.g., what files/content are sharable, statistics, etc.)
on the entire BestPeer network, and this can be done offline.  This
allows a node to be better equipped to determine who should be its
directly connected peers or who can provide it better service."

A :class:`DiscoveryAgent` floods like a query agent but, instead of
matching a keyword, summarizes each visited host's sharable store — a
keyword histogram, object count, total bytes — and sends the
:class:`ContentReport` straight back.  Reports accumulate in the
initiator's :class:`KnowledgeBase`, which then powers

* :class:`KnowledgeStrategy` — a reconfiguration strategy that ranks
  peers by how well their content matches the node's *interest profile*
  (expected future queries), rather than by the single most recent
  query's answers; and
* the shipping estimates of :mod:`repro.core.shipping` (store sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.agents.agent import Agent
from repro.core.reconfig import PeerObservation, ReconfigurationStrategy
from repro.errors import BestPeerError
from repro.ids import BPID
from repro.net import codec as wire
from repro.net.address import IPAddress
from repro.storm.objects import normalize_keyword

PROTO_DISCOVERY_REPORT = "bestpeer.discovery.report"

#: cap on how many keyword counts one report carries (wire economy)
MAX_REPORT_KEYWORDS = 64


@dataclass(frozen=True, slots=True)
class ContentReport:
    """One host's content summary, as collected by a discovery agent."""

    responder: BPID
    responder_address: IPAddress
    hops: int
    object_count: int
    total_bytes: int
    #: (keyword, number of objects tagged with it), most frequent first
    keyword_counts: tuple[tuple[str, int], ...]

    def count_for(self, keyword: str) -> int:
        """Objects this host shares under ``keyword`` (0 if unreported)."""
        needle = normalize_keyword(keyword)
        for reported, count in self.keyword_counts:
            if reported == needle:
                return count
        return 0


class DiscoveryAgent(Agent):
    """Summarize each visited host's sharable store and report home.

    The default below is a literal (not ``MAX_REPORT_KEYWORDS``) on
    purpose: a shipped class's source must be self-contained, and
    defaults evaluate at class-definition time in the destination's
    namespace.
    """

    def __init__(self, max_keywords: int = 64):
        self.max_keywords = max_keywords

    def execute(self, context) -> None:
        from repro.core.discovery import ContentReport, PROTO_DISCOVERY_REPORT

        storm = context.storm
        counts: dict[str, int] = {}
        total_bytes = 0
        examined = 0
        for _rid, obj in storm.scan():
            examined += 1
            total_bytes += obj.size
            for keyword in obj.keywords:
                counts[keyword] = counts.get(keyword, 0) + 1
        # Summarizing costs a full pass over the store.
        result = storm.search_scan("")  # charge identical I/O behaviour
        context.charge_search(result)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        report = ContentReport(
            responder=context.host_id,
            responder_address=context.host_address,
            hops=context.hops,
            object_count=examined,
            total_bytes=total_bytes,
            keyword_counts=tuple(ranked[: self.max_keywords]),
        )
        context.send(context.initiator_address, PROTO_DISCOVERY_REPORT, report)


@dataclass
class KnowledgeBase:
    """What one node has learned about the network's content."""

    reports: dict[BPID, ContentReport] = field(default_factory=dict)
    received_at: dict[BPID, float] = field(default_factory=dict)

    def record(self, report: ContentReport, now: float) -> None:
        self.reports[report.responder] = report
        self.received_at[report.responder] = now

    def report_for(self, bpid: BPID) -> ContentReport | None:
        return self.reports.get(bpid)

    def expected_answers(self, bpid: BPID, profile: Sequence[str]) -> int:
        """How many answers ``bpid`` should yield for the profile keywords."""
        report = self.reports.get(bpid)
        if report is None:
            return 0
        return sum(report.count_for(keyword) for keyword in profile)

    def best_providers(self, profile: Sequence[str], k: int) -> list[BPID]:
        """The ``k`` known hosts with the most profile-matching content."""
        ranked = sorted(
            self.reports,
            key=lambda bpid: (-self.expected_answers(bpid, profile), str(bpid)),
        )
        return ranked[:k]

    def __len__(self) -> int:
        return len(self.reports)


class KnowledgeStrategy(ReconfigurationStrategy):
    """Reconfigure using discovered content, not just the last query.

    Candidates are ranked by the knowledge base's expected answers for
    the node's interest ``profile``; the most recent query's observed
    answers break ties (and carry candidates the knowledge base has not
    heard of yet).
    """

    name = "knowledge"

    def __init__(self, knowledge: KnowledgeBase, profile: Sequence[str]):
        if not profile:
            raise BestPeerError("KnowledgeStrategy needs a non-empty profile")
        self.knowledge = knowledge
        self.profile = [normalize_keyword(keyword) for keyword in profile]

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        ranked = sorted(
            candidates,
            key=lambda obs: (
                -self.knowledge.expected_answers(obs.bpid, self.profile),
                -obs.answers,
                not obs.is_current,
                str(obs.bpid),
            ),
        )
        return ranked[:k]


# -- compact wire registration (type id block 0x02xx) --------------------------

wire.register(
    ContentReport,
    0x0204,
    (
        ("responder", wire.BPID_CODEC),
        ("responder_address", wire.IPADDR_CODEC),
        ("hops", wire.U32),
        ("object_count", wire.I64),
        ("total_bytes", wire.I64),
        ("keyword_counts", wire.seq(wire.pair(wire.STR, wire.I64))),
    ),
    sample=lambda: ContentReport(
        responder=BPID("10.0.0.1", 7),
        responder_address=IPAddress("10.0.3.4"),
        hops=2,
        object_count=120,
        total_bytes=61_440,
        keyword_counts=(("music", 40), ("video", 12)),
    ),
)
