"""Reconfiguration strategies: who stays a direct peer.

This module is the backward-compatible face of the routing framework in
:mod:`repro.core.routing`, which owns the strategy implementations since
they grew a second responsibility (query forwarding) next to the
paper's selection contract.  Everything importable here before the
refactor still is: :class:`PeerObservation`, the four paper strategies
(bit-identical sort keys), and the name-based factory —
``ReconfigurationStrategy`` is now an alias of
:class:`~repro.core.routing.RoutingStrategy`, so subclasses written
against the old two-method surface keep working unmodified.
"""

from __future__ import annotations

from repro.core.routing.base import (
    PeerObservation,
    RoutingStrategy,
    make_routing_strategy,
    registered_strategies,
)
from repro.core.routing.classic import (
    MaxCountStrategy,
    MinHopsStrategy,
    RandomReplacementStrategy,
    StaticStrategy,
)

#: The pre-framework name for the strategy base class.
ReconfigurationStrategy = RoutingStrategy


def make_reconfig_strategy(name: str, **kwargs) -> ReconfigurationStrategy:
    """Construct a reconfiguration strategy by name (routing registry)."""
    return make_routing_strategy(name, **kwargs)


__all__ = [
    "PeerObservation",
    "ReconfigurationStrategy",
    "MaxCountStrategy",
    "MinHopsStrategy",
    "RandomReplacementStrategy",
    "StaticStrategy",
    "make_reconfig_strategy",
    "registered_strategies",
]
