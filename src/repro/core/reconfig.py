"""Reconfiguration strategies: who stays a direct peer.

After each query the node observes, for every candidate (current direct
peers plus every responder), how many answers it returned and from how
many hops away.  The strategy ranks the candidates and the node keeps
the top ``k``.

Paper strategies:

* **MaxCount** — "sorts the peers based on the number of answers they
  returned ... ties are arbitrarily broken.  The k peers with the
  highest values are retained."  (Our arbitrary tie-break is
  deterministic: current peers first, then BPID order, so runs are
  reproducible.)
* **MinHops** — "orders peers based on the number of hops, and pick
  those with the larger hops values as the immediate peers.  In the
  event of ties, the one with the larger number of answers is
  preferred."  Bringing far answer-bearers close minimizes the hops
  needed to reach everything.

Extras for ablations: ``random`` replacement and ``static`` (the BPS
scheme — reconfiguration turned off).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import BestPeerError
from repro.ids import BPID
from repro.net.address import IPAddress


@dataclass(frozen=True, slots=True)
class PeerObservation:
    """Everything a node learned about one candidate in one query."""

    bpid: BPID
    address: IPAddress
    #: answers this candidate returned for the query (0 if silent)
    answers: int = 0
    #: overlay distance piggybacked with the answers; None if silent
    hops: int | None = None
    #: is the candidate currently a direct peer?
    is_current: bool = False


class ReconfigurationStrategy:
    """Ranks candidates; the node keeps the top ``k``."""

    name = "abstract"

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        """Return at most ``k`` observations, highest priority first."""
        raise NotImplementedError


class MaxCountStrategy(ReconfigurationStrategy):
    """Keep the peers that returned the most answers."""

    name = "maxcount"

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        ranked = sorted(
            candidates,
            key=lambda obs: (-obs.answers, not obs.is_current, str(obs.bpid)),
        )
        return ranked[:k]


class MinHopsStrategy(ReconfigurationStrategy):
    """Keep the *farthest* answer-bearing peers (larger hops first).

    Candidates that returned no answers carry no hops evidence and rank
    below every responder.
    """

    name = "minhops"

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        ranked = sorted(
            candidates,
            key=lambda obs: (
                -(obs.hops if obs.hops is not None else -1),
                -obs.answers,
                not obs.is_current,
                str(obs.bpid),
            ),
        )
        return ranked[:k]


class RandomReplacementStrategy(ReconfigurationStrategy):
    """Keep a uniformly random subset — the ablation control."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        ordered = sorted(candidates, key=lambda obs: str(obs.bpid))
        if len(ordered) <= k:
            return ordered
        return self._rng.sample(ordered, k)


class StaticStrategy(ReconfigurationStrategy):
    """No reconfiguration: current peers stay (the paper's BPS scheme)."""

    name = "static"

    def select(
        self, candidates: Sequence[PeerObservation], k: int
    ) -> list[PeerObservation]:
        return [obs for obs in candidates if obs.is_current][:k]


_STRATEGIES = {
    "maxcount": MaxCountStrategy,
    "minhops": MinHopsStrategy,
    "random": RandomReplacementStrategy,
    "static": StaticStrategy,
}


def make_reconfig_strategy(name: str, **kwargs) -> ReconfigurationStrategy:
    """Construct a reconfiguration strategy by name."""
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise BestPeerError(
            f"unknown reconfiguration strategy {name!r}; known: {known}"
        ) from None
    return factory(**kwargs)
