"""The BestPeer node: everything a participant runs.

Wires together one host, its StorM store, the mobile-agent engine, the
LIGLO client, the direct-peer table, and the reconfiguration strategy.

Lifecycle (Section 2):

* :meth:`BestPeerNode.join` — register with a LIGLO server (getting a
  BPID and an initial peer list) and become a participant.
* :meth:`BestPeerNode.leave` / :meth:`BestPeerNode.rejoin` — churn: on
  rejoin the node announces its new IP to its LIGLO and refreshes every
  peer's address through that peer's own LIGLO, dropping peers whose
  LIGLO reports them offline.
* :meth:`BestPeerNode.issue_query` — flood a StorM search agent to the
  direct peers; answers stream straight back.
* :meth:`BestPeerNode.finish_query` — close the query and reconfigure:
  the strategy re-ranks current peers and responders and the node keeps
  the best ``k``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Sequence

from repro.agents.agent import Agent
from repro.agents.engine import PROTO_ANSWER, AgentEngine
from repro.agents.envelope import MODE_FLOOD
from repro.agents.messages import MODE_METADATA, AnswerMessage, BatchedAnswers
from repro.agents.storm_agent import StorMSearchAgent
from repro.agents.topk import TopKDigest, TopKSearchAgent, topk_bypassed
from repro.core import sharing
from repro.core.config import BestPeerConfig
from repro.core.discovery import (
    PROTO_DISCOVERY_REPORT,
    ContentReport,
    DiscoveryAgent,
    KnowledgeBase,
)
from repro.core.peers import PeerInfo, PeerTable
from repro.core.query import QueryHandle
from repro.core.reconfig import PeerObservation, ReconfigurationStrategy
from repro.core.routing import make_routing_strategy, routing_bypassed
from repro.core.sharing import (
    PROTO_ACTIVE,
    PROTO_ACTIVE_REPLY,
    PROTO_FETCH,
    PROTO_FETCH_REPLY,
    ActiveObject,
    ActiveReply,
    ActiveRequest,
    FetchReply,
    FetchRequest,
    ShareCatalog,
)
from repro.core.shipping import (
    CODE,
    DATA,
    PROTO_DATA_REPLY,
    PROTO_DATA_REQUEST,
    DataReply,
    DataRequest,
    PeerEstimate,
    make_shipping_policy,
)
from repro.errors import AccessDeniedError, BestPeerError, QueryError
from repro.ids import BPID, AgentId, QueryId, SerialCounter
from repro.liglo.client import LigloClient, RegistrationResult
from repro.net.address import IPAddress
from repro.net.message import Packet
from repro.net.network import Network
from repro.replication.agent import ReplicatedSearchAgent
from repro.replication.manager import ReplicationManager
from repro.storm.heapfile import RecordId
from repro.storm.store import StorM
from repro.util.randomness import derive_rng
from repro.util.tracing import NULL_TRACER, Tracer


class BestPeerNode:
    """One participant in a BestPeer network."""

    def __init__(
        self,
        network: Network,
        name: str,
        config: BestPeerConfig | None = None,
        storm: StorM | None = None,
        strategy: ReconfigurationStrategy | None = None,
        tracer: Tracer | None = None,
    ):
        self.config = config if config is not None else BestPeerConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.network = network
        self.name = name
        self.host = network.create_host(name, cpu_threads=self.config.cpu_threads)
        self.sim = network.sim
        self.storm = storm if storm is not None else StorM()
        self.peers = PeerTable(self.config.max_direct_peers)
        self.strategy = (
            strategy
            if strategy is not None
            else make_routing_strategy(self.config.strategy)
        )
        #: jitter stream for every retry this node performs; derived from
        #: the config seed and the node name, so runs replay bit-identically
        self._retry_rng = derive_rng(self.config.retry_seed, "retry", name)
        self.liglo = LigloClient(
            self.host,
            tracer=self.tracer,
            retry_policy=self.config.retry_policy,
            rng=self._retry_rng,
        )
        self.catalog = ShareCatalog()
        self.engine: AgentEngine | None = None
        self._queries: dict[QueryId, QueryHandle] = {}
        self._query_serials = SerialCounter()
        self._fetch_tokens = SerialCounter()
        #: token -> (callback, holder address, rid, failures so far)
        self._pending_fetches: dict[
            int,
            tuple[Callable[[FetchReply | None], None], IPAddress, RecordId, int],
        ] = {}
        #: token -> (callback, owner address, name, credential, failures)
        self._pending_actives: dict[
            int,
            tuple[Callable[[ActiveReply | None], None], IPAddress, str, str, int],
        ] = {}
        self.shipping = make_shipping_policy(self.config.shipping_policy)
        self._estimates: dict[BPID, PeerEstimate] = {}
        self._data_cache: dict[BPID, list] = {}
        #: token -> (peer bpid, handle, peer address, failures, expiry timer)
        self._pending_data: dict[int, tuple] = {}
        #: request timeouts by kind (fetch / active / data)
        self.request_timeouts: dict[str, int] = {}
        #: re-sends triggered by the retry policy (excludes LIGLO retries,
        #: which the LigloClient counts itself)
        self.request_retries = 0
        self.host.bind(PROTO_ANSWER, self._on_answer)
        self.host.bind(PROTO_FETCH, self._on_fetch)
        self.host.bind(PROTO_FETCH_REPLY, self._on_fetch_reply)
        self.host.bind(PROTO_ACTIVE, self._on_active)
        self.host.bind(PROTO_ACTIVE_REPLY, self._on_active_reply)
        self.host.bind(PROTO_DATA_REQUEST, self._on_data_request)
        self.host.bind(PROTO_DATA_REPLY, self._on_data_reply)
        self.knowledge = KnowledgeBase()
        self.host.bind(PROTO_DISCOVERY_REPORT, self._on_discovery_report)
        #: keywords already reported to our LIGLO's hint directory
        self._published_hints: set[str] = set()
        #: super-peer routing counters (hint directory consultations)
        self.hint_queries = 0
        self.hint_hits = 0
        self.hint_fallbacks = 0
        #: replica placement, invalidation, and hot-object caching;
        #: inert (no frames, no stores) under the default rf=1 policy
        self.replication = ReplicationManager(self)
        self.replication.bind()
        bind = getattr(self.strategy, "bind", None)
        if bind is not None:
            bind(self)

    # -- identity & membership -------------------------------------------------

    @property
    def bpid(self) -> BPID:
        """This node's BestPeer id (raises before it has one)."""
        if self.engine is None:
            raise BestPeerError(f"node {self.name} has not joined yet")
        return self.engine.local_bpid

    @property
    def joined(self) -> bool:
        return self.engine is not None

    def join(
        self,
        liglo_addresses: Sequence[IPAddress],
        on_joined: Callable[[RegistrationResult], None] | None = None,
    ) -> None:
        """Register with a LIGLO server and adopt its initial peer list."""
        if self.engine is not None:
            raise BestPeerError(f"node {self.name} already joined")

        def registered(result: RegistrationResult) -> None:
            if result.accepted:
                assert result.bpid is not None
                self._init_engine(result.bpid)
                now = self.sim.now
                for peer_bpid, peer_address in result.peers:
                    if not self.peers.is_full and peer_bpid not in self.peers:
                        self.peers.add(peer_bpid, peer_address, now)
                # Objects shared before the join can now be replicated:
                # the node has an identity and LIGLO-suggested peers.
                self.replication.flush_pending()
            if on_joined is not None:
                on_joined(result)

        self.liglo.register_any(liglo_addresses, registered)

    def assume_identity(self, bpid: BPID) -> None:
        """Take an identity without LIGLO (controlled experiments)."""
        if self.engine is not None:
            raise BestPeerError(f"node {self.name} already has an identity")
        self._init_engine(bpid)

    def _init_engine(self, bpid: BPID) -> None:
        self.engine = AgentEngine(
            self.host,
            bpid,
            services={"storm": self.storm, "node": self},
            costs=self.config.agent_costs,
            get_peers=self._flood_addresses,
            tracer=self.tracer,
        )

    def _flood_addresses(self) -> list[IPAddress]:
        """Relay fan-out: where a flood travelling *through* us goes next.

        The routing strategy shapes the list (ordering, fan-out caps);
        the default strategy behaviour — and ``REPRO_ROUTING=legacy`` —
        is every direct peer not suspected dead, in table order, so in a
        healthy network floods are unchanged until timeouts accumulate.
        Relays have no keyword context (the engine forwards clones
        before executing the agent), so keyword-aware ordering only
        applies at the initiator.
        """
        if routing_bypassed():
            return self.peers.live_addresses()
        flood = getattr(self.strategy, "flood_targets", None)
        if flood is None:
            return self.peers.live_addresses()
        return flood(None, self.peers.entries())

    def leave(self) -> None:
        """Disconnect from the network (the address lease is released)."""
        self.host.disconnect()

    def rejoin(
        self,
        on_refreshed: Callable[[], None] | None = None,
        on_failed: Callable[[Exception], None] | None = None,
    ) -> None:
        """Reconnect after churn, per Section 2's rejoin protocol.

        The node (1) reconnects under a fresh IP, (2) announces the new
        IP to its own LIGLO, and (3) asks each direct peer's registered
        LIGLO for that peer's current IP, updating or dropping the peer.

        With a retry policy configured, step (2) becomes a *verified*
        announce: it is retried per the backoff schedule, and if the
        LIGLO stays unreachable the whole budget, ``on_failed`` receives
        the :class:`~repro.errors.LigloUnreachableError` (or, without
        ``on_failed``, the error propagates out of the event loop).
        Step (3) then also changes shape: a peer whose LIGLO never
        answers is *kept but charged a timeout* — silence cannot
        distinguish a dead peer from a dead name server — while a LIGLO
        that answers "offline" still drops the peer.
        """
        self.host.connect()
        if self.engine is None:
            if on_refreshed is not None:
                on_refreshed()
            return
        # Objects shared while this node was offline can replicate now
        # that it is reachable again.
        self.replication.flush_pending()
        if self.liglo.bpid is not None:
            if self.config.retry_policy is not None:
                self.liglo.announce_verified(
                    on_ok=lambda: self._refresh_peers(on_refreshed),
                    on_failed=on_failed,
                )
                return
            self.liglo.announce()
        self._refresh_peers(on_refreshed)

    def _refresh_peers(self, on_refreshed: Callable[[], None] | None) -> None:
        pending = len(self.peers)
        if pending == 0:
            if on_refreshed is not None:
                on_refreshed()
            return
        remaining = [pending]  # mutable cell for the closures below

        def resolved(peer_bpid: BPID, reply) -> None:
            if reply is not None and reply.online and reply.address is not None:
                if peer_bpid in self.peers:
                    self.peers.update_address(peer_bpid, reply.address)
                    self.peers.note_alive(peer_bpid, self.sim.now)
            elif reply is None and self.config.retry_policy is not None:
                # The peer's LIGLO never answered (even with retries):
                # keep the peer — it may be fine — but charge a timeout
                # so repeated silence eventually marks it suspect.
                self._charge_timeout("rejoin", peer_bpid)
            elif peer_bpid in self.peers:
                # Peer is offline or its LIGLO vanished: drop it; a later
                # reconfiguration will fill the slot with a fresh peer.
                self.peers.remove(peer_bpid)
                self.tracer.record(
                    self.sim.now, "node", "drop-peer", node=self.name, peer=str(peer_bpid)
                )
            remaining[0] -= 1
            if remaining[0] == 0 and on_refreshed is not None:
                on_refreshed()

        for peer in self.peers.entries():
            self.liglo.resolve(
                peer.bpid,
                lambda reply, peer_bpid=peer.bpid: resolved(peer_bpid, reply),
            )

    # -- liveness ---------------------------------------------------------------

    def _charge_timeout(self, kind: str, bpid: BPID | None) -> None:
        """Count a request timeout and (maybe) turn its peer suspect."""
        self.request_timeouts[kind] = self.request_timeouts.get(kind, 0) + 1
        if bpid is None:
            return
        if self.peers.note_timeout(bpid, self.config.suspect_after):
            self.tracer.record(
                self.sim.now, "node", "peer-suspect", node=self.name, peer=str(bpid)
            )

    def _bpid_for_address(self, address: IPAddress) -> BPID | None:
        """Direct peer currently known at ``address`` (None otherwise)."""
        for peer in self.peers.entries():
            if peer.address == address:
                return peer.bpid
        return None

    def _retries_left(self, failures: int) -> bool:
        policy = self.config.retry_policy
        return policy is not None and policy.should_retry(failures)

    def _retry_after(self, failures: int) -> float:
        assert self.config.retry_policy is not None
        return self.config.retry_policy.delay(failures, self._retry_rng)

    # -- peer management ---------------------------------------------------------

    def add_peer(self, bpid: BPID, address: IPAddress) -> None:
        """Manually add a direct peer (topology setup, experiments)."""
        self.peers.add(bpid, address, self.sim.now)

    def connect_to(self, other: "BestPeerNode") -> None:
        """Convenience: make ``other`` a direct peer of this node."""
        assert other.host.address is not None
        self.add_peer(other.bpid, other.host.address)

    # -- sharing --------------------------------------------------------------------

    def share(self, keywords: Sequence[str], payload: bytes) -> RecordId:
        """Publish a static object into this node's sharable StorM store."""
        rid = self.storm.put(keywords, payload)
        self._publish_hints(keywords)
        self.replication.on_share((rid,))
        return rid

    def share_many(
        self, objects: Sequence[tuple[Sequence[str], bytes]]
    ) -> list[RecordId]:
        """Publish a batch of objects via StorM's bulk-load fast path."""
        rids = self.storm.put_many(objects)
        self._publish_hints(
            [keyword for keywords, _payload in objects for keyword in keywords]
        )
        self.replication.on_share(rids)
        return rids

    def unshare(self, rid: RecordId) -> None:
        """Retire a shared object: delete it and invalidate its replicas.

        Holders tombstone the record's version, so no in-flight or
        replayed replica push can ever resurrect the deleted content.
        """
        obj = self.storm.get(rid)
        self.storm.delete(rid)
        self.replication.on_delete(rid, obj.keywords)

    def reshare(
        self, rid: RecordId, keywords: Sequence[str], payload: bytes
    ) -> RecordId:
        """Republish a shared object with fresh keywords/content.

        The replacement gets a bumped version; every replica holder is
        told its copy went stale and lazily read-repairs from the new
        record (detecting a stale replica costs one invalidate frame,
        repairing it one ordinary out-of-network fetch).
        """
        old = self.storm.get(rid)
        self.storm.delete(rid)
        new_rid = self.storm.put(keywords, payload)
        self._publish_hints(keywords)
        new_keywords = self.storm.get(new_rid).keywords
        self.replication.on_reshare(rid, new_rid, old.keywords, new_keywords)
        return new_rid

    def _publish_hints(self, keywords: Sequence[str]) -> None:
        """Report newly shared keywords to our LIGLO's hint directory.

        Only when hint publishing is on (super-peer routing, or the
        ``publish_hints`` config flag for nodes that feed the directory
        without routing by it), and only for keywords not reported
        before, so repeated sharing costs no extra control traffic.
        """
        if routing_bypassed():
            return
        if not (
            self.config.publish_hints
            or getattr(self.strategy, "uses_hint_directory", False)
        ):
            return
        if self.liglo.bpid is None or not self.host.online:
            return
        from repro.storm.objects import normalize_keyword

        fresh = sorted(
            {normalize_keyword(keyword) for keyword in keywords}
            - self._published_hints
        )
        if not fresh:
            return
        self._published_hints.update(fresh)
        self.liglo.publish_hints(fresh)

    def share_active(
        self, name: str, data: bytes, element: sharing.ActiveElement
    ) -> ActiveObject:
        """Publish an active object guarded by ``element``."""
        obj = ActiveObject(name, data, element)
        self.catalog.register(obj)
        return obj

    # -- querying --------------------------------------------------------------------

    def issue_query(
        self,
        keyword: str,
        ttl: int | None = None,
        on_answer: Callable[[QueryHandle, AnswerMessage], None] | None = None,
        on_finish: Callable[[QueryHandle], None] | None = None,
        auto_finish_after: float | None = None,
    ) -> QueryHandle:
        """Flood a StorM search agent to the direct peers.

        Answers stream into the returned handle as they arrive.  If
        ``auto_finish_after`` is set, the query self-finishes once no
        answer has arrived for that long; otherwise the caller decides
        when to call :meth:`finish_query`.
        """
        if self.engine is None:
            raise BestPeerError(f"node {self.name} must join before querying")
        query_id = QueryId(self.bpid, self._query_serials.next())
        # In-network top-k is gated per call (REPRO_TOPK=off bypasses),
        # so k=None / bypassed runs stay bit-identical to legacy floods.
        top_k = self.config.top_k if not topk_bypassed() else None
        handle = QueryHandle(
            query_id=query_id,
            keyword=keyword,
            issued_at=self.sim.now,
            top_k=top_k,
            on_answer=on_answer,
            on_finish=on_finish,
        )
        self._queries[query_id] = handle
        mode = "metadata" if self.config.result_mode == MODE_METADATA else "direct"
        if top_k is not None:
            if self.config.search_own_store:
                if self.config.use_index:
                    handle.local_scored = self.storm.scored_search(keyword, top_k)
                else:
                    handle.local_scored = self.storm.scored_search_scan(
                        keyword, top_k
                    )
            # Seed the travelling accumulator with the initiator's own
            # top-k, so the threshold starts tightening at hop one.
            seed = [
                (score, self.bpid.liglo_id, self.bpid.node_id, rid.page_id, rid.slot)
                for score, rid, _obj in (
                    handle.local_scored.matches if handle.local_scored else ()
                )
            ]
            agent: Agent = TopKSearchAgent(
                keyword,
                top_k,
                mode=mode,
                use_index=self.config.use_index,
                entries=seed,
            )
        else:
            if self.config.search_own_store:
                if self.config.use_index:
                    handle.local_result = self.storm.search(keyword)
                else:
                    handle.local_result = self.storm.search_scan(keyword)
            cached = self.replication.cached_answers(keyword)
            if cached is not None:
                # Hot-query fast path: replay the cached answer set into
                # the fresh handle — no agents travel, no bytes move.
                self._replay_cached(handle, cached)
                if auto_finish_after is not None:
                    self._arm_auto_finish(handle, auto_finish_after)
                return handle
            if self.replication.enabled and self.replication.policy.replicates:
                # Replica-aware searches ship a different (slightly
                # larger) agent class, so they are dispatched only when
                # the initiator's policy actually places replicas —
                # rf=1 / REPRO_REPLICATION=off floods stay bit-identical.
                agent = ReplicatedSearchAgent(
                    keyword,
                    mode=mode,
                    use_index=self.config.use_index,
                )
                # If this very node holds a replica of a matching object
                # (agents never execute at the initiator), answer
                # ourselves — zero hops, zero traffic.
                self_answer = self.replication.self_answer(
                    query_id, keyword, mode, self.config.use_index
                )
                if self_answer is not None:
                    handle.record_answer(self_answer, self.sim.now)
            else:
                agent = StorMSearchAgent(
                    keyword,
                    mode=mode,
                    use_index=self.config.use_index,
                )
        for _ in self.peers.suspect_bpids():
            # The flood skips suspected-dead peers: the query still runs,
            # but the caller can see its answer set may be partial.
            handle.mark_degraded("suspect-peer-skipped")
        ttl_value = ttl if ttl is not None else self.config.ttl
        if (
            not routing_bypassed()
            and getattr(self.strategy, "uses_hint_directory", False)
            and self.liglo.bpid is not None
        ):
            self._dispatch_with_hints(handle, agent, ttl_value)
        else:
            self._dispatch_flood(handle, agent, ttl_value)
        self.tracer.record(
            self.sim.now,
            "node",
            "query",
            node=self.name,
            query=str(query_id),
            keyword=keyword,
        )
        if auto_finish_after is not None:
            self._arm_auto_finish(handle, auto_finish_after)
        return handle

    def _dispatch_flood(self, handle: QueryHandle, agent: Agent, ttl: int) -> None:
        """Flood the search agent, fan-out shaped by the routing strategy.

        Under ``REPRO_ROUTING=legacy`` (or with a strategy predating the
        routing framework) the engine pulls the fan-out from
        :meth:`_flood_addresses` itself — the pre-framework path.
        """
        assert self.engine is not None
        targets = None
        if not routing_bypassed():
            flood = getattr(self.strategy, "flood_targets", None)
            if flood is not None:
                targets = flood(handle.keyword, self.peers.entries())
        self.engine.dispatch(
            agent,
            query_id=handle.query_id,
            ttl=ttl,
            mode=MODE_FLOOD,
            targets=targets,
        )

    def _dispatch_with_hints(
        self, handle: QueryHandle, agent: Agent, ttl: int
    ) -> None:
        """Super-peer routing: ask our LIGLO who holds the keyword first.

        With hints, the agent ships straight to the holders with TTL 1 —
        no relaying, no duplicate-agent dedup traffic.  Without hints
        (empty directory, LIGLO outage) the query falls back to a plain
        flood, so recall is never worse than flooding.
        """
        self.hint_queries += 1

        def on_hints(reply) -> None:
            if handle.finished or self.engine is None:
                return
            holders = (
                []
                if reply is None
                else [
                    (bpid, address)
                    for bpid, address in reply.holders
                    if bpid != self.bpid
                ]
            )
            if not holders:
                self.hint_fallbacks += 1
                self.tracer.record(
                    self.sim.now, "node", "hint-fallback", node=self.name
                )
                self._dispatch_flood(handle, agent, ttl)
                return
            self.hint_hits += 1
            self.tracer.record(
                self.sim.now,
                "node",
                "hint-route",
                node=self.name,
                holders=len(holders),
            )
            self.engine.dispatch(
                agent,
                query_id=handle.query_id,
                ttl=1,
                mode=MODE_FLOOD,
                targets=[address for _bpid, address in holders],
            )

        from repro.storm.objects import normalize_keyword

        self.liglo.fetch_hints(
            normalize_keyword(handle.keyword),
            on_hints,
            timeout=self.config.hint_timeout,
        )

    def dispatch_agent(self, agent: Agent, **kwargs: Any) -> AgentId:
        """Send a custom agent into the network (compute sharing)."""
        if self.engine is None:
            raise BestPeerError(f"node {self.name} must join before dispatching")
        return self.engine.dispatch(agent, **kwargs)

    def _on_answer(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, TopKDigest):
            # A hop whose every match was dominated in-network: record
            # liveness and the dominated count, but no answer items.
            self.peers.note_alive(payload.responder, self.sim.now)
            handle = self._queries.get(payload.query_id)
            if handle is None or handle.finished:
                self.tracer.record(
                    self.sim.now, "node", "late-answer", node=self.name
                )
                return
            handle.record_digest(payload, self.sim.now)
            return
        # A batch is an encoding-layer coalescing only: each answer is
        # recorded individually, exactly as if it had arrived alone.
        answers = (
            payload.answers if isinstance(payload, BatchedAnswers) else (payload,)
        )
        for answer in answers:
            self.peers.note_alive(answer.responder, self.sim.now)
            self.replication.note_peer_alive(
                answer.responder, answer.responder_address
            )
            handle = self._queries.get(answer.query_id)
            if handle is None or handle.finished:
                self.tracer.record(
                    self.sim.now, "node", "late-answer", node=self.name
                )
                continue
            handle.record_answer(answer, self.sim.now)

    def _replay_cached(self, handle: QueryHandle, cached: tuple) -> None:
        """Serve a query from the result cache: replay the answer set.

        Each cached answer is re-keyed to the new query id and recorded
        as if it had just arrived; the handle is marked so reports can
        tell a zero-traffic cache hit from a network round.
        """
        handle.served_from_cache = True
        now = self.sim.now
        for answer in cached:
            handle.record_answer(replace(answer, query_id=handle.query_id), now)
        self.tracer.record(
            now,
            "replication",
            "cache-hit",
            node=self.name,
            query=str(handle.query_id),
            keyword=handle.keyword,
        )

    def _arm_auto_finish(self, handle: QueryHandle, quiet_period: float) -> None:
        def check() -> None:
            if handle.finished:
                return
            last_activity = handle.last_arrival or handle.issued_at
            deadline = last_activity + quiet_period
            if self.sim.now >= deadline:
                self.finish_query(handle)
            else:
                self.sim.schedule(deadline - self.sim.now, check)

        self.sim.schedule(quiet_period, check)

    # -- reconfiguration ----------------------------------------------------------------

    def finish_query(self, handle: QueryHandle) -> None:
        """Close a query and run the reconfiguration strategy."""
        if handle.query_id not in self._queries:
            raise QueryError(f"{handle.query_id} does not belong to this node")
        handle.mark_finished(self.sim.now)
        if handle.top_k is None and not handle.served_from_cache:
            # Exhaustive network rounds feed the hot-query result cache
            # (replayed hits must not re-cache themselves, and top-k
            # answer sets depend on the travelling threshold, so only
            # full answer sets are cacheable).
            self.replication.cache_answers(handle.keyword, tuple(handle.answers))
        self._reconfigure(handle)

    def _reconfigure(self, handle: QueryHandle) -> None:
        observations = self._observations_from(handle)
        observe = getattr(self.strategy, "observe", None)
        if observe is not None:
            observe(handle.keyword, observations)
        selector = getattr(self.strategy, "select_for", None)
        if selector is not None:
            selected = selector(
                observations, self.config.max_direct_peers, keyword=handle.keyword
            )
        else:  # a pre-framework strategy with only the two-arg contract
            selected = self.strategy.select(observations, self.config.max_direct_peers)
        before = set(self.peers.bpids())
        now = self.sim.now
        new_entries = []
        for obs in selected:
            existing = self.peers.get(obs.bpid)
            entry = PeerInfo(
                bpid=obs.bpid,
                address=obs.address,
                added_at=existing.added_at if existing else now,
                last_answers=obs.answers,
                last_hops=obs.hops,
                total_answers=(existing.total_answers if existing else 0) + obs.answers,
                timeouts=existing.timeouts if existing else 0,
                suspect=existing.suspect if existing else False,
                last_seen=existing.last_seen if existing else 0.0,
            )
            new_entries.append(entry)
        self.peers.replace_all(new_entries)
        after = set(self.peers.bpids())
        if before != after:
            self.tracer.record(
                now,
                "node",
                "reconfigure",
                node=self.name,
                added=sorted(str(b) for b in after - before),
                dropped=sorted(str(b) for b in before - after),
            )

    def _observations_from(self, handle: QueryHandle) -> list[PeerObservation]:
        """Merge current peers and responders into strategy input.

        Suspected-dead peers are left out, so the strategy can never
        re-select them: their slots backfill with responders instead
        (evict-and-backfill).  A suspect that answered this very query
        was cleared by ``note_alive`` before this runs, so it competes
        normally.
        """
        merged: dict[BPID, PeerObservation] = {}
        for peer in self.peers.entries():
            if peer.suspect:
                continue
            merged[peer.bpid] = PeerObservation(
                bpid=peer.bpid, address=peer.address, is_current=True
            )
        totals: dict[BPID, tuple[int, int, IPAddress]] = {}
        for answer in handle.answers:
            if answer.responder == self.bpid:
                continue
            count, _hops, _address = totals.get(answer.responder, (0, 0, None))
            totals[answer.responder] = (
                count + answer.answer_count,
                answer.hops,
                answer.responder_address,
            )
        for bpid, (count, hops, address) in totals.items():
            current = bpid in merged
            merged[bpid] = PeerObservation(
                bpid=bpid,
                address=address,
                answers=count,
                hops=hops,
                is_current=current,
            )
        return list(merged.values())

    # -- offline discovery -------------------------------------------------------------

    def discover(self, ttl: int | None = None) -> None:
        """Flood a :class:`DiscoveryAgent` to map the network's content.

        Reports stream back into :attr:`knowledge` (and feed the
        shipping-policy store-size estimates) as they arrive; run the
        simulator to let the sweep finish.  This is the paper's offline
        statistics collection.
        """
        if self.engine is None:
            raise BestPeerError(f"node {self.name} must join before discovery")
        self.engine.dispatch(
            DiscoveryAgent(), ttl=ttl if ttl is not None else self.config.ttl
        )

    def _on_discovery_report(self, packet: Packet) -> None:
        report: ContentReport = packet.payload
        self.knowledge.record(report, self.sim.now)
        self.record_store_size(report.responder, report.total_bytes)
        self.tracer.record(
            self.sim.now,
            "node",
            "discovery-report",
            node=self.name,
            peer=str(report.responder),
            objects=report.object_count,
        )

    # -- smart queries: code-shipping vs data-shipping ---------------------------------

    def smart_query(
        self,
        keyword: str,
        on_answer: Callable[[QueryHandle, AnswerMessage], None] | None = None,
        on_finish: Callable[[QueryHandle], None] | None = None,
    ) -> QueryHandle:
        """Single-hop query with a per-peer shipping decision.

        The paper's future-work optimizer: for each direct peer, the
        configured :class:`~repro.core.shipping.ShippingPolicy` decides
        whether to ship the *agent* to the data or to ship (or reuse a
        cached copy of) the *data* to the query.  Unlike
        :meth:`issue_query`, this only consults direct peers - it is a
        local-optimization primitive, not a network-wide flood.
        """
        if self.engine is None:
            raise BestPeerError(f"node {self.name} must join before querying")
        query_id = QueryId(self.bpid, self._query_serials.next())
        handle = QueryHandle(
            query_id=query_id,
            keyword=keyword,
            issued_at=self.sim.now,
            on_answer=on_answer,
            on_finish=on_finish,
        )
        self._queries[query_id] = handle
        if self.config.search_own_store:
            handle.local_result = self.storm.search_scan(keyword)
        code_targets: list[IPAddress] = []
        for peer in self.peers.entries():
            if peer.suspect:
                handle.mark_degraded("suspect-peer-skipped")
                continue
            estimate = self._estimates.setdefault(peer.bpid, PeerEstimate())
            estimate.queries_seen += 1
            estimate.cached = peer.bpid in self._data_cache
            choice = self.shipping.choose(estimate)
            self.tracer.record(
                self.sim.now,
                "node",
                "shipping-choice",
                node=self.name,
                peer=str(peer.bpid),
                choice=choice,
            )
            if choice == CODE:
                code_targets.append(peer.address)
            elif estimate.cached:
                self._answer_from_cache(handle, peer.bpid, peer.address)
            else:
                self._send_data_request(peer.bpid, handle, peer.address, failures=0)
        if code_targets:
            agent = StorMSearchAgent(
                keyword,
                mode="metadata" if self.config.result_mode == MODE_METADATA else "direct",
                use_index=self.config.use_index,
            )
            self.engine.dispatch(agent, query_id=query_id, ttl=1, targets=code_targets)
        return handle

    def record_store_size(self, bpid: BPID, store_bytes: int) -> None:
        """Feed a peer's observed store size into the shipping estimates
        (typically learned by a discovery agent)."""
        estimate = self._estimates.setdefault(bpid, PeerEstimate())
        estimate.store_bytes = store_bytes

    def invalidate_data_cache(self, bpid: BPID | None = None) -> None:
        """Drop cached peer datasets (all of them when ``bpid`` is None)."""
        if bpid is None:
            self._data_cache.clear()
        else:
            self._data_cache.pop(bpid, None)

    def has_cached_data(self, bpid: BPID) -> bool:
        """True when this node mirrors ``bpid``'s dataset locally."""
        return bpid in self._data_cache

    def _answer_from_cache(
        self, handle: QueryHandle, bpid: BPID, address: IPAddress
    ) -> None:
        """Evaluate a query against a locally cached peer dataset."""
        from repro.agents.messages import AnswerItem
        from repro.storm.heapfile import RecordId
        from repro.storm.objects import normalize_keyword

        objects = self._data_cache[bpid]
        needle = normalize_keyword(handle.keyword)
        items = []
        for position, (keywords, payload) in enumerate(objects):
            if needle in keywords:
                items.append(
                    AnswerItem(
                        rid=RecordId(0, position % 0xFFFF),
                        keywords=tuple(keywords),
                        size=len(payload),
                        payload=payload,
                    )
                )
        # Local evaluation still costs CPU time proportional to the scan.
        service = len(objects) * self.config.agent_costs.object_match_time
        answer = AnswerMessage(
            query_id=handle.query_id,
            responder=bpid,
            responder_address=address,
            hops=0,  # answered from the local cache
            items=tuple(items),
        )
        self.host.cpu.submit(service, self._record_cache_answer, handle, answer)

    def _record_cache_answer(self, handle: QueryHandle, answer: AnswerMessage) -> None:
        if not handle.finished and answer.items:
            handle.record_answer(answer, self.sim.now)

    def _on_data_request(self, packet: Packet) -> None:
        request: DataRequest = packet.payload
        objects = tuple(
            (obj.keywords, obj.payload) for _rid, obj in self.storm.scan()
        )
        # Reading the whole store out costs a full scan's worth of CPU.
        service = self.storm.count * self.config.agent_costs.object_match_time
        reply = DataReply(request.token, objects)
        self.host.cpu.submit(service, self._send_data_reply, packet.src, reply)

    def _send_data_reply(self, dst: IPAddress, reply: DataReply) -> None:
        if self.host.online:
            self.host.send(dst, PROTO_DATA_REPLY, reply)

    def _send_data_request(
        self, bpid: BPID, handle: QueryHandle, address: IPAddress, failures: int
    ) -> None:
        token = self._fetch_tokens.next()
        timer = self.sim.schedule(self.config.fetch_timeout, self._expire_data, token)
        self._pending_data[token] = (bpid, handle, address, failures, timer)
        self.host.send(address, PROTO_DATA_REQUEST, DataRequest(token))

    def _retry_data(
        self, bpid: BPID, handle: QueryHandle, address: IPAddress, failures: int
    ) -> None:
        if not self.host.online or handle.finished:
            return
        self._send_data_request(bpid, handle, address, failures)

    def _expire_data(self, token: int) -> None:
        pending = self._pending_data.pop(token, None)
        if pending is None:
            return
        bpid, handle, address, failures, _timer = pending
        failures += 1
        self._charge_timeout("data", bpid)
        if not handle.finished and self._retries_left(failures):
            self.request_retries += 1
            self.sim.schedule(
                self._retry_after(failures), self._retry_data, bpid, handle, address, failures
            )
            return
        if not handle.finished:
            # Graceful degradation: the query completes with whatever
            # other peers returned, flagged partial with the cause.
            handle.mark_degraded("data-timeout")
            self.tracer.record(
                self.sim.now, "node", "data-timeout", node=self.name, peer=str(bpid)
            )

    def _on_data_reply(self, packet: Packet) -> None:
        reply: DataReply = packet.payload
        pending = self._pending_data.pop(reply.token, None)
        if pending is None:
            return
        bpid, handle, _address, _failures, timer = pending
        timer.cancel()
        self.peers.note_alive(bpid, self.sim.now)
        self._data_cache[bpid] = list(reply.objects)
        estimate = self._estimates.setdefault(bpid, PeerEstimate())
        estimate.store_bytes = reply.total_bytes
        estimate.cached = True
        peer = self.peers.get(bpid)
        address = peer.address if peer is not None else packet.src
        if not handle.finished:
            self._answer_from_cache(handle, bpid, address)

    # -- out-of-network downloads (result mode 2) -------------------------------------

    def fetch(
        self,
        holder: IPAddress,
        rid: RecordId,
        callback: Callable[[FetchReply | None], None],
    ) -> None:
        """Fetch one object directly from its holder (None on timeout).

        With a retry policy configured, a timed-out fetch re-sends per
        the backoff schedule before the callback sees None.
        """
        self._send_fetch(holder, rid, callback, failures=0)

    def _send_fetch(
        self,
        holder: IPAddress,
        rid: RecordId,
        callback: Callable[[FetchReply | None], None],
        failures: int,
    ) -> None:
        token = self._fetch_tokens.next()
        self._pending_fetches[token] = (callback, holder, rid, failures)
        self.host.send(holder, PROTO_FETCH, FetchRequest(token, rid))
        self.sim.schedule(self.config.fetch_timeout, self._expire_fetch, token)

    def _retry_fetch(
        self,
        holder: IPAddress,
        rid: RecordId,
        callback: Callable[[FetchReply | None], None],
        failures: int,
    ) -> None:
        if not self.host.online:
            callback(None)
            return
        self._send_fetch(holder, rid, callback, failures)

    def _on_fetch(self, packet: Packet) -> None:
        request: FetchRequest = packet.payload
        try:
            obj = self.storm.get(request.rid)
            reply = FetchReply(request.token, request.rid, obj.payload, found=True)
        except Exception:  # removed/updated during the delay - Section 2
            # Replica-flagged rids (high page-id bit) answer from the
            # replica store, so downloads work against holders too.
            payload = self.replication.replica_payload(request.rid)
            if payload is not None:
                reply = FetchReply(request.token, request.rid, payload, found=True)
            else:
                reply = FetchReply(request.token, request.rid, None, found=False)
        self.host.send(packet.src, PROTO_FETCH_REPLY, reply)

    def _on_fetch_reply(self, packet: Packet) -> None:
        reply: FetchReply = packet.payload
        record = self._pending_fetches.pop(reply.token, None)
        if record is None:
            return
        bpid = self._bpid_for_address(packet.src)
        if bpid is not None:
            self.peers.note_alive(bpid, self.sim.now)
        record[0](reply)

    def _expire_fetch(self, token: int) -> None:
        record = self._pending_fetches.pop(token, None)
        if record is None:
            return
        callback, holder, rid, failures = record
        failures += 1
        self._charge_timeout("fetch", self._bpid_for_address(holder))
        if self._retries_left(failures):
            self.request_retries += 1
            self.sim.schedule(
                self._retry_after(failures), self._retry_fetch, holder, rid, callback, failures
            )
            return
        callback(None)

    # -- active objects ---------------------------------------------------------------------

    def request_active(
        self,
        owner: IPAddress,
        name: str,
        credential: str,
        callback: Callable[[ActiveReply | None], None],
    ) -> None:
        """Ask a peer's active object for content under ``credential``."""
        self._send_active(owner, name, credential, callback, failures=0)

    def _send_active(
        self,
        owner: IPAddress,
        name: str,
        credential: str,
        callback: Callable[[ActiveReply | None], None],
        failures: int,
    ) -> None:
        token = self._fetch_tokens.next()
        self._pending_actives[token] = (callback, owner, name, credential, failures)
        request = ActiveRequest(token, name, self.bpid, credential)
        self.host.send(owner, PROTO_ACTIVE, request)
        self.sim.schedule(self.config.fetch_timeout, self._expire_active, token)

    def _retry_active(
        self,
        owner: IPAddress,
        name: str,
        credential: str,
        callback: Callable[[ActiveReply | None], None],
        failures: int,
    ) -> None:
        if not self.host.online:
            callback(None)
            return
        self._send_active(owner, name, credential, callback, failures)

    def _on_active(self, packet: Packet) -> None:
        request: ActiveRequest = packet.payload
        obj = self.catalog.get(request.name)
        if obj is None:
            reply = ActiveReply(
                request.token, request.name, None, granted=False, reason="no such object"
            )
        else:
            try:
                content = obj.render(request.requester, request.credential)
                reply = ActiveReply(request.token, request.name, content, granted=True)
            except AccessDeniedError as exc:
                reply = ActiveReply(
                    request.token, request.name, None, granted=False, reason=str(exc)
                )
        self.host.send(packet.src, PROTO_ACTIVE_REPLY, reply)

    def _on_active_reply(self, packet: Packet) -> None:
        reply: ActiveReply = packet.payload
        record = self._pending_actives.pop(reply.token, None)
        if record is None:
            return
        bpid = self._bpid_for_address(packet.src)
        if bpid is not None:
            self.peers.note_alive(bpid, self.sim.now)
        record[0](reply)

    def _expire_active(self, token: int) -> None:
        record = self._pending_actives.pop(token, None)
        if record is None:
            return
        callback, owner, name, credential, failures = record
        failures += 1
        self._charge_timeout("active", self._bpid_for_address(owner))
        if self._retries_left(failures):
            self.request_retries += 1
            self.sim.schedule(
                self._retry_after(failures),
                self._retry_active,
                owner,
                name,
                credential,
                callback,
                failures,
            )
            return
        callback(None)

    # -- introspection ------------------------------------------------------------------

    def statistics(self) -> dict[str, int]:
        """Operational counters for monitoring and tests."""
        stats = {
            "queries_issued": len(self._queries),
            "answers_received": sum(
                len(handle.answers) for handle in self._queries.values()
            ),
            "messages_sent": self.host.messages_sent,
            "messages_received": self.host.messages_received,
            "bytes_sent": self.host.bytes_sent,
            "shared_objects": self.storm.count,
            "direct_peers": len(self.peers),
            "cached_peer_datasets": len(self._data_cache),
            "known_hosts": len(self.knowledge),
            # outstanding request tokens (leak auditing) and robustness
            "pending_fetches": len(self._pending_fetches),
            "pending_actives": len(self._pending_actives),
            "pending_data": len(self._pending_data),
            "pending_liglo": sum(self.liglo.pending_counts().values()),
            "suspect_peers": len(self.peers.suspect_bpids()),
            "queries_degraded": sum(
                1 for handle in self._queries.values() if handle.degraded
            ),
            "dominated_dropped": sum(
                handle.dominated_dropped for handle in self._queries.values()
            ),
            "request_timeouts": sum(self.request_timeouts.values()),
            "request_retries": self.request_retries,
            "liglo_retries": self.liglo.retries,
            "hint_queries": self.hint_queries,
            "hint_hits": self.hint_hits,
            "hint_fallbacks": self.hint_fallbacks,
            "hint_keywords_published": len(self._published_hints),
        }
        stats.update(self.replication.statistics())
        if self.engine is not None:
            stats["agents_executed"] = self.engine.agents_executed
            stats["agents_deduped"] = self.engine.agents_deduped
        return stats

    def __repr__(self) -> str:
        identity = str(self.engine.local_bpid) if self.engine else "unjoined"
        return f"BestPeerNode({self.name}, {identity}, peers={len(self.peers)})"
