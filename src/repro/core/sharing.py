"""Resource sharing beyond whole files.

Section 3.2: BestPeer shares (1) static files — stored objects in StorM,
(2) *active objects* — data guarded by owner-supplied executable code
that filters the content per requester ("depending on the access right
of the requester, the active node returns the appropriate content"),
and (3) computational power — requester-shipped algorithms, realized by
dispatching custom agents (see :mod:`repro.agents`).

This module provides the active-object machinery and the out-of-network
fetch messages used by result mode 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import AccessDeniedError, SharingError
from repro.ids import BPID
from repro.net import codec as wire
from repro.storm.heapfile import RecordId

PROTO_FETCH = "bestpeer.fetch"
PROTO_FETCH_REPLY = "bestpeer.fetch.reply"
PROTO_ACTIVE = "bestpeer.active"
PROTO_ACTIVE_REPLY = "bestpeer.active.reply"

#: An active element: (requester, credential, data) -> content to release.
#: Raise :class:`AccessDeniedError` to refuse the request outright.
ActiveElement = Callable[[BPID, str, bytes], bytes]


@dataclass(frozen=True, slots=True)
class FetchRequest:
    """Mode-2 follow-up: fetch one object directly from its holder."""

    token: int
    rid: RecordId


@dataclass(frozen=True, slots=True)
class FetchReply:
    """Fetch outcome; ``payload`` is None when the object has vanished
    ("it is possible that the target node may have removed the desired
    content or updated it during the period of delay")."""

    token: int
    rid: RecordId
    payload: bytes | None
    found: bool


@dataclass(frozen=True, slots=True)
class ActiveRequest:
    """Ask an owner's active object for (filtered) content."""

    token: int
    name: str
    requester: BPID
    credential: str


@dataclass(frozen=True, slots=True)
class ActiveReply:
    """Active-object outcome: granted content or a refusal reason."""

    token: int
    name: str
    content: bytes | None
    granted: bool
    reason: str = ""


class ActiveObject:
    """Owner-side active object: data plus its guarding active element."""

    def __init__(self, name: str, data: bytes, element: ActiveElement):
        if not name:
            raise SharingError("active object needs a non-empty name")
        self.name = name
        self.data = bytes(data)
        self.element = element

    def render(self, requester: BPID, credential: str) -> bytes:
        """Run the active element for one requester.

        Returns the content the element chose to release; propagates
        :class:`AccessDeniedError` when it refuses.
        """
        return self.element(requester, credential, self.data)


class ShareCatalog:
    """A node's registry of named active objects."""

    def __init__(self):
        self._objects: dict[str, ActiveObject] = {}

    def register(self, obj: ActiveObject) -> None:
        if obj.name in self._objects:
            raise SharingError(f"active object {obj.name!r} already registered")
        self._objects[obj.name] = obj

    def unregister(self, name: str) -> None:
        if name not in self._objects:
            raise SharingError(f"no active object named {name!r}")
        del self._objects[name]

    def get(self, name: str) -> ActiveObject | None:
        return self._objects.get(name)

    def names(self) -> list[str]:
        return sorted(self._objects)


# -- compact wire registrations (type id block 0x02xx) -------------------------
#
# Requests are small fixed-shape control tokens and stay on the control
# codec; the payload-carrying *replies* register with the data-plane
# streaming codec below (type id block 0x10xx).

wire.register(
    FetchRequest,
    0x0201,
    (("token", wire.I64), ("rid", wire.RECORD_ID_CODEC)),
    sample=lambda: FetchRequest(token=9, rid=RecordId(3, 12)),
)
wire.register(
    ActiveRequest,
    0x0202,
    (
        ("token", wire.I64),
        ("name", wire.STR),
        ("requester", wire.BPID_CODEC),
        ("credential", wire.STR),
    ),
    sample=lambda: ActiveRequest(
        token=10, name="prices", requester=BPID("10.0.0.1", 7), credential="gold"
    ),
)

# -- data-plane wire registrations (type id block 0x10xx) ----------------------

from repro.net import datacodec as data

data.register(
    FetchReply,
    0x1003,
    (
        ("token", wire.I64),
        ("rid", wire.RECORD_ID_CODEC),
        ("payload", wire.opt(wire.BYTES)),
        ("found", wire.BOOL),
    ),
    sample=lambda: FetchReply(
        token=9, rid=RecordId(3, 12), payload=b"object-bytes", found=True
    ),
)
data.register(
    ActiveReply,
    0x1004,
    (
        ("token", wire.I64),
        ("name", wire.STR),
        ("content", wire.opt(wire.BYTES)),
        ("granted", wire.BOOL),
        ("reason", wire.STR),
    ),
    sample=lambda: ActiveReply(
        token=10, name="prices", content=b"gold-tier prices", granted=True
    ),
)
