"""Construction of whole BestPeer networks.

``build_network`` assembles the full stack — simulator, network fabric,
LIGLO server(s), N BestPeer nodes — runs the registration phase, and
(optionally) wires an explicit overlay topology into the nodes' peer
tables, exactly the controlled environment the paper's evaluation
methodology calls for.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Callable, Sequence

from repro.core.config import BestPeerConfig
from repro.core.node import BestPeerNode
from repro.errors import BestPeerError
from repro.liglo.server import LigloServer
from repro.net.address import AddressPool
from repro.net.link import LinkModel
from repro.net.network import Network
from repro.net.sharding import ShardCluster
from repro.sim import Simulator
from repro.storm.store import StorM
from repro.topology.builders import Topology
from repro.topology.partition import assign_shards
from repro.util.compression import Codec
from repro.util.tracing import NULL_TRACER, Tracer

#: ``REPRO_SHARDS=N`` runs every built deployment on the sharded kernel
#: with N shards; ``off``/``0``/unset keeps the serial kernel.
SHARDS_ENV_VAR = "REPRO_SHARDS"
#: ``REPRO_SHARD_MODE=hash|locality`` picks the node partitioner.
SHARD_MODE_ENV_VAR = "REPRO_SHARD_MODE"


def _resolve_shards(shards: int | None) -> int | None:
    """The effective shard count: explicit argument wins, else the env."""
    if shards is not None:
        if shards < 1:
            raise BestPeerError(f"need >= 1 shard, got {shards}")
        return shards
    raw = os.environ.get(SHARDS_ENV_VAR, "").strip().lower()
    if raw in ("", "off", "none", "0"):
        return None
    try:
        count = int(raw)
    except ValueError:
        raise BestPeerError(
            f"{SHARDS_ENV_VAR}={raw!r} is not a shard count (or 'off')"
        ) from None
    if count < 1:
        raise BestPeerError(f"{SHARDS_ENV_VAR} must be >= 1, got {count}")
    return count


class BestPeerNetwork:
    """A built BestPeer deployment: simulator, fabric, LIGLOs, nodes."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        liglo_servers: list[LigloServer],
        nodes: list[BestPeerNode],
        tracer: Tracer,
        cluster: ShardCluster | None = None,
    ):
        self.sim = sim
        self.network = network
        self.liglo_servers = liglo_servers
        self.nodes = nodes
        self.tracer = tracer
        #: the shard cluster behind ``sim``/``network`` (None on the
        #: serial kernel); ``run_distributed`` needs it
        self.cluster = cluster

    @property
    def shard_count(self) -> int:
        return 1 if self.cluster is None else self.cluster.shard_count

    @property
    def base(self) -> BestPeerNode:
        """The designated query initiator (node 0 by convention)."""
        return self.nodes[0]

    def node(self, index: int) -> BestPeerNode:
        return self.nodes[index]

    def __len__(self) -> int:
        return len(self.nodes)

    def apply_topology(self, topology: Topology) -> None:
        """Replace every node's peer table with the topology's edges.

        The topology's base maps to ``self.nodes[0]``; other indices map
        one-to-one.  Peer links are installed in both directions (the
        paper's logical connections are symmetric in the experiments).
        """
        if topology.node_count != len(self.nodes):
            raise BestPeerError(
                f"topology has {topology.node_count} nodes, network has "
                f"{len(self.nodes)}"
            )
        for node in self.nodes:
            node.peers.replace_all([])
        for a, b in sorted(topology.edges):
            self.nodes[a].connect_to(self.nodes[b])
            self.nodes[b].connect_to(self.nodes[a])

    def populate(
        self, fill: Callable[[BestPeerNode, int], None], skip_base: bool = False
    ) -> None:
        """Run ``fill(node, index)`` for every node (workload loading)."""
        for index, node in enumerate(self.nodes):
            if skip_base and index == 0:
                continue
            fill(node, index)


def build_network(
    node_count: int,
    config: BestPeerConfig | Sequence[BestPeerConfig] | None = None,
    topology: Topology | None = None,
    liglo_count: int = 1,
    liglo_check_interval: float | None = None,
    default_link: LinkModel | None = None,
    codec: Codec | None = None,
    tracer: Tracer | None = None,
    sim: Simulator | None = None,
    storm_factory: Callable[[int], "StorM"] | None = None,
    strategy: str | None = None,
    shards: int | None = None,
    shard_mode: str | None = None,
) -> BestPeerNetwork:
    """Build a ready-to-run BestPeer network.

    Every node registers with a LIGLO server (round-robin across
    ``liglo_count`` servers); the registration exchange runs inside the
    simulator before this function returns, so nodes come back with
    BPIDs assigned.  When ``topology`` is given, the LIGLO-suggested
    initial peers are discarded and the explicit overlay is installed.

    ``config`` may be one shared :class:`BestPeerConfig` or a sequence
    with one entry per node ("nodes can redefine the number of direct
    peers ... and implement their own reconfiguration strategies").

    ``storm_factory`` supplies node ``i``'s pre-built store (experiment
    provisioning: bulk-loaded or template-cloned stores); without it
    every node opens an empty default store.

    ``strategy`` overrides the routing-strategy name on every node's
    config (strategy-comparison experiments that hold everything else
    constant); per-node configs still win by passing a ``config``
    sequence instead.

    ``shards`` (or ``REPRO_SHARDS=N``) builds the deployment on the
    sharded kernel: nodes partitioned across ``N`` shard simulators
    (``shard_mode``/``REPRO_SHARD_MODE``: ``hash`` default or
    ``locality``), LIGLOs and the base node pinned to shard 0, and
    ``deployment.sim``/``deployment.network`` become the lockstep
    facades — bit-identical to the serial kernel, including
    ``shards=1``.  Passing an explicit ``sim`` is incompatible with
    sharding (the facade owns its shard simulators); an env-derived
    shard count is then ignored.
    """
    if node_count < 1:
        raise BestPeerError(f"need >= 1 node, got {node_count}")
    if liglo_count < 1:
        raise BestPeerError(f"need >= 1 LIGLO server, got {liglo_count}")
    if topology is not None and topology.node_count != node_count:
        raise BestPeerError(
            f"topology size {topology.node_count} != node count {node_count}"
        )
    if isinstance(config, BestPeerConfig) or config is None:
        shared = config if config is not None else BestPeerConfig()
        configs = [shared] * node_count
    else:
        configs = list(config)
        if len(configs) != node_count:
            raise BestPeerError(
                f"{len(configs)} configs for {node_count} nodes"
            )
    if strategy is not None:
        configs = [replace(cfg, strategy=strategy) for cfg in configs]
    tracer = tracer if tracer is not None else NULL_TRACER
    pool = AddressPool(size=max(256, 2 * (node_count + liglo_count)))
    shard_count = _resolve_shards(shards)
    if sim is not None and shard_count is not None:
        if shards is not None:
            raise BestPeerError("cannot combine an explicit sim with shards")
        shard_count = None  # env-derived sharding yields to a caller-owned sim
    cluster = None
    if shard_count is None:
        sim = sim if sim is not None else Simulator()
        network = Network(
            sim, pool=pool, default_link=default_link, codec=codec, tracer=tracer
        )
        node_networks = [network] * node_count
        liglo_network = network
    else:
        mode = (
            shard_mode
            if shard_mode is not None
            else os.environ.get(SHARD_MODE_ENV_VAR, "").strip().lower() or "hash"
        )
        cluster = ShardCluster(
            shard_count,
            pool=pool,
            default_link=default_link,
            codec=codec,
            tracer=tracer,
        )
        assignment = assign_shards(node_count, shard_count, topology, mode=mode)
        sim = cluster.sim
        network = cluster.view
        node_networks = [cluster.networks[assignment[i]] for i in range(node_count)]
        liglo_network = cluster.networks[0]
    servers = []
    for i in range(liglo_count):
        host = liglo_network.create_host(f"liglo-{i}")
        servers.append(
            LigloServer(
                host,
                initial_peers=0 if topology is not None else 5,
                check_interval=liglo_check_interval,
                tracer=tracer,
            )
        )
    nodes = []
    for i in range(node_count):
        node = BestPeerNode(
            node_networks[i],
            f"node-{i}",
            config=configs[i],
            tracer=tracer,
            storm=storm_factory(i) if storm_factory is not None else None,
        )
        server = servers[i % liglo_count]
        node.join([server.host.address])
        nodes.append(node)
    sim.run()  # completes every registration exchange
    unjoined = [node.name for node in nodes if not node.joined]
    if unjoined:
        raise BestPeerError(f"nodes failed to join: {unjoined}")
    deployment = BestPeerNetwork(sim, network, servers, nodes, tracer, cluster=cluster)
    if topology is not None:
        deployment.apply_topology(topology)
    return deployment
