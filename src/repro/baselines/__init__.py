"""The paper's comparison systems, built from scratch on the same substrate.

``client_server``  single-thread (SCS) and multi-thread (MCS) client/server
                   search over the same topologies: the query travels down
                   a tree of servers, results return *along the query
                   path* (relayed immediately — implementation 2 of the
                   paper's footnote 3)
``gnutella``       the Gnutella 0.4 protocol as the FURI servent speaks
                   it: fixed peers, QUERY flooding, QUERYHIT reverse-path
                   routing
"""

from repro.baselines.client_server import (
    CsDeployment,
    CsNode,
    CsQueryHandle,
    build_cs_network,
)
from repro.baselines.gnutella import (
    GnutellaDeployment,
    GnutellaQueryHandle,
    GnutellaServent,
    build_gnutella_network,
)

__all__ = [
    "CsNode",
    "CsQueryHandle",
    "CsDeployment",
    "build_cs_network",
    "GnutellaServent",
    "GnutellaQueryHandle",
    "GnutellaDeployment",
    "build_gnutella_network",
]
