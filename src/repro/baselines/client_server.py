"""Client/server baselines: SCS (single-thread) and MCS (multi-thread).

"The basic difference between CS and P2P is that ... like CS model, the
server must return its result to the client - as such the results must
be returned along the query path."

The overlay topology is oriented into a tree rooted at the base node.
A query travels down the tree as a plain keyword (cheap — no code
shipping, no agent reconstruction), every server runs the search
algorithm locally (same StorM cost model as the agents), and results
flow *back up the tree*, relayed hop by hop.  Each node reports ``done``
to its parent once its own search and all of its children's subtrees
have completed, which is how a connection-oriented CS system knows when
a conversation is over.

* **SCS** — every host has a single-threaded CPU, and a node handles its
  children *sequentially*: it queries child ``i+1`` only after child
  ``i``'s subtree reported done ("it has to complete the first operation
  before switching to the second node for another operation").
* **MCS** — multi-threaded CPUs; all children are queried in parallel.

Intermediate servers relay each result message immediately rather than
consolidating (implementation 2 of footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.costs import AgentCosts
from repro.errors import BestPeerError, TopologyError
from repro.ids import SerialCounter
from repro.net.address import AddressPool, IPAddress
from repro.net.link import LinkModel
from repro.net.message import Packet
from repro.net.network import Network
from repro.sim import Simulator
from repro.storm.store import SearchResult, StorM
from repro.topology.builders import Topology
from repro.util.compression import Codec
from repro.util.tracing import NULL_TRACER, Tracer

PROTO_CS_QUERY = "cs.query"
PROTO_CS_RESULTS = "cs.results"
PROTO_CS_DONE = "cs.done"

VARIANT_SCS = "scs"
VARIANT_MCS = "mcs"


@dataclass(frozen=True, slots=True)
class CsQuery:
    """A query travelling down the server tree."""

    query_id: int
    keyword: str


@dataclass(frozen=True, slots=True)
class CsResults:
    """One server's matches, relayed up the tree toward the base."""

    query_id: int
    responder: str
    answer_count: int
    answer_bytes: int
    payloads: tuple[bytes, ...]


@dataclass(frozen=True, slots=True)
class CsDone:
    """Subtree-completion signal from a child to its parent."""

    query_id: int


@dataclass
class CsQueryHandle:
    """Query bookkeeping at the base node."""

    query_id: int
    keyword: str
    issued_at: float
    #: (arrival time, responder name, answer count) in arrival order
    arrivals: list[tuple[float, str, int]] = field(default_factory=list)
    local_result: SearchResult | None = None
    done: bool = False
    done_at: float | None = None

    @property
    def network_answer_count(self) -> int:
        return sum(count for _, _, count in self.arrivals)

    @property
    def responders(self) -> set[str]:
        return {responder for _, responder, _ in self.arrivals}

    @property
    def completion_time(self) -> float | None:
        """Time from issue to the last received result message."""
        if not self.arrivals:
            return None
        return self.arrivals[-1][0] - self.issued_at


class _PerQueryState:
    """A relay node's bookkeeping for one query in flight."""

    __slots__ = ("parent", "keyword", "children_pending", "own_done", "queue")

    def __init__(
        self, parent: IPAddress | None, keyword: str, children: list[IPAddress]
    ):
        self.parent = parent
        self.keyword = keyword
        self.children_pending = len(children)
        self.own_done = False
        self.queue = list(children)  # SCS consumes this sequentially


class CsNode:
    """One server (and, toward its children, client) in the CS tree."""

    def __init__(
        self,
        network: Network,
        name: str,
        variant: str,
        storm: StorM | None = None,
        costs: AgentCosts | None = None,
        tracer: Tracer | None = None,
    ):
        if variant not in (VARIANT_SCS, VARIANT_MCS):
            raise BestPeerError(f"unknown CS variant {variant!r}")
        self.variant = variant
        self.name = name
        self.costs = costs if costs is not None else AgentCosts()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        threads = 1 if variant == VARIANT_SCS else 8
        self.host = network.create_host(name, cpu_threads=threads)
        self.sim = network.sim
        self.storm = storm if storm is not None else StorM()
        self.children: list[IPAddress] = []
        self._states: dict[int, _PerQueryState] = {}
        self._handles: dict[int, CsQueryHandle] = {}
        self._serials = SerialCounter()
        self.host.bind(PROTO_CS_QUERY, self._on_query)
        self.host.bind(PROTO_CS_RESULTS, self._on_results)
        self.host.bind(PROTO_CS_DONE, self._on_done)

    def set_children(self, children: list[IPAddress]) -> None:
        """Install this node's downstream servers (tree orientation)."""
        self.children = list(children)

    # -- base-node API -------------------------------------------------------

    def issue_query(self, keyword: str, search_own_store: bool = True) -> CsQueryHandle:
        """Start a query from this node (it becomes the tree root)."""
        query_id = self._serials.next()
        handle = CsQueryHandle(
            query_id=query_id, keyword=keyword, issued_at=self.sim.now
        )
        self._handles[query_id] = handle
        if search_own_store:
            handle.local_result = self.storm.search_scan(keyword)
        state = _PerQueryState(parent=None, keyword=keyword, children=self.children)
        state.own_done = True  # the base's own search is accounted locally
        self._states[query_id] = state
        query = CsQuery(query_id, keyword)
        self._dispatch_children(query, state)
        if state.children_pending == 0:
            self._finish(query_id, state)
        return handle

    # -- the server side -----------------------------------------------------

    def _on_query(self, packet: Packet) -> None:
        query: CsQuery = packet.payload
        state = _PerQueryState(
            parent=packet.src, keyword=query.keyword, children=self.children
        )
        self._states[query.query_id] = state
        if self.variant == VARIANT_MCS:
            # Children are queried immediately, in parallel with our own
            # search: full concurrency.
            self._dispatch_children(query, state)
        # Run the real search; charge its simulated cost before replying.
        result = self.storm.search_scan(query.keyword)
        service_time = (
            self.costs.execute_overhead
            + result.objects_examined * self.costs.object_match_time
            + result.io.physical_reads * self.costs.page_io_time
        )
        self.host.cpu.submit(service_time, self._own_search_done, query, state, result)

    def _own_search_done(
        self, query: CsQuery, state: _PerQueryState, result: SearchResult
    ) -> None:
        if not self.host.online:
            return
        if result.matches:
            message = CsResults(
                query_id=query.query_id,
                responder=self.name,
                answer_count=result.match_count,
                answer_bytes=result.answer_bytes,
                payloads=tuple(obj.payload for _, obj in result.matches),
            )
            assert state.parent is not None
            self.host.send(state.parent, PROTO_CS_RESULTS, message)
        state.own_done = True
        if self.variant == VARIANT_SCS:
            # Only now turn to the children, one conversation at a time.
            self._dispatch_children(query, state)
        self._maybe_complete(query.query_id, state)

    def _dispatch_children(self, query: CsQuery, state: _PerQueryState) -> None:
        if self.variant == VARIANT_MCS:
            for child in state.queue:
                self.host.send(child, PROTO_CS_QUERY, query)
            state.queue = []
        else:
            self._dispatch_next_child(query, state)

    def _dispatch_next_child(self, query: CsQuery, state: _PerQueryState) -> None:
        if state.queue:
            child = state.queue.pop(0)
            self.host.send(child, PROTO_CS_QUERY, query)

    # -- relaying -----------------------------------------------------------------

    def _on_results(self, packet: Packet) -> None:
        results: CsResults = packet.payload
        handle = self._handles.get(results.query_id)
        if handle is not None:
            handle.arrivals.append(
                (self.sim.now, results.responder, results.answer_count)
            )
            return
        state = self._states.get(results.query_id)
        if state is None or state.parent is None:
            return  # stale traffic
        # Implementation 2: relay immediately, no consolidation.
        self.host.send(state.parent, PROTO_CS_RESULTS, results)

    def _on_done(self, packet: Packet) -> None:
        done: CsDone = packet.payload
        state = self._states.get(done.query_id)
        if state is None:
            return
        state.children_pending -= 1
        if self.variant == VARIANT_SCS:
            # The finished child releases the single conversation slot.
            self._dispatch_next_child(CsQuery(done.query_id, state.keyword), state)
        self._maybe_complete(done.query_id, state)

    def _maybe_complete(self, query_id: int, state: _PerQueryState) -> None:
        if state.own_done and state.children_pending == 0:
            self._finish(query_id, state)

    def _finish(self, query_id: int, state: _PerQueryState) -> None:
        del self._states[query_id]
        handle = self._handles.get(query_id)
        if handle is not None:
            handle.done = True
            handle.done_at = self.sim.now
        elif state.parent is not None:
            self.host.send(state.parent, PROTO_CS_DONE, CsDone(query_id))


class CsDeployment:
    """A built CS network mirroring one overlay topology."""

    def __init__(self, sim: Simulator, network: Network, nodes: list[CsNode]):
        self.sim = sim
        self.network = network
        self.nodes = nodes

    @property
    def base(self) -> CsNode:
        return self.nodes[0]

    def node(self, index: int) -> CsNode:
        return self.nodes[index]

    def populate(self, fill, skip_base: bool = False) -> None:
        """Run ``fill(node, index)`` for every node."""
        for index, node in enumerate(self.nodes):
            if skip_base and index == 0:
                continue
            fill(node, index)


def build_cs_network(
    topology: Topology,
    variant: str = VARIANT_MCS,
    costs: AgentCosts | None = None,
    default_link: LinkModel | None = None,
    codec: Codec | None = None,
    tracer: Tracer | None = None,
    sim: Simulator | None = None,
    storm_factory=None,
) -> CsDeployment:
    """Build a CS deployment whose tree mirrors ``topology`` from its base.

    ``storm_factory(i)`` supplies node ``i``'s pre-built store
    (experiment provisioning); default is an empty store per node.
    """
    if not topology.is_connected():
        raise TopologyError("CS tree needs a connected topology")
    sim = sim if sim is not None else Simulator()
    tracer = tracer if tracer is not None else NULL_TRACER
    network = Network(
        sim,
        pool=AddressPool(size=max(256, 2 * topology.node_count)),
        default_link=default_link,
        codec=codec,
        tracer=tracer,
    )
    nodes = [
        CsNode(
            network,
            f"cs-{i}",
            variant,
            costs=costs,
            tracer=tracer,
            storm=storm_factory(i) if storm_factory is not None else None,
        )
        for i in range(topology.node_count)
    ]
    # Orient the topology into a BFS tree rooted at the base.
    hops = topology.hops_from_base()
    for index, node in enumerate(nodes):
        children = [
            nodes[neighbor].host.address
            for neighbor in topology.neighbors(index)
            if hops[neighbor] == hops[index] + 1
        ]
        node.set_children(children)
    return CsDeployment(sim, network, nodes)


# -- compact wire registrations (type id block 0x05xx) -------------------------
#
# CsResults stays on the pickle path: it carries search payloads (data
# plane), not a fixed-shape control header.

from repro.net import codec as wire

wire.register(
    CsQuery,
    0x0501,
    (("query_id", wire.I64), ("keyword", wire.STR)),
    sample=lambda: CsQuery(query_id=6, keyword="music"),
)
wire.register(
    CsDone,
    0x0502,
    (("query_id", wire.I64),),
    sample=lambda: CsDone(query_id=6),
)
