"""The Gnutella 0.4 protocol, as the FURI servent speaks it.

The comparison system of Section 4.6.  Key protocol behaviours modelled:

* a servent has a **fixed** set of peers — "a node has a fixed set of
  peers and there is no dynamic adjustment";
* QUERY descriptors flood with TTL/Hops and GUID-based duplicate
  suppression;
* QUERYHIT descriptors are routed **back along the reverse query
  path**, hop by hop, using each servent's GUID routing table — "the
  list of files have to be transmitted through the query traversal
  path!";
* hits carry the matching file *names* only ("it simply sends the list
  of files that matches the query"); actual downloads are direct
  HTTP-style transfers outside the protocol (not exercised by the
  paper's experiment, nor here);
* PING/PONG peer discovery with the same reverse-path routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.costs import AgentCosts
from repro.errors import TopologyError
from repro.ids import SerialCounter
from repro.net.address import AddressPool, IPAddress
from repro.net.link import LinkModel
from repro.net.message import Packet
from repro.net.network import Network
from repro.sim import Simulator
from repro.storm.store import StorM
from repro.topology.builders import Topology
from repro.util.compression import Codec
from repro.util.tracing import NULL_TRACER, Tracer

PROTO_QUERY = "gnutella.query"
PROTO_QUERYHIT = "gnutella.queryhit"
PROTO_PING = "gnutella.ping"
PROTO_PONG = "gnutella.pong"

DEFAULT_TTL = 7


@dataclass(frozen=True, slots=True)
class QueryDescriptor:
    """Gnutella QUERY: flooded to all peers."""

    guid: tuple[str, int]
    keyword: str
    ttl: int
    hops: int

    def hop(self) -> "QueryDescriptor":
        return QueryDescriptor(self.guid, self.keyword, self.ttl - 1, self.hops + 1)


@dataclass(frozen=True, slots=True)
class QueryHitDescriptor:
    """Gnutella QUERYHIT: routed back along the reverse query path."""

    guid: tuple[str, int]
    responder: str
    #: (file name, size) pairs - names only, like a real QUERYHIT
    files: tuple[tuple[str, int], ...]

    @property
    def answer_count(self) -> int:
        return len(self.files)


@dataclass(frozen=True, slots=True)
class PingDescriptor:
    """Gnutella PING: flooded peer discovery probe."""

    guid: tuple[str, int]
    ttl: int
    hops: int

    def hop(self) -> "PingDescriptor":
        return PingDescriptor(self.guid, self.ttl - 1, self.hops + 1)


@dataclass(frozen=True, slots=True)
class PongDescriptor:
    """Gnutella PONG: a servent's answer to a PING, reverse-routed."""

    guid: tuple[str, int]
    responder: str
    address: IPAddress
    shared_files: int


@dataclass
class GnutellaQueryHandle:
    """Query bookkeeping at the originating servent."""

    guid: tuple[str, int]
    keyword: str
    issued_at: float
    #: (arrival time, responder, hit count) in arrival order
    arrivals: list[tuple[float, str, int]] = field(default_factory=list)

    @property
    def network_answer_count(self) -> int:
        return sum(count for _, _, count in self.arrivals)

    @property
    def responders(self) -> set[str]:
        return {responder for _, responder, _ in self.arrivals}

    @property
    def completion_time(self) -> float | None:
        if not self.arrivals:
            return None
        return self.arrivals[-1][0] - self.issued_at


class GnutellaServent:
    """One Gnutella node (a FURI instance, minus the GUI)."""

    def __init__(
        self,
        network: Network,
        name: str,
        storm: StorM | None = None,
        costs: AgentCosts | None = None,
        tracer: Tracer | None = None,
    ):
        self.name = name
        self.costs = costs if costs is not None else AgentCosts()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # FURI is a Java GUI servent with a couple of worker threads:
        # relayed QUERYHITs queue behind the servent's own search work,
        # which is precisely why reverse-path result routing hurts.
        self.host = network.create_host(name, cpu_threads=2)
        self.sim = network.sim
        #: shared files live in the same storage substrate as BestPeer's
        self.storm = storm if storm is not None else StorM()
        self.peers: list[IPAddress] = []
        self._serials = SerialCounter()
        self._seen: set[tuple[str, int]] = set()
        #: GUID -> upstream address: the reverse-path routing table
        self._routes: dict[tuple[str, int], IPAddress] = {}
        self._handles: dict[tuple[str, int], GnutellaQueryHandle] = {}
        self._pongs: dict[tuple[str, int], list[PongDescriptor]] = {}
        self.queries_handled = 0
        self.hits_relayed = 0
        self.host.bind(PROTO_QUERY, self._on_query)
        self.host.bind(PROTO_QUERYHIT, self._on_queryhit)
        self.host.bind(PROTO_PING, self._on_ping)
        self.host.bind(PROTO_PONG, self._on_pong)

    def set_peers(self, peers: list[IPAddress]) -> None:
        """Install the fixed peer set."""
        self.peers = list(peers)

    # -- querying -----------------------------------------------------------------

    def issue_query(self, keyword: str, ttl: int = DEFAULT_TTL) -> GnutellaQueryHandle:
        """Flood a QUERY to all peers; hits route back here."""
        guid = (self.name, self._serials.next())
        self._seen.add(guid)
        handle = GnutellaQueryHandle(
            guid=guid, keyword=keyword, issued_at=self.sim.now
        )
        self._handles[guid] = handle
        descriptor = QueryDescriptor(guid, keyword, ttl - 1, 1)
        for peer in self.peers:
            self.host.send(peer, PROTO_QUERY, descriptor)
        return handle

    def _on_query(self, packet: Packet) -> None:
        query: QueryDescriptor = packet.payload
        if query.guid in self._seen:
            return
        self._seen.add(query.guid)
        self._routes[query.guid] = packet.src
        if query.ttl > 0:
            forwarded = query.hop()
            for peer in self.peers:
                if peer != packet.src:
                    self.host.send(peer, PROTO_QUERY, forwarded)
        # Search the shared files; same cost model as everywhere else.
        result = self.storm.search_scan(query.keyword)
        self.queries_handled += 1
        service_time = (
            self.costs.execute_overhead
            + result.objects_examined * self.costs.object_match_time
            + result.io.physical_reads * self.costs.page_io_time
        )
        if result.matches:
            files = tuple(
                (f"{self.name}/file-{rid.page_id}-{rid.slot}", obj.size)
                for rid, obj in result.matches
            )
            hit = QueryHitDescriptor(query.guid, self.name, files)
            upstream = packet.src
            self.host.cpu.submit(service_time, self._send_hit, upstream, hit)
        else:
            self.host.cpu.submit(service_time, lambda: None)

    def _send_hit(self, upstream: IPAddress, hit: QueryHitDescriptor) -> None:
        if self.host.online:
            self.host.send(upstream, PROTO_QUERYHIT, hit)

    def _on_queryhit(self, packet: Packet) -> None:
        hit: QueryHitDescriptor = packet.payload
        handle = self._handles.get(hit.guid)
        if handle is not None:
            handle.arrivals.append((self.sim.now, hit.responder, hit.answer_count))
            return
        upstream = self._routes.get(hit.guid)
        if upstream is None:
            return  # route expired: the hit is dropped, per the protocol
        self.hits_relayed += 1
        self.host.send(upstream, PROTO_QUERYHIT, hit)

    # -- ping / pong ---------------------------------------------------------------

    def ping_network(self, ttl: int = DEFAULT_TTL) -> tuple[str, int]:
        """Flood a PING; pongs collect in :meth:`pongs_for`."""
        guid = (self.name, self._serials.next())
        self._seen.add(guid)
        self._pongs[guid] = []
        descriptor = PingDescriptor(guid, ttl - 1, 1)
        for peer in self.peers:
            self.host.send(peer, PROTO_PING, descriptor)
        return guid

    def pongs_for(self, guid: tuple[str, int]) -> list[PongDescriptor]:
        return list(self._pongs.get(guid, []))

    def bootstrap(
        self,
        seed: IPAddress,
        max_peers: int = 8,
        ttl: int = DEFAULT_TTL,
        settle_time: float = 2.0,
    ) -> None:
        """Join the overlay through one known servent (the host cache).

        The classic Gnutella join: connect to a single seed, flood a
        PING, collect PONGs (each carries a live servent's address), and
        after ``settle_time`` adopt up to ``max_peers`` of the
        discovered servents — preferring the ones sharing the most
        files — as the fixed peer set.
        """
        self.peers = [seed]
        guid = self.ping_network(ttl=ttl)
        self.sim.schedule(settle_time, self._adopt_from_pongs, guid, seed, max_peers)

    def _adopt_from_pongs(
        self, guid: tuple[str, int], seed: IPAddress, max_peers: int
    ) -> None:
        pongs = self.pongs_for(guid)
        ranked = sorted(pongs, key=lambda p: (-p.shared_files, p.responder))
        adopted: list[IPAddress] = [seed]
        for pong in ranked:
            if len(adopted) >= max_peers:
                break
            if pong.address not in adopted:
                adopted.append(pong.address)
        self.peers = adopted
        self.tracer.record(
            self.sim.now,
            "gnutella",
            "bootstrap",
            servent=self.name,
            peers=len(adopted),
        )

    def _on_ping(self, packet: Packet) -> None:
        ping: PingDescriptor = packet.payload
        if ping.guid in self._seen:
            return
        self._seen.add(ping.guid)
        self._routes[ping.guid] = packet.src
        if ping.ttl > 0:
            forwarded = ping.hop()
            for peer in self.peers:
                if peer != packet.src:
                    self.host.send(peer, PROTO_PING, forwarded)
        assert self.host.address is not None
        pong = PongDescriptor(ping.guid, self.name, self.host.address, self.storm.count)
        self.host.send(packet.src, PROTO_PONG, pong)

    def _on_pong(self, packet: Packet) -> None:
        pong: PongDescriptor = packet.payload
        if pong.guid in self._pongs:
            self._pongs[pong.guid].append(pong)
            return
        upstream = self._routes.get(pong.guid)
        if upstream is not None:
            self.host.send(upstream, PROTO_PONG, pong)


def scored_reference(stores, keyword: str, k: int | None = None):
    """Exhaustive scored oracle: the true global top-k over ``stores``.

    ``stores`` is an iterable of ``(label, StorM)`` pairs.  Every store
    is walked with :meth:`~repro.storm.store.StorM.scored_search_scan`
    — no index, no wire, no early termination — and the hits are ranked
    globally by ``(-score, label, page, slot)``.  Returns ``(score,
    label, rid)`` triples, truncated to ``k`` when given.

    This is the comparator any in-network top-k scheme is judged
    against: whatever it prunes, the score mass of its answer set must
    match what this flat scan over every store retrieves.
    """
    ranked = [
        (score, label, rid)
        for label, store in stores
        for score, rid, _obj in store.scored_search_scan(keyword).matches
    ]
    ranked.sort(key=lambda hit: (-hit[0], hit[1], hit[2].page_id, hit[2].slot))
    return ranked if k is None else ranked[:k]


class GnutellaDeployment:
    """A built Gnutella overlay."""

    def __init__(self, sim: Simulator, network: Network, servents: list[GnutellaServent]):
        self.sim = sim
        self.network = network
        self.servents = servents

    @property
    def base(self) -> GnutellaServent:
        return self.servents[0]

    def servent(self, index: int) -> GnutellaServent:
        return self.servents[index]

    def populate(self, fill, skip_base: bool = False) -> None:
        for index, servent in enumerate(self.servents):
            if skip_base and index == 0:
                continue
            fill(servent, index)

    def scored_reference(self, keyword: str, k: int | None = None):
        """Global top-k over every servent's store (exhaustive oracle)."""
        return scored_reference(
            [(servent.name, servent.storm) for servent in self.servents],
            keyword,
            k,
        )


def build_gnutella_network(
    topology: Topology,
    costs: AgentCosts | None = None,
    default_link: LinkModel | None = None,
    codec: Codec | None = None,
    tracer: Tracer | None = None,
    sim: Simulator | None = None,
    storm_factory=None,
) -> GnutellaDeployment:
    """Build a Gnutella overlay mirroring ``topology``.

    ``storm_factory(i)`` supplies servent ``i``'s pre-built store
    (experiment provisioning); default is an empty store per servent.
    """
    if topology.node_count < 1:
        raise TopologyError("need at least one servent")
    sim = sim if sim is not None else Simulator()
    tracer = tracer if tracer is not None else NULL_TRACER
    network = Network(
        sim,
        pool=AddressPool(size=max(256, 2 * topology.node_count)),
        default_link=default_link,
        codec=codec,
        tracer=tracer,
    )
    servents = [
        GnutellaServent(
            network,
            f"gnut-{i}",
            costs=costs,
            tracer=tracer,
            storm=storm_factory(i) if storm_factory is not None else None,
        )
        for i in range(topology.node_count)
    ]
    for index, servent in enumerate(servents):
        servent.set_peers(
            [servents[neighbor].host.address for neighbor in topology.neighbors(index)]
        )
    return GnutellaDeployment(sim, network, servents)


# -- compact wire registrations (type id block 0x04xx) -------------------------

from repro.net import codec as wire

_SAMPLE_GUID = ("node-3", 17)

wire.register(
    QueryDescriptor,
    0x0401,
    (
        ("guid", wire.GUID_CODEC),
        ("keyword", wire.STR),
        ("ttl", wire.I32),
        ("hops", wire.U32),
    ),
    sample=lambda: QueryDescriptor(_SAMPLE_GUID, "music", 5, 2),
)
wire.register(
    QueryHitDescriptor,
    0x0402,
    (
        ("guid", wire.GUID_CODEC),
        ("responder", wire.STR),
        ("files", wire.seq(wire.pair(wire.STR, wire.I64))),
    ),
    sample=lambda: QueryHitDescriptor(
        _SAMPLE_GUID, "node-9", (("music-0004", 512), ("music-0011", 512))
    ),
)
wire.register(
    PingDescriptor,
    0x0403,
    (("guid", wire.GUID_CODEC), ("ttl", wire.I32), ("hops", wire.U32)),
    sample=lambda: PingDescriptor(_SAMPLE_GUID, 5, 2),
)
wire.register(
    PongDescriptor,
    0x0404,
    (
        ("guid", wire.GUID_CODEC),
        ("responder", wire.STR),
        ("address", wire.IPADDR_CODEC),
        ("shared_files", wire.I64),
    ),
    sample=lambda: PongDescriptor(
        _SAMPLE_GUID, "node-9", IPAddress("10.0.5.6"), 120
    ),
)
