"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each ablation isolates one design
decision of BestPeer (or of this reproduction's substrate) and measures
its effect, using the same harness as the figure experiments.
"""

from __future__ import annotations

from repro.agents.costs import AgentCosts
from repro.eval.experiment import FigureResult
from repro.eval.figures import FigureParams, _bestpeer_runs
from repro.eval.metrics import completion_time
from repro.storm.disk import InMemoryDisk
from repro.storm.replacement import make_strategy
from repro.storm.store import StorM
from repro.topology.builders import line, tree
from repro.util.compression import GzipCodec, IdentityCodec
from repro.workloads.corpus import KeywordCorpus, generate_objects
from repro.workloads.placement import AnswerPlacement
from repro.workloads.replication import ReplicationSpec

#: Strategies compared by the reconfiguration ablation.
RECONFIG_STRATEGIES = ("maxcount", "minhops", "random", "static")


def ablation_strategy(
    params: FigureParams | None = None,
    node_count: int = 16,
    holder_count: int = 3,
) -> FigureResult:
    """Reconfiguration strategies head to head.

    A line overlay with answers at a few far nodes maximizes what a
    strategy can win: completion time per run, per strategy.  Expected:
    static never improves; maxcount/minhops drop sharply after run 1;
    random sits in between.
    """
    params = params if params is not None else FigureParams()
    topology = line(node_count)
    placement = AnswerPlacement(
        node_count=node_count, holder_count=holder_count, seed=params.seed
    )
    result = FigureResult(
        figure="Ablation A1",
        title="Reconfiguration strategy comparison",
        x_label="run",
        y_label="completion time (s)",
        notes=f"line of {node_count}; answers at {sorted(placement.holders)}",
    )
    for strategy in RECONFIG_STRATEGIES:
        runs = _bestpeer_runs(
            topology,
            reconfigurable=strategy != "static",
            params=params,
            keyword=placement.keyword,
            placement=placement,
            strategy=strategy,
        )
        for run_index, run in enumerate(runs, start=1):
            result.add_point(strategy, run_index, completion_time(run))
    return result


def ablation_compression(
    params: FigureParams | None = None, node_count: int = 15
) -> FigureResult:
    """GZIP message compression on vs. off.

    The prototype gzips every agent and message.  Compression shrinks
    the (highly compressible) agent source and answer metadata, trading
    wire time for nothing in this model (CPU cost of gzip is not
    charged, as the paper treats it as transparent).
    """
    params = params if params is not None else FigureParams()
    topology = tree(node_count, branching=2)
    result = FigureResult(
        figure="Ablation A2",
        title="GZIP compression on vs off",
        x_label="run",
        y_label="completion time (s)",
        notes=f"tree of {node_count} nodes; BPR",
    )
    for label, codec in [("gzip", GzipCodec()), ("off", IdentityCodec())]:
        runs = _bestpeer_runs(topology, True, params, codec=codec)
        for run_index, run in enumerate(runs, start=1):
            result.add_point(label, run_index, completion_time(run))
    return result


def ablation_ttl(
    params: FigureParams | None = None,
    node_count: int = 16,
    ttls: tuple[int, ...] = (2, 4, 8, 12, 16),
) -> FigureResult:
    """Agent TTL: answer coverage vs. completion time.

    On a line, TTL directly caps the reachable prefix: small TTLs answer
    fast but miss far nodes.  Series: responders reached, completion.
    """
    params = params if params is not None else FigureParams()
    topology = line(node_count)
    result = FigureResult(
        figure="Ablation A3",
        title="Agent TTL: coverage vs completion",
        x_label="ttl",
        y_label="responders / completion time (s)",
        notes=f"line of {node_count}; static peers; every node has answers",
    )
    for ttl in ttls:
        runs = _bestpeer_runs(topology, False, params, ttl=ttl)
        last = runs[-1]
        result.add_point("responders", ttl, len({a.responder for a in last}))
        result.add_point("completion (s)", ttl, completion_time(last))
    return result


def ablation_result_mode(
    params: FigureParams | None = None, node_count: int = 15
) -> FigureResult:
    """Result mode 1 (direct answers) vs. mode 2 (metadata only).

    Mode 2 answers arrive sooner (no payloads on the wire); the cost is
    the later out-of-network fetch round trip per wanted object.
    """
    params = params if params is not None else FigureParams()
    topology = tree(node_count, branching=2)
    result = FigureResult(
        figure="Ablation A4",
        title="Result mode: direct answers vs metadata",
        x_label="run",
        y_label="completion time (s)",
        notes=f"tree of {node_count} nodes; BPS so runs are comparable",
    )
    for mode in ("direct", "metadata"):
        runs = _bestpeer_runs(topology, False, params, result_mode=mode)
        for run_index, run in enumerate(runs, start=1):
            result.add_point(mode, run_index, completion_time(run))
    return result


def ablation_replication(
    params: FigureParams | None = None,
    node_count: int = 16,
    factors: tuple[int, ...] = (1, 2, 4, 8),
    distinct_objects: int = 5,
    placement_seeds: int = 5,
) -> FigureResult:
    """Replication factor vs. time-to-first-answer (paper future work).

    The paper ran with exactly one copy of every object; its future work
    asks how replication would help.  Sweep: each of
    ``distinct_objects`` objects is stored at ``factor`` random nodes of
    a 16-node *line* (so distance to the nearest replica matters), over
    several random placements.  Expected: the *first* answer arrives
    sooner as replicas multiply (some copy lands near the base), while
    completion does not improve — the farthest copy still answers last.
    """
    params = params if params is not None else FigureParams()
    topology = line(node_count)
    result = FigureResult(
        figure="Ablation A6",
        title="Replication factor vs response latency",
        x_label="replication factor",
        y_label="seconds",
        notes=(
            f"{distinct_objects} distinct objects on a line of {node_count}; "
            f"static peers; averaged over {placement_seeds} random placements"
        ),
    )
    for factor in factors:
        first_answers = []
        completions = []
        for seed_offset in range(placement_seeds):
            spec = ReplicationSpec(
                node_count=node_count,
                factor=factor,
                distinct_objects=distinct_objects,
                object_size=params.object_size,
                seed=params.seed + seed_offset,
            )
            runs = _bestpeer_runs(
                topology, False, params, keyword=spec.keyword, placement=spec
            )
            last_run = runs[-1]  # classes cached: the steady-state run
            first_answers.append(min(arrival.time for arrival in last_run))
            completions.append(completion_time(last_run))
        result.add_point(
            "first answer (s)", factor, sum(first_answers) / len(first_answers)
        )
        result.add_point(
            "completion (s)", factor, sum(completions) / len(completions)
        )
    return result


def ablation_shipping(
    params: FigureParams | None = None,
    node_count: int = 4,
    query_count: int = 6,
    store_objects: int = 150,
) -> FigureResult:
    """Code- vs data-shipping over repeated queries (paper future work).

    A star of identical small stores queried repeatedly.
    ``always-code`` pays the agent round trip for every query;
    ``always-data`` pays one up-front mirror transfer per peer, then
    answers locally for near nothing; ``adaptive`` discovers the store
    sizes and — with its default ten-query amortization horizon —
    correctly picks the data side of the trade.  The series are
    *cumulative* elapsed simulated seconds after each query: the
    always-code line is straight, the data lines start higher and go
    flat, and they cross after a few queries — the amortization picture
    the paper's future-work optimizer is about.
    """
    params = params if params is not None else FigureParams()
    from repro.core.builder import build_network
    from repro.core.config import BestPeerConfig
    from repro.topology.builders import star

    result = FigureResult(
        figure="Ablation A7",
        title="Shipping policy amortization over repeated queries",
        x_label="queries issued",
        y_label="cumulative elapsed (s)",
        notes=(
            f"star of {node_count}; {store_objects} x "
            f"{params.object_size}B objects per peer"
        ),
    )
    corpus = KeywordCorpus(params.corpus_size)
    keyword = corpus.keyword(0)
    for policy in ("always-code", "always-data", "adaptive"):
        config = BestPeerConfig(
            shipping_policy=policy,
            agent_costs=params.costs,
            search_own_store=False,
            max_direct_peers=max(8, node_count),
        )
        deployment = build_network(node_count, config=config, topology=star(node_count))
        for index, node in enumerate(deployment.nodes[1:], start=1):
            node.share_many(
                [
                    (spec.keywords, spec.payload)
                    for spec in generate_objects(
                        index,
                        count=store_objects,
                        size=params.object_size,
                        corpus=corpus,
                        seed=params.seed,
                    )
                ]
            )
            if params.warm_buffers:
                node.storm.search_scan(keyword)
        if policy == "adaptive":
            # The optimizer needs store-size estimates: discover first.
            deployment.base.discover()
            deployment.sim.run()
        cumulative = 0.0
        for query_number in range(1, query_count + 1):
            start = deployment.sim.now
            handle = deployment.base.smart_query(keyword)
            deployment.sim.run()
            cumulative += (handle.last_arrival or start) - start
            result.add_point(policy, query_number, cumulative)
    return result


def ablation_buffer_strategy(
    strategies: tuple[str, ...] = ("lru", "mru", "fifo", "clock", "lru-k"),
    objects: int = 1000,
    object_size: int = 1024,
    pool_size: int = 128,
    scans: int = 4,
    costs: AgentCosts | None = None,
) -> FigureResult:
    """StorM replacement strategies under the agent's sequential scan.

    The agent's full scan is a sequential-flood access pattern: LRU
    caches the *front* of the file and loses it before re-use, while MRU
    keeps a stable prefix resident — the classic result the extensible-
    replacement design exists to exploit.  The y value is the simulated
    search service time derived from buffer misses.
    """
    costs = costs if costs is not None else AgentCosts()
    corpus = KeywordCorpus()
    result = FigureResult(
        figure="Ablation A5",
        title="StorM buffer replacement under repeated scans",
        x_label="scan",
        y_label="simulated search time (s)",
        notes=f"{objects} x {object_size}B objects; pool of {pool_size} frames",
    )
    for name in strategies:
        store = StorM(
            disk=InMemoryDisk(),
            pool_size=pool_size,
            strategy=make_strategy(name),
        )
        store.put_many(
            [
                (spec.keywords, spec.payload)
                for spec in generate_objects(
                    0, count=objects, size=object_size, corpus=corpus
                )
            ]
        )
        for scan in range(1, scans + 1):
            search = store.search_scan(corpus.keyword(0))
            service = (
                search.objects_examined * costs.object_match_time
                + search.io.physical_reads * costs.page_io_time
            )
            result.add_point(name, scan, service)
    return result
