"""Evaluation harness: the paper's methodology, metrics, and figures.

Section 4.1 proposes evaluating P2P systems on (1) a fixed set of nodes
(a controlled environment), (2) the *rate* at which answers return, and
(3) the quantity of answers.  ``metrics`` implements those measures,
``experiment`` the repeated-run machinery, ``report`` text rendering,
and ``figures`` one experiment definition per figure of Section 4.
"""

from repro.eval.experiment import ExperimentRunner, FigureResult
from repro.eval.metrics import (
    Arrival,
    answer_curve,
    average_curves,
    response_curve,
)
from repro.eval.report import format_figure, format_table

__all__ = [
    "Arrival",
    "response_curve",
    "answer_curve",
    "average_curves",
    "FigureResult",
    "ExperimentRunner",
    "format_table",
    "format_figure",
]
