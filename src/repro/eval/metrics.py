"""Evaluation metrics.

All three systems (BestPeer, CS, Gnutella) reduce a query run to a list
of :class:`Arrival` records — who answered, when, with how many answers
— from which the paper's three measures derive:

* **completion time** — "the time when all answers from all nodes have
  been received" (Figure 5, Figure 8);
* **response curve** — "the point (K, T) indicates that K nodes have
  responded after T time units" (Figure 6);
* **answer curve** — cumulative number of answers over time (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError


@dataclass(frozen=True, slots=True)
class Arrival:
    """One answer message reaching the query initiator."""

    time: float  # relative to query issue
    responder: str
    answer_count: int


def completion_time(arrivals: list[Arrival]) -> float:
    """Time until the last answer arrived (0.0 when nothing arrived)."""
    if not arrivals:
        return 0.0
    return max(arrival.time for arrival in arrivals)


def response_curve(arrivals: list[Arrival]) -> list[tuple[int, float]]:
    """Figure-6 points: (K, T) - the K-th distinct responder's time."""
    seen: set[str] = set()
    points = []
    for arrival in sorted(arrivals, key=lambda a: a.time):
        if arrival.responder in seen:
            continue
        seen.add(arrival.responder)
        points.append((len(seen), arrival.time))
    return points


def answer_curve(arrivals: list[Arrival]) -> list[tuple[float, int]]:
    """Figure-7 points: (T, cumulative answers received by T)."""
    points = []
    cumulative = 0
    for arrival in sorted(arrivals, key=lambda a: a.time):
        cumulative += arrival.answer_count
        points.append((arrival.time, cumulative))
    return points


def average_curves(
    curves: list[list[tuple[int, float]]]
) -> list[tuple[int, float]]:
    """Average several response curves rank-by-rank.

    The paper issues the query several times "and the average time at
    which nodes respond are noted": for each rank K we average the K-th
    response time across runs.  Runs may have different lengths (e.g. a
    responder churned away); ranks present in every run are averaged,
    longer tails are truncated to the shortest run.
    """
    if not curves:
        raise ExperimentError("average_curves needs at least one curve")
    shortest = min(len(curve) for curve in curves)
    averaged = []
    for index in range(shortest):
        ranks = {curve[index][0] for curve in curves}
        if len(ranks) != 1:
            raise ExperimentError(
                f"curves disagree on rank at position {index}: {sorted(ranks)}"
            )
        mean_time = sum(curve[index][1] for curve in curves) / len(curves)
        averaged.append((curves[0][index][0], mean_time))
    return averaged


def average_answer_curves(
    curves: list[list[tuple[float, int]]]
) -> list[tuple[float, int]]:
    """Average several answer curves position-by-position.

    Positions are aligned by arrival index; the time at each index is
    averaged and the cumulative count taken from the first run (runs of
    the same workload return identical answer sequences).
    """
    if not curves:
        raise ExperimentError("average_answer_curves needs at least one curve")
    shortest = min(len(curve) for curve in curves)
    averaged = []
    for index in range(shortest):
        mean_time = sum(curve[index][0] for curve in curves) / len(curves)
        averaged.append((mean_time, curves[0][index][1]))
    return averaged
