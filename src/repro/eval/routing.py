"""Recall vs. traffic across routing strategies — clean and under churn.

The routing-framework comparison the ROADMAP asks for: every registered
:mod:`repro.core.routing` strategy runs the same workload as the churn
figure (a base node queries while each other node holds exactly one
matching object), clean (`rate 0`) and under the PR 4 fault plan
(session churn + LIGLO outage + partition).  Per (strategy, rate) point
the trial records *recall* and the two traffic prices the strategies
trade against it: *messages per query* and *bytes per query*, counted
from just before the first query so store population and registration
don't pollute the comparison (setup traffic is reported separately).

This is where super-peer routing earns its keep: with the hint
directory populated, the search agent ships straight to the holders
with TTL 1 instead of flooding the overlay, cutting messages per query
well below MaxCount at equal recall.

Every stochastic choice — topology, link-cost tiers, fault timeline,
retry jitter — derives from the params seed, so every point replays
bit-identically, serial or parallel.
"""

from __future__ import annotations

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.core.routing import registered_strategies
from repro.eval.churn import CHURN_HORIZON, CHURN_RETRY_POLICY, QUERY_QUIET_PERIOD, _fault_plan
from repro.eval.experiment import ExperimentRunner, FigureResult
from repro.eval.figures import FigureParams, _run_tasks
from repro.faults import SimFaultInjector
from repro.net.link import LinkModel
from repro.topology.builders import random_graph
from repro.util.randomness import derive_rng
from repro.workloads.corpus import KeywordCorpus

#: Churn rates every strategy is measured at (clean + the stress point).
DEFAULT_ROUTING_RATES = (0.0, 0.3)

#: Latency of the "far" link tier (vs the 0.005 s default) — gives the
#: cost-aware strategy a real gradient to rank on, P4P-style.
FAR_LINK = LinkModel(latency=0.02)

#: Fraction of nodes placed behind far links.
FAR_FRACTION = 0.33


def _apply_link_tiers(deployment, seed: int) -> list[str]:
    """Deterministically place ~1/3 of the nodes behind expensive links.

    Links are per directed address pair, both directions, between every
    host pair that involves a far node.  (A churn rejoin leases a fresh
    address, which falls back to the default link — the tiers price the
    *initial* overlay, which is where selection decisions concentrate.)
    """
    rng = derive_rng(seed, "routing", "links")
    far_nodes = [
        node for node in deployment.nodes[1:] if rng.random() < FAR_FRACTION
    ]
    hosts = [node.host.address for node in deployment.nodes]
    for far in far_nodes:
        far_address = far.host.address
        for address in hosts:
            if address == far_address:
                continue
            deployment.network.set_link(address, far_address, FAR_LINK)
            deployment.network.set_link(far_address, address, FAR_LINK)
    return [node.name for node in far_nodes]


def routing_trial(task: tuple[str, float, int, FigureParams]) -> dict:
    """One (strategy, churn rate) point; module-level so it pickles to
    the parallel runner's workers."""
    strategy, rate, node_count, params = task
    config = BestPeerConfig(
        max_direct_peers=8,
        ttl=max(7, node_count),
        strategy=strategy,
        retry_policy=CHURN_RETRY_POLICY,
        suspect_after=2,
        retry_seed=params.seed,
        agent_costs=params.costs,
    )
    topology = random_graph(node_count, degree=3, seed=params.seed)
    deployment = build_network(node_count, config=config, topology=topology)
    far_nodes = _apply_link_tiers(deployment, params.seed)
    keyword = KeywordCorpus(params.corpus_size).keyword(0)
    # One distinct matching object per non-base node: recall is simply
    # answers-received over (node_count - 1).
    for index, node in enumerate(deployment.nodes[1:], 1):
        node.share_many([([keyword], index.to_bytes(4, "big") * 16)])
    churnable = [node.name for node in deployment.nodes[1:]]  # base never churns
    injector = SimFaultInjector(
        deployment, _fault_plan(churnable, rate, params.seed), tracer=deployment.tracer
    )
    injector.arm()
    base = deployment.base
    handles: list = []
    setup = {"packets": 0, "bytes": 0}

    def mark_setup_done() -> None:
        # Everything delivered so far — registration, hint publishes —
        # is setup; the per-query traffic accounting starts here.
        setup["packets"] = deployment.network.packets_delivered
        setup["bytes"] = deployment.network.bytes_carried

    def issue() -> None:
        handles.append(
            base.issue_query(keyword, auto_finish_after=QUERY_QUIET_PERIOD)
        )

    step = CHURN_HORIZON / params.queries
    deployment.sim.schedule(1.9, mark_setup_done)
    for q in range(params.queries):
        deployment.sim.schedule(2.0 + q * step, issue)
    deployment.sim.run()
    expected = node_count - 1
    recalls = [
        round(handle.network_answer_count / expected, 6) for handle in handles
    ]
    query_packets = deployment.network.packets_delivered - setup["packets"]
    query_bytes = deployment.network.bytes_carried - setup["bytes"]
    return {
        "strategy": strategy,
        "rate": rate,
        "recalls": recalls,
        "mean_recall": round(sum(recalls) / len(recalls), 6) if recalls else 0.0,
        "messages_per_query": round(query_packets / max(len(handles), 1), 3),
        "bytes_per_query": round(query_bytes / max(len(handles), 1), 1),
        "setup_packets": setup["packets"],
        "setup_bytes": setup["bytes"],
        "packets_delivered": deployment.network.packets_delivered,
        "bytes_carried": deployment.network.bytes_carried,
        "packets_dropped": deployment.network.packets_dropped,
        "drops_by_reason": dict(sorted(deployment.network.drops_by_reason.items())),
        "degraded_queries": sum(1 for handle in handles if handle.degraded),
        "faults_applied": dict(sorted(injector.applied.items())),
        "far_nodes": far_nodes,
        "hint_queries": base.hint_queries,
        "hint_hits": base.hint_hits,
        "hint_fallbacks": base.hint_fallbacks,
    }


def figure_routing(
    params: FigureParams,
    node_count: int = 12,
    churn_rates: tuple[float, ...] = DEFAULT_ROUTING_RATES,
    strategies: tuple[str, ...] | None = None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Recall vs. churn rate for every registered routing strategy.

    The plotted series carry mean recall; the full traffic observables
    (messages/bytes per query, hint-directory counters, drop and fault
    counts) are attached as ``figure_routing.last_trials`` after each
    call, exactly like the churn figure does.
    """
    if node_count < 3:
        raise ValueError(f"routing experiment needs >= 3 nodes, got {node_count}")
    names = (
        strategies if strategies is not None else tuple(registered_strategies())
    )
    tasks = [
        (strategy, rate, node_count, params)
        for strategy in names
        for rate in churn_rates
    ]
    trials = _run_tasks(runner, routing_trial, tasks)
    result = FigureResult(
        figure="routing",
        title=(
            f"Routing strategies: recall vs traffic ({node_count} nodes, "
            f"{params.queries} queries)"
        ),
        x_label="churn rate",
        y_label="mean recall",
        notes=(
            "per-strategy traffic (messages/bytes per query) in trial "
            "details; seeded fault plan as the churn figure; ~1/3 of the "
            "nodes sit behind 4x-latency links (cost-aware gradient)"
        ),
    )
    for trial in trials:
        result.add_point(trial["strategy"], trial["rate"], trial["mean_recall"])
    figure_routing.last_trials = trials  # type: ignore[attr-defined]
    return result
