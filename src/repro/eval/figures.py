"""One experiment definition per figure of the paper's Section 4.

Every public ``figure_*`` function builds the systems from scratch,
drives the workload, and returns a :class:`FigureResult` whose series
mirror the corresponding figure:

========  ==========================================================
figure    content
========  ==========================================================
``5(a)``  Star topology: completion time vs. network size
          (SCS / MCS / BPS / BPR)
``5(b)``  Tree topology: completion time vs. tree level (CS/BPS/BPR)
``5(c)``  Line topology: completion time vs. network size
``6``     rate at which answers return: (K responders, T) curves
``7``     cumulative answers vs. time
``8(a)``  BP vs. Gnutella: completion per repeated run of one query
``8(b)``  BP vs. Gnutella: completion vs. number of direct peers
========  ==========================================================

Absolute times are simulator outputs under the documented cost model,
not the authors' Pentium-II milliseconds; the *shapes* are the
reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.agents.costs import AgentCosts
from repro.baselines.client_server import (
    VARIANT_MCS,
    VARIANT_SCS,
    build_cs_network,
)
from repro.baselines.gnutella import build_gnutella_network
from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.errors import ExperimentError
from repro.eval.experiment import ExperimentRunner, FigureResult
from repro.eval.metrics import (
    Arrival,
    answer_curve,
    average_answer_curves,
    average_curves,
    completion_time,
    response_curve,
)
from repro.topology.builders import Topology, line, random_graph, star, tree
from repro.workloads.corpus import KeywordCorpus
from repro.workloads.placement import AnswerPlacement
from repro.workloads.provision import provision_store

#: Scheme labels as the paper uses them.
SCHEME_SCS = "SCS"
SCHEME_MCS = "CS"  # after Fig 5(a) the paper calls MCS simply "CS"
SCHEME_BPS = "BPS"
SCHEME_BPR = "BPR"


@dataclass(frozen=True)
class FigureParams:
    """Shared experiment parameters (paper-faithful defaults).

    Scale down ``objects_per_node`` for quick smoke runs; every figure
    function accepts the same params object.
    """

    #: "each node stores 1000 objects in StorM"
    objects_per_node: int = 1000
    #: "all objects to be of the same size - 1K bytes"
    object_size: int = 1024
    #: distinct keywords in the synthetic vocabulary
    corpus_size: int = 100
    #: "A search query is issued four times"
    queries: int = 4
    seed: int = 0
    #: the reconfigurable base node's peer cap ("up to 8 directly
    #: connected peers" in the Gnutella comparison)
    k_base: int = 8
    #: scan every store once before measuring, so cold-cache page I/O
    #: (identical across schemes) does not drown the protocol effects
    warm_buffers: bool = True
    costs: AgentCosts = field(default_factory=AgentCosts)

    def __post_init__(self) -> None:
        if self.objects_per_node < 0:
            raise ExperimentError("objects_per_node must be >= 0")
        if self.queries < 1:
            raise ExperimentError("queries must be >= 1")


def _query_keyword(params: FigureParams) -> str:
    """The keyword every node holds matches for (topology experiments)."""
    return KeywordCorpus(params.corpus_size).keyword(0)


# ---------------------------------------------------------------------------
# Trial runners: one query workload against one built system
# ---------------------------------------------------------------------------


def _bestpeer_runs(
    topology: Topology,
    reconfigurable: bool,
    params: FigureParams,
    keyword: str | None = None,
    placement: AnswerPlacement | None = None,
    strategy: str | None = None,
    result_mode: str = "direct",
    codec=None,
    ttl: int | None = None,
) -> list[list[Arrival]]:
    """Run ``params.queries`` repeated queries on a BestPeer deployment.

    Returns per-run arrival lists (times relative to each query issue).
    ``reconfigurable`` selects BPR (MaxCount unless ``strategy`` says
    otherwise) vs. BPS (static peers).
    """
    chosen_strategy = strategy or ("maxcount" if reconfigurable else "static")
    ttl = ttl if ttl is not None else max(7, topology.node_count)
    configs = [
        BestPeerConfig(
            max_direct_peers=max(topology.degree(i), params.k_base),
            ttl=ttl,
            strategy=chosen_strategy,
            agent_costs=params.costs,
            search_own_store=False,
            result_mode=result_mode,
        )
        for i in range(topology.node_count)
    ]
    deployment = build_network(
        topology.node_count,
        config=configs,
        topology=topology,
        codec=codec,
        storm_factory=_store_factory(params, placement),
    )
    keyword = keyword if keyword is not None else _query_keyword(params)
    runs: list[list[Arrival]] = []
    for _ in range(params.queries):
        handle = deployment.base.issue_query(keyword)
        deployment.sim.run()
        runs.append(
            [
                Arrival(t - handle.issued_at, str(a.responder), a.answer_count)
                for t, a in handle.arrivals()
            ]
        )
        deployment.base.finish_query(handle)
    return runs


def _cs_runs(
    topology: Topology,
    variant: str,
    params: FigureParams,
    keyword: str | None = None,
    placement: AnswerPlacement | None = None,
) -> list[list[Arrival]]:
    """Run repeated queries against an SCS/MCS deployment."""
    deployment = build_cs_network(
        topology,
        variant,
        costs=params.costs,
        storm_factory=_store_factory(params, placement),
    )
    keyword = keyword if keyword is not None else _query_keyword(params)
    runs = []
    for _ in range(params.queries):
        handle = deployment.base.issue_query(keyword, search_own_store=False)
        deployment.sim.run()
        runs.append(
            [
                Arrival(t - handle.issued_at, responder, count)
                for t, responder, count in handle.arrivals
            ]
        )
    return runs


def _gnutella_runs(
    topology: Topology,
    params: FigureParams,
    keyword: str,
    placement: AnswerPlacement | None = None,
) -> list[list[Arrival]]:
    """Run repeated queries against a Gnutella deployment."""
    deployment = build_gnutella_network(
        topology,
        costs=params.costs,
        storm_factory=_store_factory(params, placement),
    )
    runs = []
    for _ in range(params.queries):
        handle = deployment.base.issue_query(keyword, ttl=max(7, topology.node_count))
        deployment.sim.run()
        runs.append(
            [
                Arrival(t - handle.issued_at, responder, count)
                for t, responder, count in handle.arrivals
            ]
        )
    return runs


def _store_factory(params: FigureParams, placement: AnswerPlacement | None):
    """Per-node store provisioning for one deployment.

    Routes every experiment's store population through
    :func:`~repro.workloads.provision.provision_store`, which bulk-loads
    the corpus and clones repeated (corpus, node, size) combinations
    from a template instead of re-inserting every object.  The closure
    is created inside whichever process builds the deployment, so
    ``--jobs`` workers each keep their own template registry.
    """
    corpus = KeywordCorpus(params.corpus_size)

    def factory(index: int):
        return provision_store(
            index,
            count=params.objects_per_node,
            size=params.object_size,
            corpus=corpus,
            seed=params.seed,
            placement=placement,
            warm=params.warm_buffers,
        )

    return factory


def _mean_completion(runs: list[list[Arrival]]) -> float:
    return sum(completion_time(run) for run in runs) / len(runs)


# ---------------------------------------------------------------------------
# Task plumbing: every sweep point is an independent, picklable task
# ---------------------------------------------------------------------------
#
# Each figure builds a list of plain-tuple tasks and maps a module-level
# function over them.  With the default (no runner / a serial runner)
# this is exactly the old inline loop; with a
# :class:`~repro.eval.experiment.ParallelExperimentRunner` the tasks fan
# out to worker processes.  Deployments are rebuilt from the task tuple
# inside the worker, and every simulation is fully seeded, so results
# are bit-identical either way.  Task order mirrors the original
# ``add_point`` order, keeping series contents byte-for-byte stable.


def _run_tasks(runner: ExperimentRunner | None, func, tasks: list) -> list:
    if runner is None:
        return [func(task) for task in tasks]
    return runner.map_tasks(func, tasks)


def _topology_for(kind: str, x: int) -> Topology:
    if kind == "star":
        return star(x)
    if kind == "tree":
        return tree(tree_size_for_level(x), branching=2)
    if kind == "line":
        return line(x)
    raise ExperimentError(f"unknown topology kind {kind!r}")


def _scheme_completion(task: tuple[str, int, str, "FigureParams"]) -> float:
    """One Figure-5 sweep point: mean completion of one scheme at one x."""
    kind, x, scheme, params = task
    topology = _topology_for(kind, x)
    if scheme == SCHEME_SCS:
        runs = _cs_runs(topology, VARIANT_SCS, params)
    elif scheme == SCHEME_MCS:
        runs = _cs_runs(topology, VARIANT_MCS, params)
    elif scheme == SCHEME_BPS:
        runs = _bestpeer_runs(topology, False, params)
    elif scheme == SCHEME_BPR:
        runs = _bestpeer_runs(topology, True, params)
    else:
        raise ExperimentError(f"unknown scheme {scheme!r}")
    return _mean_completion(runs)


def _figure_67_runs(
    task: tuple[str, int, "FigureParams"],
) -> list[list[Arrival]]:
    """All runs for one scheme of the shared Figure 6/7 experiment."""
    scheme, node_count, params = task
    topology = tree(node_count, branching=2)
    if scheme == SCHEME_MCS:
        return _cs_runs(topology, VARIANT_MCS, params)
    if scheme == SCHEME_BPS:
        return _bestpeer_runs(topology, False, params)
    if scheme == SCHEME_BPR:
        return _bestpeer_runs(topology, True, params)
    raise ExperimentError(f"unknown scheme {scheme!r}")


def _figure_8_runs(
    task: tuple[str, int, int, int, int, int, "FigureParams"],
) -> list[list[Arrival]]:
    """All runs for one system (BP or Gnutella) of a Figure-8 point."""
    system, node_count, peers, degree, holder_count, answers_per_holder, params = task
    topology = random_graph(node_count, degree=degree, seed=params.seed)
    placement = AnswerPlacement(
        node_count=node_count,
        holder_count=holder_count,
        answers_per_holder=answers_per_holder,
        seed=params.seed,
    )
    if system == "BP":
        return _bestpeer_runs(
            topology,
            True,
            replace(params, k_base=peers),
            keyword=placement.keyword,
            placement=placement,
            result_mode="metadata",
        )
    if system == "Gnutella":
        return _gnutella_runs(
            topology, params, keyword=placement.keyword, placement=placement
        )
    raise ExperimentError(f"unknown system {system!r}")


# ---------------------------------------------------------------------------
# Figure 5: completion time on Star / Tree / Line topologies
# ---------------------------------------------------------------------------


def figure_5a(
    params: FigureParams | None = None,
    sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32),
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Star topology: completion time vs. network size, all four schemes."""
    params = params if params is not None else FigureParams()
    result = FigureResult(
        figure="Figure 5(a)",
        title="Star topology",
        x_label="nodes",
        y_label="completion time (s)",
        notes="SCS serializes its conversations; MCS/BPS/BPR are parallel.",
    )
    schemes = (SCHEME_SCS, SCHEME_MCS, SCHEME_BPS, SCHEME_BPR)
    tasks = [("star", size, scheme, params) for size in sizes for scheme in schemes]
    for task, y in zip(tasks, _run_tasks(runner, _scheme_completion, tasks)):
        result.add_point(task[2], task[1], y)
    return result


def tree_size_for_level(level: int) -> int:
    """Binary-tree node count per paper level; level 5 uses 48 nodes."""
    if level < 1:
        raise ExperimentError(f"tree level must be >= 1, got {level}")
    full = 2 ** (level + 1) - 1
    return min(full, 48)  # "we used only 48 nodes instead of 63 for level 5"


def figure_5b(
    params: FigureParams | None = None,
    levels: tuple[int, ...] = (1, 2, 3, 4, 5),
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Tree topology: completion time vs. tree level (CS / BPS / BPR)."""
    params = params if params is not None else FigureParams()
    result = FigureResult(
        figure="Figure 5(b)",
        title="Tree topology",
        x_label="level",
        y_label="completion time (s)",
        notes="CS relays results along the path; BPS/BPR answer directly.",
    )
    schemes = (SCHEME_MCS, SCHEME_BPS, SCHEME_BPR)
    tasks = [("tree", level, scheme, params) for level in levels for scheme in schemes]
    for task, y in zip(tasks, _run_tasks(runner, _scheme_completion, tasks)):
        result.add_point(task[2], task[1], y)
    return result


def figure_5c(
    params: FigureParams | None = None,
    sizes: tuple[int, ...] = (2, 4, 8, 16, 24, 32),
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Line topology: completion time vs. network size (CS / BPS / BPR)."""
    params = params if params is not None else FigureParams()
    result = FigureResult(
        figure="Figure 5(c)",
        title="Line topology",
        x_label="nodes",
        y_label="completion time (s)",
        notes="The base is the left-most node of the chain.",
    )
    schemes = (SCHEME_MCS, SCHEME_BPS, SCHEME_BPR)
    tasks = [("line", size, scheme, params) for size in sizes for scheme in schemes]
    for task, y in zip(tasks, _run_tasks(runner, _scheme_completion, tasks)):
        result.add_point(task[2], task[1], y)
    return result


# ---------------------------------------------------------------------------
# Figures 6 and 7: response rate and answer quantity (32-node tree)
# ---------------------------------------------------------------------------


def figures_6_and_7(
    params: FigureParams | None = None,
    node_count: int = 32,
    runner: ExperimentRunner | None = None,
) -> tuple[FigureResult, FigureResult]:
    """Both figures share the same runs: 32 nodes, tree, query issued
    ``params.queries`` times, per-responder averages across runs."""
    params = params if params is not None else FigureParams()
    rate = FigureResult(
        figure="Figure 6",
        title="Rate at which answers are returned",
        x_label="nodes responded (K)",
        y_label="time (s)",
        notes=f"{node_count}-node tree; averaged over {params.queries} runs.",
    )
    quantity = FigureResult(
        figure="Figure 7",
        title="Number of answers returned over time",
        x_label="time (s)",
        y_label="cumulative answers",
        notes=f"{node_count}-node tree; averaged over {params.queries} runs.",
    )
    schemes = (SCHEME_MCS, SCHEME_BPS, SCHEME_BPR)
    tasks = [(scheme, node_count, params) for scheme in schemes]
    all_runs = _run_tasks(runner, _figure_67_runs, tasks)
    for scheme, runs in zip(schemes, all_runs):
        averaged_rate = average_curves([response_curve(run) for run in runs])
        for rank, when in averaged_rate:
            rate.add_point(scheme, rank, when)
        averaged_quantity = average_answer_curves([answer_curve(run) for run in runs])
        for when, count in averaged_quantity:
            quantity.add_point(scheme, when, count)
    return rate, quantity


def figure_6(
    params: FigureParams | None = None,
    node_count: int = 32,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 6 alone (runs the shared 6/7 experiment)."""
    return figures_6_and_7(params, node_count, runner=runner)[0]


def figure_7(
    params: FigureParams | None = None,
    node_count: int = 32,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 7 alone (runs the shared 6/7 experiment)."""
    return figures_6_and_7(params, node_count, runner=runner)[1]


# ---------------------------------------------------------------------------
# Figure 8: BestPeer vs Gnutella
# ---------------------------------------------------------------------------


def figure_8a(
    params: FigureParams | None = None,
    node_count: int = 32,
    max_peers: int = 8,
    holder_count: int = 3,
    answers_per_holder: int = 5,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """BP vs. Gnutella: completion time per run of the same query.

    Answers are restricted to ``holder_count`` nodes; the overlay is a
    random graph where each node has up to ``max_peers`` direct peers.
    """
    params = params if params is not None else FigureParams()
    result = FigureResult(
        figure="Figure 8(a)",
        title="BestPeer vs Gnutella across repeated runs",
        x_label="run",
        y_label="completion time (s)",
        notes=(
            f"answers held by {holder_count} of {node_count} nodes; "
            f"up to {max_peers} direct peers"
        ),
    )
    # "while BP and Gnutella return results out-of-network, this feature
    # is not used in the experiment": BP ships match lists, not files.
    degree = max(2, max_peers // 2)
    tasks = [
        (system, node_count, max_peers, degree, holder_count, answers_per_holder, params)
        for system in ("BP", "Gnutella")
    ]
    for task, runs in zip(tasks, _run_tasks(runner, _figure_8_runs, tasks)):
        for run_index, run in enumerate(runs, start=1):
            result.add_point(task[0], run_index, completion_time(run))
    return result


def figure_8b(
    params: FigureParams | None = None,
    node_count: int = 32,
    peer_counts: tuple[int, ...] = (2, 4, 6, 8),
    holder_count: int = 3,
    answers_per_holder: int = 5,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """BP vs. Gnutella: completion (avg over runs) vs. number of peers."""
    params = params if params is not None else FigureParams()
    result = FigureResult(
        figure="Figure 8(b)",
        title="Effect of the number of directly connected peers",
        x_label="direct peers",
        y_label="completion time (s)",
        notes=f"averaged over {params.queries} runs of one query",
    )
    tasks = [
        (
            system,
            node_count,
            peers,
            max(1, peers // 2),
            holder_count,
            answers_per_holder,
            params,
        )
        for peers in peer_counts
        for system in ("BP", "Gnutella")
    ]
    for task, runs in zip(tasks, _run_tasks(runner, _figure_8_runs, tasks)):
        result.add_point(task[0], task[2], _mean_completion(runs))
    return result
