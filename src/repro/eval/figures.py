"""One experiment definition per figure of the paper's Section 4.

Every public ``figure_*`` function builds the systems from scratch,
drives the workload, and returns a :class:`FigureResult` whose series
mirror the corresponding figure:

========  ==========================================================
figure    content
========  ==========================================================
``5(a)``  Star topology: completion time vs. network size
          (SCS / MCS / BPS / BPR)
``5(b)``  Tree topology: completion time vs. tree level (CS/BPS/BPR)
``5(c)``  Line topology: completion time vs. network size
``6``     rate at which answers return: (K responders, T) curves
``7``     cumulative answers vs. time
``8(a)``  BP vs. Gnutella: completion per repeated run of one query
``8(b)``  BP vs. Gnutella: completion vs. number of direct peers
========  ==========================================================

Absolute times are simulator outputs under the documented cost model,
not the authors' Pentium-II milliseconds; the *shapes* are the
reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.agents.costs import AgentCosts
from repro.baselines.client_server import (
    VARIANT_MCS,
    VARIANT_SCS,
    build_cs_network,
)
from repro.baselines.gnutella import build_gnutella_network
from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.errors import ExperimentError
from repro.eval.experiment import FigureResult
from repro.eval.metrics import (
    Arrival,
    answer_curve,
    average_answer_curves,
    average_curves,
    completion_time,
    response_curve,
)
from repro.topology.builders import Topology, line, random_graph, star, tree
from repro.workloads.corpus import KeywordCorpus, generate_objects
from repro.workloads.placement import AnswerPlacement

#: Scheme labels as the paper uses them.
SCHEME_SCS = "SCS"
SCHEME_MCS = "CS"  # after Fig 5(a) the paper calls MCS simply "CS"
SCHEME_BPS = "BPS"
SCHEME_BPR = "BPR"


@dataclass(frozen=True)
class FigureParams:
    """Shared experiment parameters (paper-faithful defaults).

    Scale down ``objects_per_node`` for quick smoke runs; every figure
    function accepts the same params object.
    """

    #: "each node stores 1000 objects in StorM"
    objects_per_node: int = 1000
    #: "all objects to be of the same size - 1K bytes"
    object_size: int = 1024
    #: distinct keywords in the synthetic vocabulary
    corpus_size: int = 100
    #: "A search query is issued four times"
    queries: int = 4
    seed: int = 0
    #: the reconfigurable base node's peer cap ("up to 8 directly
    #: connected peers" in the Gnutella comparison)
    k_base: int = 8
    #: scan every store once before measuring, so cold-cache page I/O
    #: (identical across schemes) does not drown the protocol effects
    warm_buffers: bool = True
    costs: AgentCosts = field(default_factory=AgentCosts)

    def __post_init__(self) -> None:
        if self.objects_per_node < 0:
            raise ExperimentError("objects_per_node must be >= 0")
        if self.queries < 1:
            raise ExperimentError("queries must be >= 1")


def _query_keyword(params: FigureParams) -> str:
    """The keyword every node holds matches for (topology experiments)."""
    return KeywordCorpus(params.corpus_size).keyword(0)


# ---------------------------------------------------------------------------
# Trial runners: one query workload against one built system
# ---------------------------------------------------------------------------


def _bestpeer_runs(
    topology: Topology,
    reconfigurable: bool,
    params: FigureParams,
    keyword: str | None = None,
    placement: AnswerPlacement | None = None,
    strategy: str | None = None,
    result_mode: str = "direct",
    codec=None,
    ttl: int | None = None,
) -> list[list[Arrival]]:
    """Run ``params.queries`` repeated queries on a BestPeer deployment.

    Returns per-run arrival lists (times relative to each query issue).
    ``reconfigurable`` selects BPR (MaxCount unless ``strategy`` says
    otherwise) vs. BPS (static peers).
    """
    chosen_strategy = strategy or ("maxcount" if reconfigurable else "static")
    ttl = ttl if ttl is not None else max(7, topology.node_count)
    configs = [
        BestPeerConfig(
            max_direct_peers=max(topology.degree(i), params.k_base),
            ttl=ttl,
            strategy=chosen_strategy,
            agent_costs=params.costs,
            search_own_store=False,
            result_mode=result_mode,
        )
        for i in range(topology.node_count)
    ]
    deployment = build_network(
        topology.node_count, config=configs, topology=topology, codec=codec
    )
    corpus = KeywordCorpus(params.corpus_size)
    for index, node in enumerate(deployment.nodes):
        _load_store(node.storm, index, params, corpus, placement)
    keyword = keyword if keyword is not None else _query_keyword(params)
    runs: list[list[Arrival]] = []
    for _ in range(params.queries):
        handle = deployment.base.issue_query(keyword)
        deployment.sim.run()
        runs.append(
            [
                Arrival(t - handle.issued_at, str(a.responder), a.answer_count)
                for t, a in handle.arrivals()
            ]
        )
        deployment.base.finish_query(handle)
    return runs


def _cs_runs(
    topology: Topology,
    variant: str,
    params: FigureParams,
    keyword: str | None = None,
    placement: AnswerPlacement | None = None,
) -> list[list[Arrival]]:
    """Run repeated queries against an SCS/MCS deployment."""
    deployment = build_cs_network(topology, variant, costs=params.costs)
    corpus = KeywordCorpus(params.corpus_size)
    for index, node in enumerate(deployment.nodes):
        _load_store(node.storm, index, params, corpus, placement)
    keyword = keyword if keyword is not None else _query_keyword(params)
    runs = []
    for _ in range(params.queries):
        handle = deployment.base.issue_query(keyword, search_own_store=False)
        deployment.sim.run()
        runs.append(
            [
                Arrival(t - handle.issued_at, responder, count)
                for t, responder, count in handle.arrivals
            ]
        )
    return runs


def _gnutella_runs(
    topology: Topology,
    params: FigureParams,
    keyword: str,
    placement: AnswerPlacement | None = None,
) -> list[list[Arrival]]:
    """Run repeated queries against a Gnutella deployment."""
    deployment = build_gnutella_network(topology, costs=params.costs)
    corpus = KeywordCorpus(params.corpus_size)
    for index, servent in enumerate(deployment.servents):
        _load_store(servent.storm, index, params, corpus, placement)
    runs = []
    for _ in range(params.queries):
        handle = deployment.base.issue_query(keyword, ttl=max(7, topology.node_count))
        deployment.sim.run()
        runs.append(
            [
                Arrival(t - handle.issued_at, responder, count)
                for t, responder, count in handle.arrivals
            ]
        )
    return runs


def _load_store(storm, index, params, corpus, placement) -> None:
    """Load one node's store: background corpus plus placed answers."""
    for spec in generate_objects(
        index,
        count=params.objects_per_node,
        size=params.object_size,
        corpus=corpus,
        seed=params.seed,
    ):
        storm.put(spec.keywords, spec.payload)
    if placement is not None:
        for payload in placement.objects_for(index, size=params.object_size):
            storm.put([placement.keyword], payload)
    if params.warm_buffers:
        storm.search_scan(corpus.keyword(0))  # touch every page once


def _mean_completion(runs: list[list[Arrival]]) -> float:
    return sum(completion_time(run) for run in runs) / len(runs)


# ---------------------------------------------------------------------------
# Figure 5: completion time on Star / Tree / Line topologies
# ---------------------------------------------------------------------------


def figure_5a(
    params: FigureParams | None = None,
    sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32),
) -> FigureResult:
    """Star topology: completion time vs. network size, all four schemes."""
    params = params if params is not None else FigureParams()
    result = FigureResult(
        figure="Figure 5(a)",
        title="Star topology",
        x_label="nodes",
        y_label="completion time (s)",
        notes="SCS serializes its conversations; MCS/BPS/BPR are parallel.",
    )
    for size in sizes:
        topology = star(size)
        result.add_point(
            SCHEME_SCS, size, _mean_completion(_cs_runs(topology, VARIANT_SCS, params))
        )
        result.add_point(
            SCHEME_MCS, size, _mean_completion(_cs_runs(topology, VARIANT_MCS, params))
        )
        result.add_point(
            SCHEME_BPS, size, _mean_completion(_bestpeer_runs(topology, False, params))
        )
        result.add_point(
            SCHEME_BPR, size, _mean_completion(_bestpeer_runs(topology, True, params))
        )
    return result


def tree_size_for_level(level: int) -> int:
    """Binary-tree node count per paper level; level 5 uses 48 nodes."""
    if level < 1:
        raise ExperimentError(f"tree level must be >= 1, got {level}")
    full = 2 ** (level + 1) - 1
    return min(full, 48)  # "we used only 48 nodes instead of 63 for level 5"


def figure_5b(
    params: FigureParams | None = None,
    levels: tuple[int, ...] = (1, 2, 3, 4, 5),
) -> FigureResult:
    """Tree topology: completion time vs. tree level (CS / BPS / BPR)."""
    params = params if params is not None else FigureParams()
    result = FigureResult(
        figure="Figure 5(b)",
        title="Tree topology",
        x_label="level",
        y_label="completion time (s)",
        notes="CS relays results along the path; BPS/BPR answer directly.",
    )
    for level in levels:
        topology = tree(tree_size_for_level(level), branching=2)
        result.add_point(
            SCHEME_MCS, level, _mean_completion(_cs_runs(topology, VARIANT_MCS, params))
        )
        result.add_point(
            SCHEME_BPS, level, _mean_completion(_bestpeer_runs(topology, False, params))
        )
        result.add_point(
            SCHEME_BPR, level, _mean_completion(_bestpeer_runs(topology, True, params))
        )
    return result


def figure_5c(
    params: FigureParams | None = None,
    sizes: tuple[int, ...] = (2, 4, 8, 16, 24, 32),
) -> FigureResult:
    """Line topology: completion time vs. network size (CS / BPS / BPR)."""
    params = params if params is not None else FigureParams()
    result = FigureResult(
        figure="Figure 5(c)",
        title="Line topology",
        x_label="nodes",
        y_label="completion time (s)",
        notes="The base is the left-most node of the chain.",
    )
    for size in sizes:
        topology = line(size)
        result.add_point(
            SCHEME_MCS, size, _mean_completion(_cs_runs(topology, VARIANT_MCS, params))
        )
        result.add_point(
            SCHEME_BPS, size, _mean_completion(_bestpeer_runs(topology, False, params))
        )
        result.add_point(
            SCHEME_BPR, size, _mean_completion(_bestpeer_runs(topology, True, params))
        )
    return result


# ---------------------------------------------------------------------------
# Figures 6 and 7: response rate and answer quantity (32-node tree)
# ---------------------------------------------------------------------------


def figures_6_and_7(
    params: FigureParams | None = None, node_count: int = 32
) -> tuple[FigureResult, FigureResult]:
    """Both figures share the same runs: 32 nodes, tree, query issued
    ``params.queries`` times, per-responder averages across runs."""
    params = params if params is not None else FigureParams()
    topology = tree(node_count, branching=2)
    rate = FigureResult(
        figure="Figure 6",
        title="Rate at which answers are returned",
        x_label="nodes responded (K)",
        y_label="time (s)",
        notes=f"{node_count}-node tree; averaged over {params.queries} runs.",
    )
    quantity = FigureResult(
        figure="Figure 7",
        title="Number of answers returned over time",
        x_label="time (s)",
        y_label="cumulative answers",
        notes=f"{node_count}-node tree; averaged over {params.queries} runs.",
    )
    runs_by_scheme = {
        SCHEME_MCS: _cs_runs(topology, VARIANT_MCS, params),
        SCHEME_BPS: _bestpeer_runs(topology, False, params),
        SCHEME_BPR: _bestpeer_runs(topology, True, params),
    }
    for scheme, runs in runs_by_scheme.items():
        averaged_rate = average_curves([response_curve(run) for run in runs])
        for rank, when in averaged_rate:
            rate.add_point(scheme, rank, when)
        averaged_quantity = average_answer_curves([answer_curve(run) for run in runs])
        for when, count in averaged_quantity:
            quantity.add_point(scheme, when, count)
    return rate, quantity


def figure_6(params: FigureParams | None = None, node_count: int = 32) -> FigureResult:
    """Figure 6 alone (runs the shared 6/7 experiment)."""
    return figures_6_and_7(params, node_count)[0]


def figure_7(params: FigureParams | None = None, node_count: int = 32) -> FigureResult:
    """Figure 7 alone (runs the shared 6/7 experiment)."""
    return figures_6_and_7(params, node_count)[1]


# ---------------------------------------------------------------------------
# Figure 8: BestPeer vs Gnutella
# ---------------------------------------------------------------------------


def figure_8a(
    params: FigureParams | None = None,
    node_count: int = 32,
    max_peers: int = 8,
    holder_count: int = 3,
    answers_per_holder: int = 5,
) -> FigureResult:
    """BP vs. Gnutella: completion time per run of the same query.

    Answers are restricted to ``holder_count`` nodes; the overlay is a
    random graph where each node has up to ``max_peers`` direct peers.
    """
    params = params if params is not None else FigureParams()
    topology = random_graph(node_count, degree=max(2, max_peers // 2), seed=params.seed)
    placement = AnswerPlacement(
        node_count=node_count,
        holder_count=holder_count,
        answers_per_holder=answers_per_holder,
        seed=params.seed,
    )
    result = FigureResult(
        figure="Figure 8(a)",
        title="BestPeer vs Gnutella across repeated runs",
        x_label="run",
        y_label="completion time (s)",
        notes=(
            f"answers held by {holder_count} of {node_count} nodes; "
            f"up to {max_peers} direct peers"
        ),
    )
    bp_params = replace(params, k_base=max_peers)
    # "while BP and Gnutella return results out-of-network, this feature
    # is not used in the experiment": BP ships match lists, not files.
    bp_runs = _bestpeer_runs(
        topology,
        True,
        bp_params,
        keyword=placement.keyword,
        placement=placement,
        result_mode="metadata",
    )
    gnutella_runs = _gnutella_runs(
        topology, params, keyword=placement.keyword, placement=placement
    )
    for run_index, run in enumerate(bp_runs, start=1):
        result.add_point("BP", run_index, completion_time(run))
    for run_index, run in enumerate(gnutella_runs, start=1):
        result.add_point("Gnutella", run_index, completion_time(run))
    return result


def figure_8b(
    params: FigureParams | None = None,
    node_count: int = 32,
    peer_counts: tuple[int, ...] = (2, 4, 6, 8),
    holder_count: int = 3,
    answers_per_holder: int = 5,
) -> FigureResult:
    """BP vs. Gnutella: completion (avg over runs) vs. number of peers."""
    params = params if params is not None else FigureParams()
    result = FigureResult(
        figure="Figure 8(b)",
        title="Effect of the number of directly connected peers",
        x_label="direct peers",
        y_label="completion time (s)",
        notes=f"averaged over {params.queries} runs of one query",
    )
    placement = AnswerPlacement(
        node_count=node_count,
        holder_count=holder_count,
        answers_per_holder=answers_per_holder,
        seed=params.seed,
    )
    for peers in peer_counts:
        topology = random_graph(
            node_count, degree=max(1, peers // 2), seed=params.seed
        )
        bp_params = replace(params, k_base=peers)
        bp_runs = _bestpeer_runs(
            topology,
            True,
            bp_params,
            keyword=placement.keyword,
            placement=placement,
            result_mode="metadata",
        )
        gnutella_runs = _gnutella_runs(
            topology, params, keyword=placement.keyword, placement=placement
        )
        result.add_point("BP", peers, _mean_completion(bp_runs))
        result.add_point("Gnutella", peers, _mean_completion(gnutella_runs))
    return result
