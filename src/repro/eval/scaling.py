"""Strong/weak scaling of the sharded event kernel (the 10k-node figure).

The paper's largest experiment is 64 nodes; this figure asks what the
reproduction's kernel does at 1k-10k.  The workload is a seeded
random-graph flood — every node forwards, so event work spreads across
the whole overlay instead of piling onto a star hub — executed three
ways:

* the serial kernel (the reference, and the shards=1 point);
* the lockstep sharded executor (``build_network(shards=N)``), which is
  bit-identical to serial by construction and measures pure sharding
  overhead;
* the distributed executor (:func:`repro.net.sharding.run_distributed`),
  one forked worker per shard draining conservative windows.

**Latency jitter makes the distributed runs exactly comparable.**  With
one uniform link latency, flood arrivals tie constantly and the
distributed executor's ``(origin_shard, origin_seq)`` tie-break can
legally reorder equal-time deliveries (observable as a few hosts
swapping agent source-shipping bytes).  The scaling workload therefore
derives a deterministic per-edge latency perturbation (+0-10%, crc32 of
the directed pair) so event timestamps are unique in practice — under
unique timestamps the conservative barrier admits exactly one firing
order, the serial kernel's, and every executor must agree on *all*
observables.  Each distributed point carries an ``identical`` flag
recording that byte-for-byte check against its serial reference.

Speedups are reported two ways, both in every trial dict:

* ``measured``: serial wall-clock over distributed wall-clock on *this*
  machine — honest, and meaningless without ``available_cores``;
* ``projected``: serial CPU-seconds over the barrier's critical path
  (sum over windows of the slowest shard's CPU-seconds) — what the
  window schedule would cost with one real core per shard.
"""

from __future__ import annotations

import os
import time
import zlib

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.errors import BestPeerError
from repro.eval.experiment import ExperimentRunner, FigureResult
from repro.eval.figures import FigureParams
from repro.net.link import LinkModel
from repro.net.sharding import run_distributed
from repro.topology.builders import random_graph

#: Flood TTL: generous enough to reach every node of a degree-4
#: random graph at any swept size (diameter grows ~log n).
FLOOD_TTL = 24
#: Maximum relative latency perturbation (+10% of the default link).
JITTER_SPAN = 0.10

DEFAULT_STRONG_NODES = (1000,)
DEFAULT_SHARDS = (1, 2, 4)


def _edge_jitter(src_name: str, dst_name: str) -> float:
    """Deterministic per-directed-edge latency factor in [0, 1)."""
    key = f"{src_name}->{dst_name}".encode("utf-8")
    return zlib.crc32(key) / 2**32


def _apply_latency_jitter(deployment, topology) -> None:
    """Give every overlay edge (both directions) a unique-ish latency.

    Unique event timestamps collapse the tie-break question: all three
    executors must then fire in the identical order.  Answer traffic
    (responder -> base) rides the default link; only flood forwarding —
    where equal-time collisions actually happen — is perturbed.
    """
    network = deployment.network
    base = network.default_link
    for a, b in sorted(topology.edges):
        for src, dst in ((a, b), (b, a)):
            src_host = deployment.nodes[src].host
            dst_host = deployment.nodes[dst].host
            factor = 1.0 + JITTER_SPAN * _edge_jitter(src_host.name, dst_host.name)
            network.set_link(
                src_host.address,
                dst_host.address,
                LinkModel(
                    latency=base.latency * factor,
                    bandwidth=base.bandwidth,
                ),
            )


def _flood_deployment(
    node_count: int,
    seed: int,
    shards: int | None = None,
    shard_mode: str = "locality",
):
    topology = random_graph(node_count, degree=4, seed=seed)
    max_degree = max(
        len(topology.neighbors(index)) for index in range(node_count)
    )
    config = BestPeerConfig(
        max_direct_peers=max(16, max_degree),
        strategy="static",
        ttl=FLOOD_TTL,
    )
    deployment = build_network(
        node_count,
        config=config,
        topology=topology,
        shards=shards,
        shard_mode=shard_mode,
    )
    _apply_latency_jitter(deployment, topology)
    deployment.nodes[3].share(["needle"], b"scaling-payload-a" * 4)
    deployment.nodes[node_count - 1].share(["needle"], b"scaling-payload-b" * 4)
    return deployment


def _observables(network) -> tuple:
    """The byte-for-byte comparison key shared by all three executors."""
    return (
        [host.bytes_sent for host in network.hosts.values()],
        network.bytes_carried,
        network.packets_delivered,
        network.packets_dropped,
    )


def _issue_queries(deployment, queries: int) -> list:
    handles = []
    for _ in range(queries):
        handles.append(deployment.base.issue_query("needle"))
    return handles


def _serial_trial(node_count: int, queries: int, seed: int) -> dict:
    deployment = _flood_deployment(node_count, seed)
    _issue_queries(deployment, queries)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    deployment.sim.run()
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start
    observables = _observables(deployment.network)
    return {
        "executor": "serial",
        "node_count": node_count,
        "shards": 1,
        "wall_seconds": round(wall, 4),
        "cpu_seconds": round(cpu, 4),
        "packets_delivered": observables[2],
        "bytes_carried": observables[1],
        "identical": True,
        "_observables": observables,
    }


def _lockstep_trial(node_count: int, queries: int, seed: int, shards: int, reference: dict) -> dict:
    deployment = _flood_deployment(node_count, seed, shards=shards)
    _issue_queries(deployment, queries)
    wall_start = time.perf_counter()
    deployment.sim.run()
    wall = time.perf_counter() - wall_start
    observables = _observables(deployment.network)
    stats = deployment.cluster.sim.stats
    return {
        "executor": "lockstep",
        "node_count": node_count,
        "shards": shards,
        "wall_seconds": round(wall, 4),
        "overhead_vs_serial": round(wall / reference["wall_seconds"], 3)
        if reference["wall_seconds"]
        else None,
        "barrier_messages": stats.messages,
        "packets_delivered": observables[2],
        "bytes_carried": observables[1],
        "identical": observables == reference["_observables"],
    }


def _distributed_trial(node_count: int, queries: int, seed: int, shards: int, reference: dict) -> dict:
    deployment = _flood_deployment(node_count, seed, shards=shards)
    _issue_queries(deployment, queries)
    report = run_distributed(deployment.cluster)
    merged = report.merged_counters()
    observables = (
        report.host_bytes(),
        merged["bytes_carried"],
        merged["packets_delivered"],
        merged["packets_dropped"],
    )
    busy_total = sum(report.busy_per_shard)
    critical = report.critical_path_seconds
    serial_wall = reference["wall_seconds"]
    serial_cpu = reference["cpu_seconds"]
    return {
        "executor": "distributed",
        "node_count": node_count,
        "shards": shards,
        "wall_seconds": round(report.wall_seconds, 4),
        "busy_per_shard": [round(busy, 4) for busy in report.busy_per_shard],
        "busy_total_seconds": round(busy_total, 4),
        "critical_path_seconds": round(critical, 4),
        "windows": report.windows,
        "barrier_messages": report.messages,
        "measured_speedup": round(serial_wall / report.wall_seconds, 3)
        if report.wall_seconds
        else None,
        "projected_speedup": round(serial_cpu / critical, 3) if critical else None,
        "balance": round(busy_total / (critical * shards), 3) if critical else None,
        "packets_delivered": observables[2],
        "bytes_carried": observables[1],
        "identical": observables == reference["_observables"],
    }


def figure_scaling(
    params: FigureParams | None = None,
    node_counts: tuple[int, ...] = DEFAULT_STRONG_NODES,
    shard_counts: tuple[int, ...] = DEFAULT_SHARDS,
    weak_base: int | None = None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Strong (and optionally weak) scaling of the flood workload.

    Strong series, per swept ``node_count``: ``measured`` and
    ``projected`` speedup vs shard count, anchored at ``(1, 1.0)``.
    With ``weak_base``, a weak-scaling series grows the problem with the
    shard count (``weak_base`` nodes per shard) and plots projected
    speedup.  ``runner`` is accepted for CLI uniformity and ignored —
    the executors under test own all parallelism.  Trial details land in
    ``figure_scaling.last_trials``.
    """
    del runner  # the executors under test manage their own processes
    params = params if params is not None else FigureParams()
    queries = max(1, params.queries)
    seed = params.seed
    for shards in shard_counts:
        if shards < 1:
            raise BestPeerError(f"shard counts must be >= 1, got {shards}")
    result = FigureResult(
        figure="scaling",
        title=(
            "Sharded-kernel scaling (flood, "
            f"{max(list(node_counts) + [weak_base * max(shard_counts)] if weak_base else node_counts)}"
            " nodes max)"
        ),
        x_label="shards",
        y_label="speedup vs serial",
        notes=(
            "random-graph flood with per-edge latency jitter; measured = "
            "wall-clock on this machine, projected = serial CPU over the "
            "barrier critical path (one core per shard)"
        ),
    )
    trials: list[dict] = []
    for node_count in node_counts:
        reference = _serial_trial(node_count, queries, seed)
        trials.append(reference)
        label = f"{node_count}n"
        result.add_point(f"measured {label}", 1, 1.0)
        result.add_point(f"projected {label}", 1, 1.0)
        for shards in shard_counts:
            if shards == 1:
                continue
            trials.append(
                _lockstep_trial(node_count, queries, seed, shards, reference)
            )
            distributed = _distributed_trial(
                node_count, queries, seed, shards, reference
            )
            trials.append(distributed)
            result.add_point(
                f"measured {label}", shards, distributed["measured_speedup"]
            )
            result.add_point(
                f"projected {label}", shards, distributed["projected_speedup"]
            )
    if weak_base is not None:
        for shards in shard_counts:
            node_count = weak_base * shards
            reference = _serial_trial(node_count, queries, seed)
            trials.append(reference)
            if shards == 1:
                result.add_point("weak projected", 1, 1.0)
                continue
            distributed = _distributed_trial(
                node_count, queries, seed, shards, reference
            )
            trials.append(distributed)
            result.add_point(
                "weak projected", shards, distributed["projected_speedup"]
            )
    for trial in trials:
        trial.pop("_observables", None)
    figure_scaling.last_trials = trials  # type: ignore[attr-defined]
    return result


def available_cores() -> int:
    """CPU cores the measured numbers had to share (artifact context)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1
