"""Recall under churn: the figure the paper could not run.

The paper *argues* that self-reconfiguration keeps a BestPeer network
useful while peers come and go; this experiment measures it.  A base
node issues repeated queries while a :class:`~repro.faults.FaultPlan`
crashes and restarts a ``rate`` fraction of the other nodes (plus, at
nonzero rates, a bounded LIGLO outage and a transient partition).  The
y-axis is *recall*: the fraction of the network's matching objects that
actually arrive.  BPR (MaxCount reconfiguration) is compared against
BPS (static peers) across churn rates 0–50%.

Every stochastic choice — topology, fault timeline, retry jitter —
derives from the params seed, so a (scheme, rate) point replays
bit-identically: same recall series, same bytes on the wire, same drop
counters, serial or parallel.
"""

from __future__ import annotations

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.eval.experiment import ExperimentRunner, FigureResult
from repro.eval.figures import FigureParams, _run_tasks
from repro.faults import FaultPlan, SimFaultInjector
from repro.replication import ReplicationPolicy
from repro.topology.builders import random_graph
from repro.util.retry import RetryPolicy
from repro.workloads.corpus import KeywordCorpus

SCHEME_BPS = "BPS"
SCHEME_BPR = "BPR"
#: Opt-in overlay series: BPR reconfiguration plus rf=2 replication.
SCHEME_BPR_RF2 = "BPR+RF2"

#: Simulated seconds of churn the query workload is spread across.
CHURN_HORIZON = 30.0
#: Quiet period after which a query self-finishes (and reconfigures).
QUERY_QUIET_PERIOD = 2.0
#: Retry policy active during churn trials (tighter than the default so
#: retries resolve inside the horizon).
CHURN_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.25, multiplier=2.0, max_delay=2.0, jitter=0.1
)

DEFAULT_CHURN_RATES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def _fault_plan(node_names: list[str], rate: float, seed: int) -> FaultPlan:
    """Churn sessions plus — when anything churns at all — one LIGLO
    outage and one transient partition, all derived from ``seed``."""
    plan = FaultPlan.churn(
        node_names,
        rate,
        CHURN_HORIZON,
        seed=seed,
        min_downtime=2.0,
        max_downtime=8.0,
    )
    if rate <= 0.0:
        return plan
    plan = plan.extended(
        FaultPlan.liglo_outage("liglo-0", CHURN_HORIZON * 0.3, 5.0)
    )
    half = len(node_names) // 2
    plan = plan.extended(
        FaultPlan.partition_window(
            [node_names[:half], node_names[half:]],
            CHURN_HORIZON * 0.6,
            4.0,
        )
    )
    return plan


def churn_trial(task: tuple[str, float, int, FigureParams]) -> dict:
    """One (scheme, churn rate) point; module-level so it pickles to the
    parallel runner's workers."""
    scheme, rate, node_count, params = task
    strategy = "static" if scheme == SCHEME_BPS else "maxcount"
    replication = (
        ReplicationPolicy(rf=2) if scheme == SCHEME_BPR_RF2 else ReplicationPolicy()
    )
    config = BestPeerConfig(
        max_direct_peers=8,
        ttl=max(7, node_count),
        strategy=strategy,
        retry_policy=CHURN_RETRY_POLICY,
        suspect_after=2,
        retry_seed=params.seed,
        agent_costs=params.costs,
        replication=replication,
    )
    topology = random_graph(node_count, degree=3, seed=params.seed)
    deployment = build_network(node_count, config=config, topology=topology)
    keyword = KeywordCorpus(params.corpus_size).keyword(0)
    # One distinct matching object per non-base node: recall is simply
    # answers-received over (node_count - 1).
    for index, node in enumerate(deployment.nodes[1:], 1):
        node.share_many([([keyword], index.to_bytes(4, "big") * 16)])
    churnable = [node.name for node in deployment.nodes[1:]]  # base never churns
    injector = SimFaultInjector(
        deployment, _fault_plan(churnable, rate, params.seed), tracer=deployment.tracer
    )
    injector.arm()
    base = deployment.base
    handles: list = []

    def issue() -> None:
        handles.append(
            base.issue_query(keyword, auto_finish_after=QUERY_QUIET_PERIOD)
        )

    step = CHURN_HORIZON / params.queries
    for q in range(params.queries):
        deployment.sim.schedule(2.0 + q * step, issue)
    deployment.sim.run()
    expected = node_count - 1
    # The replication overlay dedups by answer content: RF > 1 means two
    # live copies may both respond, and counting both would let recall
    # exceed what the network actually holds.
    if scheme == SCHEME_BPR_RF2:
        recalls = [
            round(min(handle.distinct_answer_count, expected) / expected, 6)
            for handle in handles
        ]
    else:
        recalls = [
            round(handle.network_answer_count / expected, 6) for handle in handles
        ]
    answer_hops = sorted(
        answer.hops for handle in handles for answer in handle.answers
    )
    return {
        "scheme": scheme,
        "rate": rate,
        "recalls": recalls,
        "mean_recall": round(sum(recalls) / len(recalls), 6) if recalls else 0.0,
        "answer_hops": answer_hops,
        "bytes_carried": deployment.network.bytes_carried,
        "packets_delivered": deployment.network.packets_delivered,
        "packets_dropped": deployment.network.packets_dropped,
        "drops_by_reason": dict(sorted(deployment.network.drops_by_reason.items())),
        "degraded_queries": sum(1 for handle in handles if handle.degraded),
        "faults_applied": dict(sorted(injector.applied.items())),
        "suspect_peers": sum(
            len(node.peers.suspect_bpids()) for node in deployment.nodes
        ),
    }


def figure_churn(
    params: FigureParams,
    node_count: int = 12,
    churn_rates: tuple[float, ...] = DEFAULT_CHURN_RATES,
    runner: ExperimentRunner | None = None,
    replication_overlay: bool = False,
) -> FigureResult:
    """Recall vs. churn rate, BPR against BPS.

    Returns a :class:`FigureResult` whose trial details (per-point drop
    counters, fault counts) land in ``notes``-free ``details`` points:
    the raw trial dicts are attached as ``figure_churn.last_trials``
    after each call for benchmarks and tests that want the full
    observables.
    """
    if node_count < 3:
        raise ValueError(f"churn experiment needs >= 3 nodes, got {node_count}")
    schemes = (SCHEME_BPS, SCHEME_BPR)
    if replication_overlay:
        schemes = schemes + (SCHEME_BPR_RF2,)
    tasks = [
        (scheme, rate, node_count, params)
        for scheme in schemes
        for rate in churn_rates
    ]
    trials = _run_tasks(runner, churn_trial, tasks)
    result = FigureResult(
        figure="churn",
        title=f"Recall under churn ({node_count} nodes, {params.queries} queries)",
        x_label="churn rate",
        y_label="mean recall",
        notes=(
            "seeded fault plan: session churn over "
            f"{CHURN_HORIZON}s; nonzero rates add a LIGLO outage and a "
            "transient partition"
        ),
    )
    for trial in trials:
        result.add_point(trial["scheme"], trial["rate"], trial["mean_recall"])
    figure_churn.last_trials = trials  # type: ignore[attr-defined]
    return result
