"""Plain-text rendering of reproduced figures."""

from __future__ import annotations

from typing import Sequence

from repro.eval.experiment import FigureResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_figure(result: FigureResult) -> str:
    """Render one reproduced figure as an x-by-series table."""
    names = sorted(result.series)
    xs: list[float] = []
    for name in names:
        for x, _ in result.series[name]:
            if x not in xs:
                xs.append(x)
    xs.sort()
    lookup = {
        name: {x: y for x, y in result.series[name]} for name in names
    }
    rows = []
    for x in xs:
        row: list[object] = [_fmt(x)]
        for name in names:
            y = lookup[name].get(x)
            row.append("-" if y is None else _fmt(y))
        rows.append(row)
    header = [result.x_label] + names
    body = format_table(header, rows)
    title = f"{result.figure}: {result.title}  [y = {result.y_label}]"
    parts = [title, body]
    if result.notes:
        parts.append(f"note: {result.notes}")
    return "\n".join(parts)


def agent_path_stats(tracer) -> dict[str, object]:
    """Agent execute-path profiling and cache counters for one ``Tracer``.

    Counts and wall-clock totals come from the ``agent-path`` counters
    and timers every :class:`~repro.agents.engine.AgentEngine` mirrors
    into its tracer (see :mod:`repro.agents.profile`); the cache-hit
    counters are process-wide (:func:`repro.agents.codeship.cache_stats`).
    """
    from repro.agents.codeship import cache_stats
    from repro.agents.profile import PROFILE_CATEGORY, PROFILE_OPS

    stats: dict[str, object] = {}
    for op in PROFILE_OPS:
        stats[f"{op}_count"] = tracer.counter(PROFILE_CATEGORY, op)
        stats[f"{op}_seconds"] = round(tracer.timer(PROFILE_CATEGORY, op), 6)
    stats.update(cache_stats())
    return stats


def format_agent_path_stats(tracer) -> str:
    """Render one tracer's agent-path profile as a text table."""
    stats = agent_path_stats(tracer)
    rows = [[key, value] for key, value in stats.items()]
    return format_table(["counter", "value"], rows)


def network_stats(network) -> dict[str, object]:
    """Traffic and wire-encoder counters for one ``Network``."""
    hits = network.encode_hits
    misses = network.encode_misses
    total = hits + misses
    return {
        "packets_delivered": network.packets_delivered,
        "packets_dropped": network.packets_dropped,
        "bytes_carried": network.bytes_carried,
        "encode_hits": hits,
        "encode_misses": misses,
        "encode_hit_ratio": (hits / total) if total else 0.0,
    }


def format_network_stats(network) -> str:
    """Render one network's traffic/encoder counters as a text table."""
    stats = network_stats(network)
    rows = [[key, value] for key, value in stats.items()]
    return format_table(["counter", "value"], rows)
