"""Plain-text rendering of reproduced figures."""

from __future__ import annotations

from typing import Sequence

from repro.eval.experiment import FigureResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_figure(result: FigureResult) -> str:
    """Render one reproduced figure as an x-by-series table."""
    names = sorted(result.series)
    xs: list[float] = []
    for name in names:
        for x, _ in result.series[name]:
            if x not in xs:
                xs.append(x)
    xs.sort()
    lookup = {
        name: {x: y for x, y in result.series[name]} for name in names
    }
    rows = []
    for x in xs:
        row: list[object] = [_fmt(x)]
        for name in names:
            y = lookup[name].get(x)
            row.append("-" if y is None else _fmt(y))
        rows.append(row)
    header = [result.x_label] + names
    body = format_table(header, rows)
    title = f"{result.figure}: {result.title}  [y = {result.y_label}]"
    parts = [title, body]
    if result.notes:
        parts.append(f"note: {result.notes}")
    return "\n".join(parts)


def agent_path_stats(tracer) -> dict[str, object]:
    """Agent execute-path profiling and cache counters for one ``Tracer``.

    Counts and wall-clock totals come from the ``agent-path`` counters
    and timers every :class:`~repro.agents.engine.AgentEngine` mirrors
    into its tracer (see :mod:`repro.agents.profile`); the cache-hit
    counters are process-wide (:func:`repro.agents.codeship.cache_stats`).
    """
    from repro.agents.codeship import cache_stats
    from repro.agents.profile import PROFILE_CATEGORY, PROFILE_OPS

    stats: dict[str, object] = {}
    for op in PROFILE_OPS:
        stats[f"{op}_count"] = tracer.counter(PROFILE_CATEGORY, op)
        stats[f"{op}_seconds"] = round(tracer.timer(PROFILE_CATEGORY, op), 6)
    stats.update(cache_stats())
    return stats


def format_agent_path_stats(tracer) -> str:
    """Render one tracer's agent-path profile as a text table."""
    stats = agent_path_stats(tracer)
    rows = [[key, value] for key, value in stats.items()]
    return format_table(["counter", "value"], rows)


def network_stats(network) -> dict[str, object]:
    """Traffic and wire-encoder counters for one ``Network``."""
    hits = network.encode_hits
    misses = network.encode_misses
    total = hits + misses
    stats: dict[str, object] = {
        "packets_delivered": network.packets_delivered,
        "packets_dropped": network.packets_dropped,
        "bytes_carried": network.bytes_carried,
        "encode_hits": hits,
        "encode_misses": misses,
        "encode_hit_ratio": (hits / total) if total else 0.0,
        "decode_errors": network.decode_errors,
        # per-plane split: where the encoded bytes actually go
        "control_frames": network.encoder.compact_frames,
        "data_frames": network.encoder.data_frames,
        "pickle_payloads": network.encoder.pickle_payloads,
        "control_bytes": network.encoder.control_bytes,
        "data_bytes": network.encoder.data_bytes,
        "fallback_bytes": network.encoder.fallback_bytes,
    }
    for reason in sorted(network.drops_by_reason):
        stats[f"drops_{reason.replace('-', '_')}"] = network.drops_by_reason[reason]
    return stats


def format_network_stats(network) -> str:
    """Render one network's traffic/encoder counters as a text table."""
    stats = network_stats(network)
    rows = [[key, value] for key, value in stats.items()]
    return format_table(["counter", "value"], rows)


def degradation_stats(nodes) -> dict[str, object]:
    """Aggregate graceful-degradation counters across ``nodes``.

    Sums each node's suspect peers, degraded queries, per-cause drop
    counters, request timeouts, and retries — the dashboard for "the
    network is hurting but still answering".
    """
    stats: dict[str, object] = {
        "suspect_peers": 0,
        "queries_degraded": 0,
        "request_timeouts": 0,
        "request_retries": 0,
        "liglo_retries": 0,
    }
    causes: dict[str, int] = {}
    for node in nodes:
        stats["suspect_peers"] += len(node.peers.suspect_bpids())
        stats["request_retries"] += node.request_retries
        stats["liglo_retries"] += node.liglo.retries
        stats["request_timeouts"] += sum(node.request_timeouts.values())
        for handle in node._queries.values():
            if handle.degraded:
                stats["queries_degraded"] += 1
            for cause, count in handle.drop_causes.items():
                causes[cause] = causes.get(cause, 0) + count
    for cause in sorted(causes):
        stats[f"cause_{cause.replace('-', '_')}"] = causes[cause]
    return stats


def format_degradation_stats(nodes) -> str:
    """Render aggregate degradation counters as a text table."""
    stats = degradation_stats(nodes)
    rows = [[key, value] for key, value in stats.items()]
    return format_table(["counter", "value"], rows)


def replication_stats(nodes) -> dict[str, object]:
    """Aggregate replication/cache counters across ``nodes``.

    Sums each node's :meth:`~repro.replication.ReplicationManager.statistics`
    — replicas held and pushed, replica answers served for dead owners,
    cache hits/misses, invalidations, and lazy read-repairs.
    """
    stats: dict[str, object] = {}
    for node in nodes:
        for key, value in node.replication.statistics().items():
            stats[key] = stats.get(key, 0) + value
    return stats


def format_replication_stats(nodes) -> str:
    """Render aggregate replication counters as a text table."""
    stats = replication_stats(nodes)
    rows = [[key, value] for key, value in stats.items()]
    return format_table(["counter", "value"], rows)


def format_replication_trials(trials: Sequence[dict]) -> str:
    """Render replication trial dicts (one per (scheme, rate) point).

    The resilience-vs-overhead trade each scheme makes: mean recall next
    to bytes per query, replica answers (queries a holder saved after
    the owner died), cache hits, and the faults actually applied.
    """
    rows = []
    for trial in trials:
        rep = trial["replication"]
        faults = " ".join(
            f"{kind}={count}"
            for kind, count in sorted(trial["faults_applied"].items())
        )
        rows.append(
            [
                trial["scheme"],
                trial["rate"],
                trial["mean_recall"],
                trial["bytes_per_query"],
                rep["replicas_held"],
                rep["replica_answers"],
                f"{rep['cache_hits']}/{rep['cache_hits'] + rep['cache_misses']}",
                rep["stale_repairs"],
                faults or "-",
            ]
        )
    return format_table(
        [
            "scheme",
            "rate",
            "recall",
            "bytes/query",
            "replicas",
            "replica answers",
            "cache hits",
            "repairs",
            "faults",
        ],
        rows,
    )


def format_churn_trials(trials: Sequence[dict]) -> str:
    """Render churn trial dicts (one per (scheme, rate) point) as a table.

    Shows the graceful-degradation observables behind each mean-recall
    number: degraded queries, suspect peers, packet drops by cause, and
    the faults the plan actually applied.
    """
    rows = []
    for trial in trials:
        drops = " ".join(
            f"{reason}={count}"
            for reason, count in sorted(trial["drops_by_reason"].items())
        )
        faults = " ".join(
            f"{kind}={count}"
            for kind, count in sorted(trial["faults_applied"].items())
        )
        rows.append(
            [
                trial["scheme"],
                trial["rate"],
                trial["mean_recall"],
                trial["degraded_queries"],
                trial["suspect_peers"],
                drops or "-",
                faults or "-",
            ]
        )
    return format_table(
        ["scheme", "rate", "recall", "degraded", "suspects", "drops", "faults"],
        rows,
    )


def format_routing_trials(trials: Sequence[dict]) -> str:
    """Render routing trial dicts (one per (strategy, rate) point).

    The recall-vs-traffic trade each strategy makes: mean recall next to
    messages and bytes per query, plus the hint-directory counters that
    explain *how* super-peer routing got its number (hits route TTL-1 to
    holders; fallbacks flood like everyone else).
    """
    rows = []
    for trial in trials:
        rows.append(
            [
                trial["strategy"],
                trial["rate"],
                trial["mean_recall"],
                trial["messages_per_query"],
                trial["bytes_per_query"],
                f"{trial['hint_hits']}/{trial['hint_queries']}",
                trial["degraded_queries"],
            ]
        )
    return format_table(
        [
            "strategy",
            "rate",
            "recall",
            "msgs/query",
            "bytes/query",
            "hint hits",
            "degraded",
        ],
        rows,
    )


def format_topk_trials(trials: Sequence[dict]) -> str:
    """Render top-k trial dicts (one per (k, ttl, rate) point).

    The traffic-vs-quality trade the bounded accumulator makes: bytes
    and messages per query next to the score-mass quality at each swept
    cutoff, plus the dominated/digest counts that show the pruning
    actually happened in-network rather than at the initiator.
    """
    rows = []
    for trial in trials:
        quality = "  ".join(
            f"@{cutoff}={value}" for cutoff, value in sorted(
                trial["quality"].items(), key=lambda item: int(item[0])
            )
        )
        rows.append(
            [
                trial["label"],
                trial["ttl"],
                trial["rate"],
                trial["answers_per_query"],
                trial["dominated_per_query"],
                trial["bytes_per_query"],
                trial["messages_per_query"],
                quality,
            ]
        )
    return format_table(
        [
            "mode",
            "ttl",
            "rate",
            "answers/q",
            "dominated/q",
            "bytes/query",
            "msgs/query",
            "quality",
        ],
        rows,
    )


def format_scaling_trials(trials: Sequence[dict]) -> str:
    """Render scaling trial dicts (one per executor/size/shards point).

    Shows the evidence behind each speedup number: wall and CPU (or
    critical-path) seconds, barrier traffic, and the determinism check
    against the serial reference run.
    """
    rows = []
    for trial in trials:
        if trial["executor"] == "serial":
            detail = f"cpu={trial['cpu_seconds']}s"
        elif trial["executor"] == "lockstep":
            detail = f"overhead={trial['overhead_vs_serial']}x"
        else:
            detail = (
                f"critical={trial['critical_path_seconds']}s "
                f"proj={trial['projected_speedup']}x "
                f"meas={trial['measured_speedup']}x"
            )
        rows.append(
            [
                trial["executor"],
                trial["node_count"],
                trial["shards"],
                trial["wall_seconds"],
                trial.get("barrier_messages", "-"),
                "yes" if trial["identical"] else "NO",
                detail,
            ]
        )
    return format_table(
        ["executor", "nodes", "shards", "wall s", "barrier", "identical", "detail"],
        rows,
    )
