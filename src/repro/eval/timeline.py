"""Trace timelines: what happened, when, where.

Turns a :class:`~repro.util.tracing.Tracer`'s event stream into a
chronological, human-readable timeline — the debugging view for "why
did that answer arrive so late".  Works on any trace the substrate
records (network sends/deliveries/drops, agent dispatch/execute/dedup,
LIGLO traffic, node reconfigurations).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.util.tracing import Tracer


def render_timeline(
    tracer: Tracer,
    categories: Iterable[str] | None = None,
    start: float = 0.0,
    end: float | None = None,
    limit: int | None = None,
) -> str:
    """Render matching trace events as one line each, time-ordered.

    ``categories`` filters (None = all); ``start``/``end`` bound the
    simulated-time window; ``limit`` truncates long traces with an
    ellipsis line.
    """
    wanted = set(categories) if categories is not None else None
    selected = [
        event
        for event in tracer.events
        if (wanted is None or event.category in wanted)
        and event.time >= start
        and (end is None or event.time <= end)
    ]
    selected.sort(key=lambda event: event.time)
    truncated = 0
    if limit is not None and len(selected) > limit:
        truncated = len(selected) - limit
        selected = selected[:limit]
    if not selected:
        return "(no matching trace events)"
    origin = selected[0].time
    lines = []
    for event in selected:
        offset = (event.time - origin) * 1000.0
        fields = " ".join(f"{k}={v}" for k, v in event.fields)
        lines.append(
            f"+{offset:9.3f}ms  {event.category:8} {event.label:<14} {fields}".rstrip()
        )
    if truncated:
        lines.append(f"... {truncated} more events (limit={limit})")
    return "\n".join(lines)


def event_counts(tracer: Tracer) -> dict[tuple[str, str], int]:
    """Histogram of (category, label) across the whole trace."""
    counts: dict[tuple[str, str], int] = {}
    for event in tracer.events:
        key = (event.category, event.label)
        counts[key] = counts.get(key, 0) + 1
    return counts


def busiest_hosts(tracer: Tracer, top: int = 5) -> list[tuple[str, int]]:
    """Hosts mentioned most often in 'deliver' events (hot spots)."""
    counts: dict[str, int] = {}
    for event in tracer.select("net", "deliver"):
        host = event.get("host")
        if host is not None:
            counts[host] = counts.get(host, 0) + 1
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:top]
