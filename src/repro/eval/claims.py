"""The paper's claims, as executable checks.

Section 4 makes a set of qualitative claims ("SCS performs worse...",
"BP outperforms Gnutella in all runs").  Each is a :class:`Claim` here:
a quote, the figure it belongs to, and a predicate over the reproduced
:class:`~repro.eval.experiment.FigureResult`.  ``verify_figure`` checks
one figure; ``verify_all`` produces the ✓/✗ table EXPERIMENTS.md is
built from; the CLI exposes it as ``python -m repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError
from repro.eval.analysis import (
    crossover,
    dominates,
    growth_factor,
    is_flat,
)
from repro.eval.experiment import FigureResult


@dataclass(frozen=True)
class Claim:
    """One verifiable statement from the paper."""

    claim_id: str
    figure: str
    quote: str
    check: Callable[[FigureResult], bool]

    def holds(self, result: FigureResult) -> bool:
        """Evaluate against a reproduced figure (False on any failure)."""
        try:
            return bool(self.check(result))
        except ExperimentError:
            return False


def _scs_degenerates(result: FigureResult) -> bool:
    # Skip the degenerate single-node point (everything is ~0 there).
    positive = [value for value in result.y_values("SCS") if value > 0]
    return len(positive) >= 2 and growth_factor(positive) > 5.0


def _parallel_schemes_beat_scs(result: FigureResult) -> bool:
    mcs = dict(result.series_named("CS"))
    ratios = [
        scs_y / mcs[x]
        for x, scs_y in result.series_named("SCS")
        if x in mcs and mcs[x] > 0
    ]
    # "Significantly" at scale: the larger networks show >2x at least.
    return len(ratios) >= 2 and all(ratio > 2.0 for ratio in ratios[2:])


def _mcs_gain_not_significant(result: FigureResult) -> bool:
    return all(
        abs(m - b) <= 0.15 * max(m, b, 1e-12)
        for m, b in zip(result.y_values("CS"), result.y_values("BPS"))
    )


def _bps_equals_bpr_on_star(result: FigureResult) -> bool:
    return all(
        abs(left - right) <= 0.05 * max(left, right, 1e-12)
        for left, right in zip(result.y_values("BPS"), result.y_values("BPR"))
    )


def _cs_wins_level_1(result: FigureResult) -> bool:
    return result.y_values("CS")[0] < result.y_values("BPS")[0]


def _cs_degenerates_with_depth(result: FigureResult) -> bool:
    cs = result.y_values("CS")
    bps = result.y_values("BPS")
    return cs[-1] > bps[-1] and growth_factor(cs) > growth_factor(bps)


def _bpr_best_bp_scheme(result: FigureResult) -> bool:
    return dominates(result, "BPR", "BPS", slack=0.02)


def _bpr_beats_cs_except_tiny(result: FigureResult) -> bool:
    cross = crossover(result, "CS", "BPR")
    return cross is not None and cross <= result.series_named("CS")[1][0]


def _cs_fast_first_slow_tail(result: FigureResult) -> bool:
    cs = result.series_named("CS")
    bps = result.series_named("BPS")
    return cs[0][1] <= bps[0][1] and cs[-1][1] > bps[-1][1]


def _gnutella_flat_across_runs(result: FigureResult) -> bool:
    return is_flat(result.y_values("Gnutella"), tolerance=0.1)


def _bp_first_run_highest(result: FigureResult) -> bool:
    bp = result.y_values("BP")
    return bp[0] > bp[1] and bp[0] > bp[-1]


def _bp_beats_gnutella_all_runs(result: FigureResult) -> bool:
    return dominates(result, "BP", "Gnutella") and all(
        b < g for b, g in zip(result.y_values("BP"), result.y_values("Gnutella"))
    )


def _both_improve_with_peers(result: FigureResult) -> bool:
    bp = result.y_values("BP")
    gnutella = result.y_values("Gnutella")
    return bp[-1] < bp[0] and gnutella[-1] < gnutella[0]


def _bp_remains_superior(result: FigureResult) -> bool:
    return all(
        b < g for b, g in zip(result.y_values("BP"), result.y_values("Gnutella"))
    )


#: All claims, keyed by the figure that carries their evidence.
CLAIMS: dict[str, tuple[Claim, ...]] = {
    "5a": (
        Claim(
            "5a-scs",
            "Figure 5(a)",
            "the Single-Thread CS performs worse than the other models",
            _scs_degenerates,
        ),
        Claim(
            "5a-parallel",
            "Figure 5(a)",
            "both MCS and BP-based schemes outperform SCS significantly",
            _parallel_schemes_beat_scs,
        ),
        Claim(
            "5a-mcs",
            "Figure 5(a)",
            "MCS is slightly better than BPS/BPR but the gain is not "
            "significant enough to be visible",
            _mcs_gain_not_significant,
        ),
        Claim(
            "5a-static",
            "Figure 5(a)",
            "BPS and BPR show similar performance (nothing to reconfigure)",
            _bps_equals_bpr_on_star,
        ),
    ),
    "5b": (
        Claim(
            "5b-level1",
            "Figure 5(b)",
            "when the number of levels is 1, CS is superior",
            _cs_wins_level_1,
        ),
        Claim(
            "5b-depth",
            "Figure 5(b)",
            "as the number of levels increases, CS begans to degenerate",
            _cs_degenerates_with_depth,
        ),
        Claim(
            "5b-bpr",
            "Figure 5(b)",
            "BPR outperforms BPS by virtue of ... a more optimal network",
            _bpr_best_bp_scheme,
        ),
    ),
    "5c": (
        Claim(
            "5c-bpr",
            "Figure 5(c)",
            "BPR is the best",
            _bpr_best_bp_scheme,
        ),
        Claim(
            "5c-crossover",
            "Figure 5(c)",
            "BPR outperforms CS for most cases (except when the number "
            "of nodes is very small)",
            _bpr_beats_cs_except_tiny,
        ),
    ),
    "6": (
        Claim(
            "6-bpr",
            "Figure 6",
            "BPR is still the best scheme, outperforming BPS",
            _bpr_best_bp_scheme,
        ),
        Claim(
            "6-cs-tail",
            "Figure 6",
            "except for the first few nodes, CS returns answers much "
            "slower than BPR/BPS",
            _cs_fast_first_slow_tail,
        ),
    ),
    "8a": (
        Claim(
            "8a-flat",
            "Figure 8(a)",
            "Gnutella is essentially not affected by the number of times "
            "the query is run",
            _gnutella_flat_across_runs,
        ),
        Claim(
            "8a-first",
            "Figure 8(a)",
            "for the first search, BP also need to route through the "
            "entire intermediate peers (first run is the highest)",
            _bp_first_run_highest,
        ),
        Claim(
            "8a-wins",
            "Figure 8(a)",
            "BP outperforms Gnutella in all runs",
            _bp_beats_gnutella_all_runs,
        ),
    ),
    "8b": (
        Claim(
            "8b-improve",
            "Figure 8(b)",
            "Gnutella's performance also improves with more peers",
            _both_improve_with_peers,
        ),
        Claim(
            "8b-superior",
            "Figure 8(b)",
            "as the number of directly connected peers increases, BP "
            "remains superior",
            _bp_remains_superior,
        ),
    ),
}


def verify_figure(key: str, result: FigureResult) -> list[tuple[Claim, bool]]:
    """Evaluate every claim attached to one figure key."""
    try:
        claims = CLAIMS[key]
    except KeyError:
        known = ", ".join(sorted(CLAIMS))
        raise ExperimentError(f"no claims for figure {key!r}; known: {known}") from None
    return [(claim, claim.holds(result)) for claim in claims]


def verify_all(results: dict[str, FigureResult]) -> str:
    """Render a ✓/✗ report over every figure present in ``results``."""
    lines = []
    passed = 0
    total = 0
    for key in sorted(CLAIMS):
        result = results.get(key)
        if result is None:
            continue
        for claim, holds in verify_figure(key, result):
            total += 1
            passed += holds
            mark = "PASS" if holds else "FAIL"
            lines.append(f"[{mark}] {claim.figure}: {claim.quote}")
    lines.append(f"\n{passed}/{total} paper claims hold")
    return "\n".join(lines)
