"""Bytes-on-wire vs answer quality for in-network top-k — the TTL x k sweep.

The in-network top-k merge (``BestPeerConfig.top_k``) promises that
dominated answers die at the hop that sees them instead of riding home
to the initiator.  This figure prices that promise: the same workload —
a base node querying an overlay where every other node holds several
matching objects with a TF score gradient — runs exhaustively
(``k=None``) and with bounded accumulators (``k=4``, ``k=16``) across a
TTL sweep, clean and under the PR 4 churn plan.  Per point the trial
records bytes and messages per query (counted from just before the
first query, so store population and registration are excluded) next to
the answer *quality*: the score mass retrieved by
:meth:`QueryHandle.top_answers` over the score mass of the true global
top-k, computed by the exhaustive
:func:`~repro.baselines.gnutella.scored_reference` oracle over every
store.  A top-k run earns its traffic cut only at quality no worse than
the exhaustive flood's at the same cutoff.

Every stochastic choice — topology, fault timeline, retry jitter —
derives from the params seed, so every point replays bit-identically,
serial or parallel.
"""

from __future__ import annotations

from repro.baselines.gnutella import scored_reference
from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.eval.churn import CHURN_HORIZON, CHURN_RETRY_POLICY, QUERY_QUIET_PERIOD, _fault_plan
from repro.eval.experiment import ExperimentRunner, FigureResult
from repro.eval.figures import FigureParams, _run_tasks
from repro.faults import SimFaultInjector
from repro.topology.builders import random_graph
from repro.workloads.corpus import KeywordCorpus

#: Accumulator bounds swept against the exhaustive baseline (None).
DEFAULT_TOPK_KS = (4, 16, None)

#: TTL sweep — shallow floods answer from fewer hops; the traffic cut
#: must hold at every reach.
DEFAULT_TOPK_TTLS = (2, 4, 8)

#: Churn rates (clean + the stress point, as the routing figure).
DEFAULT_TOPK_RATES = (0.0, 0.3)

#: Matching objects per non-base node and their payload size.  Pinned
#: (like the routing figure's fill) rather than taken from params: the
#: claim under test lives in the regime where answer payloads dominate
#: query traffic and the network holds many more matches than k — so
#: per-node truncation and threshold dominance both bite.  2 KiB stays
#: under the StorM page-record cap.
MATCHES_PER_NODE = 32
OBJECT_BYTES = 2048


def _label(k: int | None) -> str:
    return "exhaustive" if k is None else f"k={k}"


def _mass(scores, k: int) -> float:
    return sum(sorted(scores, reverse=True)[:k])


def topk_trial(task: tuple) -> dict:
    """One (k, ttl, churn rate) point; module-level so it pickles to the
    parallel runner's workers."""
    k, ttl, rate, node_count, eval_ks, params = task
    config = BestPeerConfig(
        max_direct_peers=8,
        ttl=ttl,
        top_k=k,
        retry_policy=CHURN_RETRY_POLICY,
        suspect_after=2,
        retry_seed=params.seed,
        agent_costs=params.costs,
    )
    topology = random_graph(node_count, degree=3, seed=params.seed)
    deployment = build_network(node_count, config=config, topology=topology)
    keyword = KeywordCorpus(params.corpus_size).keyword(0)
    # Several matches per non-base node with node-and-object-varying TF
    # scores: the accumulator has real dominance decisions to make.
    for index, node in enumerate(deployment.nodes[1:], 1):
        node.share_many(
            [
                (
                    [keyword] + ["filler"] * (1 + ((index * 7 + j * 3) % 6)),
                    (index * MATCHES_PER_NODE + j).to_bytes(4, "big")
                    * (OBJECT_BYTES // 4),
                )
                for j in range(MATCHES_PER_NODE)
            ]
        )
    # The oracle sees every store before any churn fires: the ideal
    # answer set a lossless exhaustive flood would retrieve.
    reference = scored_reference(
        [(node.name, node.storm) for node in deployment.nodes], keyword
    )
    reference_scores = [score for score, _label_, _rid in reference]
    churnable = [node.name for node in deployment.nodes[1:]]  # base never churns
    injector = SimFaultInjector(
        deployment, _fault_plan(churnable, rate, params.seed), tracer=deployment.tracer
    )
    injector.arm()
    base = deployment.base
    handles: list = []
    setup = {"packets": 0, "bytes": 0}

    def mark_setup_done() -> None:
        setup["packets"] = deployment.network.packets_delivered
        setup["bytes"] = deployment.network.bytes_carried

    def issue() -> None:
        handles.append(
            base.issue_query(keyword, auto_finish_after=QUERY_QUIET_PERIOD)
        )

    step = CHURN_HORIZON / params.queries
    deployment.sim.schedule(1.9, mark_setup_done)
    for q in range(params.queries):
        deployment.sim.schedule(2.0 + q * step, issue)
    deployment.sim.run()
    queries = max(len(handles), 1)
    query_packets = deployment.network.packets_delivered - setup["packets"]
    query_bytes = deployment.network.bytes_carried - setup["bytes"]
    # Quality at cutoff c: retrieved score mass over the oracle's top-c
    # mass, averaged over queries.  top_answers() re-scores exhaustive
    # items from their tags, so both modes are judged identically.
    quality = {}
    for cutoff in eval_ks:
        ideal = _mass(reference_scores, cutoff)
        if not ideal:
            quality[str(cutoff)] = 1.0
            continue
        ratios = [
            min(1.0, sum(s for s, _h, _r in handle.top_answers(cutoff)) / ideal)
            for handle in handles
        ]
        quality[str(cutoff)] = round(sum(ratios) / queries, 6)
    answers = sum(handle.network_answer_count for handle in handles)
    dominated = sum(handle.dominated_dropped for handle in handles)
    digests = sum(len(handle.digests) for handle in handles)
    return {
        "k": k,
        "label": _label(k),
        "ttl": ttl,
        "rate": rate,
        "answers_per_query": round(answers / queries, 3),
        "dominated_per_query": round(dominated / queries, 3),
        "digests_per_query": round(digests / queries, 3),
        "messages_per_query": round(query_packets / queries, 3),
        "bytes_per_query": round(query_bytes / queries, 1),
        "quality": quality,
        "reference_size": len(reference),
        "setup_packets": setup["packets"],
        "setup_bytes": setup["bytes"],
        "packets_delivered": deployment.network.packets_delivered,
        "bytes_carried": deployment.network.bytes_carried,
        "packets_dropped": deployment.network.packets_dropped,
        "drops_by_reason": dict(sorted(deployment.network.drops_by_reason.items())),
        "degraded_queries": sum(1 for handle in handles if handle.degraded),
        "faults_applied": dict(sorted(injector.applied.items())),
    }


def figure_topk(
    params: FigureParams,
    node_count: int = 16,
    ks: tuple = DEFAULT_TOPK_KS,
    ttls: tuple = DEFAULT_TOPK_TTLS,
    churn_rates: tuple = DEFAULT_TOPK_RATES,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Bytes per query vs TTL, one series per (k, churn rate).

    The plotted series carry bytes per query; the full observables —
    answer quality at every swept cutoff, dominated/digest counts,
    message totals, fault counts — are attached as
    ``figure_topk.last_trials`` after each call, exactly like the
    routing figure does.
    """
    if node_count < 3:
        raise ValueError(f"top-k experiment needs >= 3 nodes, got {node_count}")
    eval_ks = tuple(sorted({k for k in ks if k is not None})) or (4, 16)
    tasks = [
        (k, ttl, rate, node_count, eval_ks, params)
        for k in ks
        for ttl in ttls
        for rate in churn_rates
    ]
    trials = _run_tasks(runner, topk_trial, tasks)
    result = FigureResult(
        figure="topk",
        title=(
            f"In-network top-k: bytes vs TTL ({node_count} nodes, "
            f"{MATCHES_PER_NODE} matches/node, {params.queries} queries)"
        ),
        x_label="TTL",
        y_label="bytes per query",
        notes=(
            "answer quality (score-mass ratio vs the exhaustive oracle) "
            "per cutoff in trial details; seeded fault plan as the churn "
            "figure; dominated answers die in-network as digests"
        ),
    )
    for trial in trials:
        series = trial["label"] + (
            "" if trial["rate"] == 0 else f" churn={trial['rate']}"
        )
        result.add_point(series, trial["ttl"], trial["bytes_per_query"])
    figure_topk.last_trials = trials  # type: ignore[attr-defined]
    return result
