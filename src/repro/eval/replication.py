"""Recall under churn with replication — resilience, not just survival.

The churn figure shows a reconfigurable network *degrading gracefully*:
recall falls as owners crash, because every object lives on exactly one
node.  This figure prices the fix.  A base node runs a Zipf(1.0)-skewed
query workload over per-node distinct objects while a seeded churn plan
crashes and restarts the owners; three schemes share the identical
workload and fault timeline:

* ``RF1`` — the paper's single-copy behaviour (baseline);
* ``RF2`` — every object materialises one extra replica at share time;
* ``RF2+cache`` — RF2 plus hotness promotion (``hot_rf=3``) and the
  initiator's invalidation-coherent result cache.

Recall is binary per query — did *any* copy of the queried object
answer? — with the :attr:`~repro.core.query.QueryHandle.distinct_answer_count`
dedup, so RF > 1 never double-counts.  Bytes per query (counted from
just before the first query) shows what the extra copies cost on the
wire and what the cache claws back on Zipf-hot repeats.

Unlike the churn figure's fault plan, churn here is sessions only (no
LIGLO outage, no partition): the claim under test is *owner death*, and
replicas on live holders cannot answer across a partition no scheme
could cross.

Every stochastic choice — topology, fault timeline, Zipf draw, retry
jitter — derives from the params seed, so every point replays
bit-identically, serial or parallel.
"""

from __future__ import annotations

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.eval.churn import CHURN_HORIZON, CHURN_RETRY_POLICY, QUERY_QUIET_PERIOD
from repro.eval.experiment import ExperimentRunner, FigureResult
from repro.eval.figures import FigureParams, _run_tasks
from repro.faults import FaultPlan, SimFaultInjector
from repro.replication import ReplicationPolicy
from repro.topology.builders import random_graph
from repro.workloads.corpus import KeywordCorpus
from repro.workloads.queries import QueryWorkload

SCHEME_RF1 = "RF1"
SCHEME_RF2 = "RF2"
SCHEME_RF2_CACHE = "RF2+cache"

DEFAULT_SCHEMES = (SCHEME_RF1, SCHEME_RF2, SCHEME_RF2_CACHE)
DEFAULT_CHURN_RATES = (0.0, 0.3, 0.5)

#: Zipf skew of the query stream — the classic content-popularity model;
#: repeats concentrate on low-index objects, which is what the hot
#: promotion and the result cache exist to exploit.
QUERY_SKEW = 1.0

#: Queries per trial: recall is binary per query, so the floor keeps the
#: mean meaningful even under quick smoke params.
MIN_QUERIES = 16

#: Payload bytes of every shared object.
OBJECT_BYTES = 256


def replication_policy_for(scheme: str) -> ReplicationPolicy:
    """The per-node policy each scheme runs under."""
    if scheme == SCHEME_RF1:
        return ReplicationPolicy()
    if scheme == SCHEME_RF2:
        return ReplicationPolicy(rf=2)
    if scheme == SCHEME_RF2_CACHE:
        return ReplicationPolicy(rf=2, hot_rf=3, cache_capacity=32)
    raise ValueError(f"unknown replication scheme {scheme!r}")


def replication_trial(task: tuple[str, float, int, FigureParams]) -> dict:
    """One (scheme, churn rate) point; module-level so it pickles to the
    parallel runner's workers."""
    scheme, rate, node_count, params = task
    config = BestPeerConfig(
        max_direct_peers=8,
        ttl=max(7, node_count),
        strategy="maxcount",
        retry_policy=CHURN_RETRY_POLICY,
        suspect_after=2,
        retry_seed=params.seed,
        agent_costs=params.costs,
        replication=replication_policy_for(scheme),
    )
    topology = random_graph(node_count, degree=3, seed=params.seed)
    deployment = build_network(node_count, config=config, topology=topology)
    # One distinct object per non-base node: object i (and only it)
    # matches keyword i, so per-query recall is a crisp 0/1.
    corpus = KeywordCorpus(node_count - 1)
    for index, node in enumerate(deployment.nodes[1:], 1):
        node.share_many(
            [([corpus.keyword(index - 1)], index.to_bytes(4, "big") * (OBJECT_BYTES // 4))]
        )
    deployment.sim.run()  # replica offer/accept/push handshakes settle
    query_count = max(MIN_QUERIES, params.queries)
    keywords = QueryWorkload(corpus, skew=QUERY_SKEW, seed=params.seed).keywords(
        query_count
    )
    # Sessions only — no LIGLO outage, no partition: owner death is the
    # failure mode replicas answer for.
    churnable = [node.name for node in deployment.nodes[1:]]  # base never churns
    plan = FaultPlan.churn(
        churnable,
        rate,
        CHURN_HORIZON,
        seed=params.seed,
        min_downtime=2.0,
        max_downtime=8.0,
    )
    injector = SimFaultInjector(deployment, plan, tracer=deployment.tracer)
    injector.arm()
    base = deployment.base
    handles: list = []
    setup = {"packets": 0, "bytes": 0}

    def mark_setup_done() -> None:
        setup["packets"] = deployment.network.packets_delivered
        setup["bytes"] = deployment.network.bytes_carried

    def issue(keyword: str) -> None:
        handles.append(
            base.issue_query(keyword, auto_finish_after=QUERY_QUIET_PERIOD)
        )

    step = CHURN_HORIZON / query_count
    deployment.sim.schedule(1.9, mark_setup_done)
    for q, keyword in enumerate(keywords):
        deployment.sim.schedule(2.0 + q * step, issue, keyword)
    deployment.sim.run()
    queries = max(len(handles), 1)
    query_packets = deployment.network.packets_delivered - setup["packets"]
    query_bytes = deployment.network.bytes_carried - setup["bytes"]
    # Binary recall with replica dedup: any one copy answering counts
    # exactly once; extra copies never inflate the score.
    recalls = [
        1 if handle.distinct_answer_count >= 1 else 0 for handle in handles
    ]
    stats_keys = (
        "replicas_held",
        "replica_answers",
        "replicas_pushed",
        "invalidations",
        "stale_repairs",
        "cache_hits",
        "cache_misses",
    )
    replication_stats = {key: 0 for key in stats_keys}
    for node in deployment.nodes:
        node_stats = node.replication.statistics()
        for key in stats_keys:
            replication_stats[key] += node_stats[key]
    return {
        "scheme": scheme,
        "rate": rate,
        "recalls": recalls,
        "mean_recall": round(sum(recalls) / queries, 6),
        "queries": queries,
        "cached_queries": sum(1 for handle in handles if handle.served_from_cache),
        "messages_per_query": round(query_packets / queries, 3),
        "bytes_per_query": round(query_bytes / queries, 1),
        "setup_packets": setup["packets"],
        "setup_bytes": setup["bytes"],
        "packets_delivered": deployment.network.packets_delivered,
        "bytes_carried": deployment.network.bytes_carried,
        "packets_dropped": deployment.network.packets_dropped,
        "drops_by_reason": dict(sorted(deployment.network.drops_by_reason.items())),
        "degraded_queries": sum(1 for handle in handles if handle.degraded),
        "faults_applied": dict(sorted(injector.applied.items())),
        "replication": replication_stats,
    }


def figure_replication(
    params: FigureParams,
    node_count: int = 12,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    churn_rates: tuple[float, ...] = DEFAULT_CHURN_RATES,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Mean recall vs churn rate, one series per replication scheme.

    The plotted series carry recall; bytes/messages per query, cache
    hit counts, repair counts, and fault counts are attached as
    ``figure_replication.last_trials`` after each call, exactly like
    the churn and top-k figures do.
    """
    if node_count < 3:
        raise ValueError(
            f"replication experiment needs >= 3 nodes, got {node_count}"
        )
    tasks = [
        (scheme, rate, node_count, params)
        for scheme in schemes
        for rate in churn_rates
    ]
    trials = _run_tasks(runner, replication_trial, tasks)
    result = FigureResult(
        figure="replication",
        title=(
            f"Recall under churn with replication ({node_count} nodes, "
            f"Zipf({QUERY_SKEW}) queries)"
        ),
        x_label="churn rate",
        y_label="mean recall",
        notes=(
            "sessions-only seeded churn plan over "
            f"{CHURN_HORIZON}s; binary per-query recall with replica "
            "dedup; bytes per query in trial details"
        ),
    )
    for trial in trials:
        result.add_point(trial["scheme"], trial["rate"], trial["mean_recall"])
    figure_replication.last_trials = trials  # type: ignore[attr-defined]
    return result
