"""Series analysis: the shape checks behind the benchmark assertions.

Every qualitative claim EXPERIMENTS.md verifies ("who wins", "where the
crossover falls", "flat across runs") is a small function here, so the
benchmarks, tests, and any downstream notebooks share one definition of
each shape.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ExperimentError
from repro.eval.experiment import FigureResult


def speedup(result: FigureResult, slower: str, faster: str) -> list[float]:
    """Pointwise ratio ``slower / faster`` where both series have x."""
    fast = dict(result.series_named(faster))
    ratios = []
    for x, slow_y in result.series_named(slower):
        fast_y = fast.get(x)
        if fast_y is None:
            continue
        if fast_y <= 0:
            raise ExperimentError(f"non-positive value in series {faster!r} at {x}")
        ratios.append(slow_y / fast_y)
    if not ratios:
        raise ExperimentError(f"series {slower!r} and {faster!r} share no x values")
    return ratios


def crossover(result: FigureResult, a: str, b: str) -> float | None:
    """First shared x where series ``a`` stops being below series ``b``.

    Returns None when ``a`` stays below ``b`` everywhere (no crossover),
    or the x of the first point where ``a >= b``.
    """
    b_points = dict(result.series_named(b))
    shared = [
        (x, y) for x, y in result.series_named(a) if x in b_points
    ]
    if not shared:
        raise ExperimentError(f"series {a!r} and {b!r} share no x values")
    for x, a_y in shared:
        if a_y >= b_points[x]:
            return x
    return None


def is_flat(values: Sequence[float], tolerance: float = 0.1) -> bool:
    """True when the spread is within ``tolerance`` of the maximum."""
    if not values:
        raise ExperimentError("is_flat() of empty series")
    top = max(values)
    if top == 0:
        return True
    return (top - min(values)) <= tolerance * top


def is_monotone_increasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when each value is >= the previous (within ``slack``×prev)."""
    return all(b >= a * (1.0 - slack) for a, b in zip(values, values[1:]))


def is_monotone_decreasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when each value is <= the previous (within ``slack``×prev)."""
    return all(b <= a * (1.0 + slack) for a, b in zip(values, values[1:]))


def dominates(
    result: FigureResult, better: str, worse: str, slack: float = 0.0
) -> bool:
    """True when ``better`` <= ``worse`` at every shared x (with slack)."""
    worse_points = dict(result.series_named(worse))
    shared = [
        (y, worse_points[x])
        for x, y in result.series_named(better)
        if x in worse_points
    ]
    if not shared:
        raise ExperimentError(f"series {better!r} and {worse!r} share no x values")
    return all(b <= w * (1.0 + slack) for b, w in shared)


def growth_factor(values: Sequence[float]) -> float:
    """last / first — how much a series grew end to end."""
    if len(values) < 2:
        raise ExperimentError("growth_factor() needs at least two points")
    if values[0] <= 0:
        raise ExperimentError("growth_factor() needs a positive first value")
    return values[-1] / values[0]


def summarize_shapes(result: FigureResult) -> dict[str, dict[str, float | bool]]:
    """Per-series quick facts: first, last, growth, flatness."""
    summary: dict[str, dict[str, float | bool]] = {}
    for name in sorted(result.series):
        values = result.y_values(name)
        entry: dict[str, float | bool] = {
            "first": values[0],
            "last": values[-1],
            "flat(10%)": is_flat(values, 0.1),
        }
        if len(values) >= 2 and values[0] > 0:
            entry["growth"] = values[-1] / values[0]
        summary[name] = entry
    return summary
