"""ASCII line plots for reproduced figures.

Terminal-friendly rendering so ``python -m repro figure 5c --plot``
shows the shape, not just the numbers.  One character cell per (column,
row); each series gets a letter from its legend; overlapping points
render ``*``.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.eval.experiment import FigureResult


def render_ascii_plot(
    result: FigureResult, width: int = 64, height: int = 16
) -> str:
    """Render a FigureResult as an ASCII chart with a legend."""
    if width < 16 or height < 4:
        raise ExperimentError(f"plot area {width}x{height} is too small")
    if not result.series:
        raise ExperimentError("nothing to plot: the figure has no series")
    names = sorted(result.series)
    markers = {name: chr(ord("A") + i % 26) for i, name in enumerate(names)}
    xs = [x for name in names for x, _ in result.series[name]]
    ys = [y for name in names for _, y in result.series[name]]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name in names:
        marker = markers[name]
        for x, y in result.series[name]:
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            current = grid[row][column]
            grid[row][column] = marker if current in (" ", marker) else "*"

    lines = [f"{result.figure}: {result.title}"]
    top_label = f"{y_high:.4g}"
    bottom_label = f"{y_low:.4g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for index, row in enumerate(grid):
        if index == 0:
            label = top_label.rjust(gutter - 1)
        elif index == height - 1:
            label = bottom_label.rjust(gutter - 1)
        else:
            label = " " * (gutter - 1)
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * gutter + "-" * width)
    x_axis = f"{x_low:.4g}".ljust(width - 8) + f"{x_high:.4g}".rjust(8)
    lines.append(" " * gutter + x_axis)
    lines.append(
        "legend: "
        + "  ".join(f"{markers[name]}={name}" for name in names)
        + "   (* = overlap)"
    )
    return "\n".join(lines)
