"""Experiment scaffolding: repeated runs and figure-shaped results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ExperimentError
from repro.util.stats import RunningStats


@dataclass
class FigureResult:
    """A reproduced figure: named series of (x, y) points."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""

    def add_point(self, name: str, x: float, y: float) -> None:
        self.series.setdefault(name, []).append((x, y))

    def series_named(self, name: str) -> list[tuple[float, float]]:
        try:
            return self.series[name]
        except KeyError:
            known = ", ".join(sorted(self.series))
            raise ExperimentError(f"no series {name!r}; known: {known}") from None

    def y_values(self, name: str) -> list[float]:
        return [y for _, y in self.series_named(name)]


class ExperimentRunner:
    """Runs a measurement callable across repetitions and aggregates.

    The paper: "the results presented correspond to the average of at
    least three different executions.  The variance across different
    executions was not significant."  Each repetition gets its own seed
    so workload randomness differs while staying reproducible.
    """

    def __init__(self, repetitions: int = 3, base_seed: int = 0):
        if repetitions < 1:
            raise ExperimentError(f"repetitions must be >= 1, got {repetitions}")
        self.repetitions = repetitions
        self.base_seed = base_seed

    def measure(self, run: Callable[[int], float]) -> RunningStats:
        """Call ``run(seed)`` once per repetition; aggregate the floats."""
        stats = RunningStats()
        for repetition in range(self.repetitions):
            stats.add(run(self.base_seed + repetition))
        return stats

    def collect(self, run: Callable[[int], object]) -> list:
        """Call ``run(seed)`` per repetition; return all results."""
        return [run(self.base_seed + rep) for rep in range(self.repetitions)]
