"""Experiment scaffolding: repeated runs and figure-shaped results."""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.util.stats import RunningStats

#: Environment variable consulted for the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (1 — fully serial — when unset)."""
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ExperimentError(f"{JOBS_ENV_VAR}={raw!r} is not an integer") from None
    if jobs < 1:
        raise ExperimentError(f"{JOBS_ENV_VAR} must be >= 1, got {jobs}")
    return jobs


@dataclass
class FigureResult:
    """A reproduced figure: named series of (x, y) points."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""

    def add_point(self, name: str, x: float, y: float) -> None:
        self.series.setdefault(name, []).append((x, y))

    def series_named(self, name: str) -> list[tuple[float, float]]:
        try:
            return self.series[name]
        except KeyError:
            known = ", ".join(sorted(self.series))
            raise ExperimentError(f"no series {name!r}; known: {known}") from None

    def y_values(self, name: str) -> list[float]:
        return [y for _, y in self.series_named(name)]


class ExperimentRunner:
    """Runs a measurement callable across repetitions and aggregates.

    The paper: "the results presented correspond to the average of at
    least three different executions.  The variance across different
    executions was not significant."  Each repetition gets its own seed
    so workload randomness differs while staying reproducible.
    """

    def __init__(self, repetitions: int = 3, base_seed: int = 0):
        if repetitions < 1:
            raise ExperimentError(f"repetitions must be >= 1, got {repetitions}")
        self.repetitions = repetitions
        self.base_seed = base_seed

    def measure(self, run: Callable[[int], float]) -> RunningStats:
        """Call ``run(seed)`` once per repetition; aggregate the floats."""
        stats = RunningStats()
        for value in self.collect(run):
            stats.add(value)
        return stats

    def collect(self, run: Callable[[int], object]) -> list:
        """Call ``run(seed)`` per repetition; return all results."""
        seeds = [self.base_seed + rep for rep in range(self.repetitions)]
        return self.map_tasks(run, seeds)

    def map_tasks(self, func: Callable, tasks: Sequence) -> list:
        """Apply ``func`` to every task, in order.  Subclasses may fan out;
        the base runner is strictly serial."""
        return [func(task) for task in tasks]


class ParallelExperimentRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that fans independent tasks out to a
    ``multiprocessing`` pool.

    Every simulation is seeded and single-threaded, so repetitions and
    sweep points are embarrassingly parallel: results are collected in
    task order and are bit-identical to a serial run.  ``jobs`` defaults
    to ``REPRO_JOBS`` (or 1); with one job — or with a task function the
    pickler cannot ship (e.g. a closure) — execution silently stays
    serial, so this class is always safe to use.
    """

    def __init__(
        self,
        repetitions: int = 3,
        base_seed: int = 0,
        jobs: int | None = None,
    ):
        super().__init__(repetitions=repetitions, base_seed=base_seed)
        self.jobs = default_jobs() if jobs is None else jobs
        if self.jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {self.jobs}")

    def map_tasks(self, func: Callable, tasks: Sequence) -> list:
        tasks = list(tasks)
        workers = min(self.jobs, len(tasks))
        if workers <= 1 or not _picklable((func, tasks)):
            return [func(task) for task in tasks]
        with multiprocessing.get_context().Pool(workers) as pool:
            # Pool.map preserves task order, so the result list is
            # indistinguishable from the serial one.
            return pool.map(func, tasks)


def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True
