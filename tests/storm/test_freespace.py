"""FreeSpaceMap: the segment-tree first-fit index must agree with a
naive linear scan on every operation sequence."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.storm.freespace import FreeSpaceMap


def naive_first_fit(free: list[int], needed: int, start: int = 0) -> int | None:
    for page_id in range(start, len(free)):
        if free[page_id] >= needed:
            return page_id
    return None


def test_empty_map():
    fsm = FreeSpaceMap()
    assert len(fsm) == 0
    assert fsm.first_at_least(1) is None
    assert fsm.get(0) == 0
    assert 0 not in fsm


def test_sequential_fill_and_query():
    fsm = FreeSpaceMap()
    for page_id in range(10):
        fsm.set(page_id, page_id * 10)
    assert fsm.first_at_least(35) == 4
    assert fsm.first_at_least(35, start=5) == 5
    assert fsm.first_at_least(91) is None
    assert fsm.first_at_least(0) == 0
    assert list(fsm.items()) == [(i, i * 10) for i in range(10)]


def test_update_moves_the_answer():
    fsm = FreeSpaceMap()
    for page_id in range(4):
        fsm.set(page_id, 100)
    fsm.set(0, 5)
    fsm.set(1, 5)
    assert fsm.first_at_least(50) == 2
    fsm.set(2, 0)
    assert fsm.first_at_least(50) == 3
    fsm.set(3, 49)
    assert fsm.first_at_least(50) is None


@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=40), st.integers(0, 500)),
        max_size=80,
    ),
    queries=st.lists(
        st.tuples(st.integers(0, 501), st.integers(0, 45)), max_size=20
    ),
)
def test_matches_naive_linear_scan(ops, queries):
    fsm = FreeSpaceMap()
    mirror: list[int] = []
    for page_id, free in ops:
        # Mimic sequential page allocation: clamp into the next-free slot
        # so the map grows the way a heap file grows.
        page_id = min(page_id, len(mirror))
        if page_id == len(mirror):
            mirror.append(free)
        else:
            mirror[page_id] = free
        fsm.set(page_id, free)
    assert list(fsm.items()) == list(enumerate(mirror))
    for needed, start in queries:
        assert fsm.first_at_least(needed, start=start) == naive_first_fit(
            mirror, needed, start
        ), (needed, start, mirror)
