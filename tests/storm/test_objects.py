"""Tests for the stored-object codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StormError
from repro.storm.objects import StoredObject, normalize_keyword

keyword_strategy = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=20,
)


class TestStoredObject:
    def test_round_trip(self):
        obj = StoredObject(("jazz", "bebop"), b"some audio bytes")
        assert StoredObject.decode(obj.encode()) == obj

    def test_keywords_normalized(self):
        obj = StoredObject((" Jazz ", "BEBOP"), b"")
        assert obj.keywords == ("jazz", "bebop")

    def test_matches_is_case_insensitive(self):
        obj = StoredObject(("jazz",), b"")
        assert obj.matches("JAZZ")
        assert obj.matches("  jazz ")
        assert not obj.matches("rock")

    def test_empty_keyword_rejected(self):
        with pytest.raises(StormError):
            StoredObject(("  ",), b"")

    def test_no_keywords_allowed(self):
        obj = StoredObject((), b"payload")
        assert StoredObject.decode(obj.encode()) == obj

    def test_size(self):
        assert StoredObject(("k",), b"x" * 1024).size == 1024

    def test_unicode_keywords(self):
        obj = StoredObject(("café", "日本語"), b"")
        assert StoredObject.decode(obj.encode()) == obj

    def test_corrupt_record_raises(self):
        with pytest.raises(StormError):
            StoredObject.decode(b"\xff")

    def test_truncated_keyword_raises(self):
        obj = StoredObject(("keyword",), b"")
        data = obj.encode()
        with pytest.raises(StormError):
            StoredObject.decode(data[:5])

    def test_truncated_payload_raises(self):
        obj = StoredObject(("k",), b"payload-bytes")
        data = obj.encode()
        with pytest.raises(StormError):
            StoredObject.decode(data[:-3])

    def test_trailing_bytes_raise(self):
        obj = StoredObject(("k",), b"p")
        with pytest.raises(StormError):
            StoredObject.decode(obj.encode() + b"junk")

    @given(
        st.lists(keyword_strategy, max_size=5),
        st.binary(max_size=2048),
    )
    def test_round_trip_property(self, keywords, payload):
        obj = StoredObject(tuple(keywords), payload)
        assert StoredObject.decode(obj.encode()) == obj


def test_normalize_keyword():
    assert normalize_keyword("  MiXeD ") == "mixed"
    assert normalize_keyword("ß") == "ss"  # casefold, not lower
