"""Stateful (model-based) property tests for the storage substrate.

Hypothesis drives random operation sequences against the real structures
while simple Python models predict what every read must return.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.storm.btree import BPlusTree
from repro.storm.buffer import BufferManager
from repro.storm.disk import InMemoryDisk


class BufferMachine(RuleBasedStateMachine):
    """The buffer manager is a transparent write-back cache."""

    def __init__(self):
        super().__init__()
        self.disk = InMemoryDisk(page_size=128)
        self.buffer = BufferManager(self.disk, pool_size=3)
        self.model: dict[int, int] = {}  # page_id -> first byte
        self.pinned: dict[int, int] = {}  # page_id -> pin count

    pages = Bundle("pages")

    @rule(target=pages, value=st.integers(min_value=0, max_value=255))
    def new_page(self, value):
        page_id, data = self.buffer.new_page()
        data[0] = value
        self.buffer.mark_dirty(page_id)
        self.buffer.unpin(page_id)
        self.model[page_id] = value
        return page_id

    @rule(page_id=pages)
    def read_page(self, page_id):
        with self.buffer.pinned(page_id) as data:
            assert data[0] == self.model[page_id]

    @rule(page_id=pages, value=st.integers(min_value=0, max_value=255))
    def write_page(self, page_id, value):
        with self.buffer.pinned(page_id) as data:
            data[0] = value
            self.buffer.mark_dirty(page_id)
        self.model[page_id] = value

    @rule(page_id=pages)
    def pin_for_a_while(self, page_id):
        # Keep at most two long-term pins so a frame always stays free.
        if sum(self.pinned.values()) >= 2:
            return
        self.buffer.pin(page_id)
        self.pinned[page_id] = self.pinned.get(page_id, 0) + 1

    @rule(page_id=pages)
    def release_pin(self, page_id):
        if self.pinned.get(page_id, 0) > 0:
            self.buffer.unpin(page_id)
            self.pinned[page_id] -= 1

    @rule()
    def flush_everything(self):
        self.buffer.flush_all()

    @invariant()
    def pinned_pages_stay_resident(self):
        for page_id, count in self.pinned.items():
            if count > 0:
                assert self.buffer.is_resident(page_id)

    @invariant()
    def pool_never_over_capacity(self):
        assert len(self.buffer.resident_pages) <= self.buffer.pool_size

    @invariant()
    def flushed_disk_matches_model_for_clean_pages(self):
        # Any page *not* resident must already be correct on disk.
        for page_id, value in self.model.items():
            if not self.buffer.is_resident(page_id):
                assert self.disk.read_page(page_id)[0] == value


class BTreeMachine(RuleBasedStateMachine):
    """The B+-tree is an ordered set of byte strings."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(
            BufferManager(InMemoryDisk(page_size=128), pool_size=8)
        )
        self.model: set[bytes] = set()

    @rule(entry=st.binary(min_size=1, max_size=20))
    def insert(self, entry):
        assert self.tree.insert(entry) == (entry not in self.model)
        self.model.add(entry)

    @rule(entry=st.binary(min_size=1, max_size=20))
    def delete(self, entry):
        assert self.tree.delete(entry) == (entry in self.model)
        self.model.discard(entry)

    @rule(entry=st.binary(min_size=1, max_size=20))
    def membership(self, entry):
        assert self.tree.contains(entry) == (entry in self.model)

    @rule(prefix=st.binary(min_size=1, max_size=3))
    def prefix_scan(self, prefix):
        expected = sorted(e for e in self.model if e.startswith(prefix))
        assert list(self.tree.scan_prefix(prefix)) == expected

    @invariant()
    def full_scan_matches_model(self):
        assert list(self.tree.scan_all()) == sorted(self.model)
        assert self.tree.entry_count == len(self.model)


TestBufferMachine = BufferMachine.TestCase
TestBufferMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
