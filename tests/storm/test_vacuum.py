"""Tests for heap-file vacuuming."""

from repro.storm import StorM
from repro.storm.buffer import BufferManager
from repro.storm.disk import InMemoryDisk
from repro.storm.heapfile import HeapFile


class TestVacuum:
    def test_reclaims_deleted_space(self):
        heap = HeapFile(BufferManager(InMemoryDisk(page_size=256), pool_size=4))
        rids = [heap.insert(bytes([i]) * 40) for i in range(10)]
        for rid in rids[::2]:
            heap.delete(rid)
        reclaimed = heap.vacuum()
        assert reclaimed > 0
        # Survivors are intact, ids unchanged.
        for i, rid in enumerate(rids):
            if i % 2 == 1:
                assert heap.read(rid) == bytes([i]) * 40

    def test_vacuum_on_clean_heap_is_noop(self):
        heap = HeapFile(BufferManager(InMemoryDisk(page_size=256), pool_size=4))
        for i in range(5):
            heap.insert(bytes([i]) * 30)
        assert heap.vacuum() == 0

    def test_vacuum_enables_large_insert(self):
        heap = HeapFile(BufferManager(InMemoryDisk(page_size=256), pool_size=4))
        rids = [heap.insert(bytes([i]) * 40) for i in range(5)]
        pages_before = heap.page_count
        for rid in rids[1:4]:
            heap.delete(rid)
        heap.vacuum()
        heap.insert(b"z" * 100)  # needs the coalesced hole
        assert heap.page_count == pages_before

    def test_storm_vacuum_facade(self):
        store = StorM(disk=InMemoryDisk(page_size=256))
        rids = [store.put(["k"], bytes([i]) * 50) for i in range(8)]
        for rid in rids[:4]:
            store.delete(rid)
        assert store.vacuum() > 0
        assert store.search("k").match_count == 4
