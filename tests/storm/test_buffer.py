"""Tests for the buffer manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BufferError_, BufferFullError, PageError
from repro.storm.buffer import AccessStats, BufferManager
from repro.storm.disk import InMemoryDisk
from repro.storm.replacement import LruStrategy, MruStrategy


def make_buffer(pool_size=3, page_size=128, strategy=None):
    disk = InMemoryDisk(page_size=page_size)
    return disk, BufferManager(disk, pool_size=pool_size, strategy=strategy)


class TestPinning:
    def test_new_page_read_back(self):
        _, buffer = make_buffer()
        page_id, data = buffer.new_page()
        data[0] = 0x42
        buffer.mark_dirty(page_id)
        buffer.unpin(page_id)
        assert buffer.pin(page_id)[0] == 0x42
        buffer.unpin(page_id)

    def test_hit_does_not_touch_disk(self):
        disk, buffer = make_buffer()
        page_id, _ = buffer.new_page()
        buffer.unpin(page_id)
        reads_before = disk.reads
        with buffer.pinned(page_id):
            pass
        assert disk.reads == reads_before
        assert buffer.stats.hits >= 1

    def test_pin_counts_nest(self):
        _, buffer = make_buffer()
        page_id, _ = buffer.new_page()
        buffer.pin(page_id)
        assert buffer.pin_count(page_id) == 2
        buffer.unpin(page_id)
        buffer.unpin(page_id)
        assert buffer.pin_count(page_id) == 0

    def test_unpin_unpinned_raises(self):
        _, buffer = make_buffer()
        page_id, _ = buffer.new_page()
        buffer.unpin(page_id)
        with pytest.raises(BufferError_):
            buffer.unpin(page_id)

    def test_unpin_nonresident_raises(self):
        _, buffer = make_buffer()
        with pytest.raises(PageError):
            buffer.unpin(99)

    def test_mark_dirty_requires_pin(self):
        _, buffer = make_buffer()
        page_id, _ = buffer.new_page()
        buffer.unpin(page_id)
        with pytest.raises(BufferError_):
            buffer.mark_dirty(page_id)


class TestEviction:
    def test_dirty_page_written_back_on_eviction(self):
        disk, buffer = make_buffer(pool_size=1)
        first, data = buffer.new_page()
        data[0] = 0x11
        buffer.mark_dirty(first)
        buffer.unpin(first)
        second, _ = buffer.new_page()  # evicts `first`
        buffer.unpin(second)
        assert not buffer.is_resident(first)
        assert disk.read_page(first)[0] == 0x11

    def test_clean_page_not_written_back(self):
        disk, buffer = make_buffer(pool_size=1)
        first, _ = buffer.new_page()
        buffer.unpin(first)
        buffer.flush_all()
        writes_after_flush = disk.writes
        second, _ = buffer.new_page()
        buffer.unpin(second)
        # Evicting the clean `first` page must not rewrite it.
        assert disk.writes == writes_after_flush

    def test_pinned_pages_never_evicted(self):
        _, buffer = make_buffer(pool_size=2)
        a, _ = buffer.new_page()
        b, _ = buffer.new_page()
        with pytest.raises(BufferFullError):
            buffer.new_page()
        assert buffer.is_resident(a)
        assert buffer.is_resident(b)

    def test_lru_eviction_order(self):
        _, buffer = make_buffer(pool_size=2, strategy=LruStrategy())
        a, _ = buffer.new_page()
        buffer.unpin(a)
        b, _ = buffer.new_page()
        buffer.unpin(b)
        with buffer.pinned(a):
            pass  # touch a: b becomes LRU
        c, _ = buffer.new_page()
        buffer.unpin(c)
        assert buffer.is_resident(a)
        assert not buffer.is_resident(b)

    def test_mru_eviction_order(self):
        _, buffer = make_buffer(pool_size=2, strategy=MruStrategy())
        a, _ = buffer.new_page()
        buffer.unpin(a)
        b, _ = buffer.new_page()
        buffer.unpin(b)
        c, _ = buffer.new_page()  # MRU evicts b
        buffer.unpin(c)
        assert buffer.is_resident(a)
        assert not buffer.is_resident(b)

    def test_stats_track_misses_and_hits(self):
        _, buffer = make_buffer(pool_size=1)
        a, _ = buffer.new_page()
        buffer.unpin(a)
        b, _ = buffer.new_page()
        buffer.unpin(b)
        with buffer.pinned(a):  # miss: a was evicted
            pass
        with buffer.pinned(a):  # hit
            pass
        assert buffer.stats.physical_reads == 1  # only the re-read of a
        assert buffer.stats.hits == buffer.stats.logical_reads - 1


class TestStats:
    def test_snapshot_and_since(self):
        stats = AccessStats(logical_reads=10, physical_reads=4, physical_writes=2)
        earlier = AccessStats(logical_reads=6, physical_reads=1, physical_writes=2)
        delta = stats.since(earlier)
        assert delta.logical_reads == 4
        assert delta.physical_reads == 3
        assert delta.physical_writes == 0
        assert delta.hits == 1

    def test_hit_ratio(self):
        stats = AccessStats(logical_reads=10, physical_reads=5)
        assert stats.hit_ratio == 0.5
        assert AccessStats().hit_ratio == 0.0

    def test_pool_size_validation(self):
        disk = InMemoryDisk()
        with pytest.raises(BufferError_):
            BufferManager(disk, pool_size=0)


@settings(max_examples=30, deadline=None)
@given(
    pool_size=st.integers(min_value=1, max_value=4),
    accesses=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=80),
)
def test_buffer_is_transparent_cache(pool_size, accesses):
    """Reads through the buffer always equal direct disk contents."""
    disk = InMemoryDisk(page_size=128)
    buffer = BufferManager(disk, pool_size=pool_size)
    # Seed ten pages with distinct contents.
    for i in range(10):
        page_id, data = buffer.new_page()
        data[0] = i
        buffer.mark_dirty(page_id)
        buffer.unpin(page_id)
    for page_id in accesses:
        with buffer.pinned(page_id) as data:
            assert data[0] == page_id
    assert len(buffer.resident_pages) <= pool_size
