"""StorM's decoded-scan cache: faster, never different."""

from __future__ import annotations

import repro.storm.store as store_module
from repro.storm.store import StorM


def _loaded_store(**kwargs) -> StorM:
    storm = StorM(pool_size=16, **kwargs)
    for n in range(30):
        storm.put([f"kw{n % 3}"], bytes([n]) * 50)
    return storm


def test_repeated_scans_hit_the_cache():
    storm = _loaded_store()
    first = list(storm.scan())
    misses_after_first = storm.scan_cache_misses
    second = list(storm.scan())
    assert second == first
    assert storm.scan_cache_misses == misses_after_first
    assert storm.scan_cache_hits > 0


def test_insert_and_delete_invalidate_only_touched_pages():
    storm = _loaded_store()
    list(storm.scan())
    rid = storm.put(["fresh"], b"x" * 50)
    results = dict(storm.scan())
    assert results[rid].keywords == ("fresh",)
    storm.delete(rid)
    assert rid not in dict(storm.scan())


def test_search_results_identical_with_cache_off():
    cached = _loaded_store()
    uncached = _loaded_store(scan_cache=False)
    for _ in range(3):
        left = cached.search_scan("kw1")
        right = uncached.search_scan("kw1")
        assert left.matches == right.matches
        assert left.objects_examined == right.objects_examined
        # The cache skips decode work only — simulated I/O must agree.
        assert (left.io.logical_reads, left.io.physical_reads) == (
            right.io.logical_reads,
            right.io.physical_reads,
        )
    assert uncached.scan_cache_hits == 0
    assert cached.scan_cache_hits > 0


def test_buffer_stats_identical_with_cache_off():
    cached = _loaded_store()
    uncached = _loaded_store(scan_cache=False)
    for _ in range(3):
        list(cached.scan())
        list(uncached.scan())
    assert (
        cached.stats.logical_reads,
        cached.stats.physical_reads,
        cached.stats.physical_writes,
    ) == (
        uncached.stats.logical_reads,
        uncached.stats.physical_reads,
        uncached.stats.physical_writes,
    )


def test_module_default_flag(monkeypatch):
    monkeypatch.setattr(store_module, "SCAN_CACHE_DEFAULT", False)
    storm = _loaded_store()
    list(storm.scan())
    list(storm.scan())
    assert storm.scan_cache_hits == 0
