"""Scored search, and the index-vs-scan consistency it depends on.

The in-network top-k merge (PR 8) relies on every host producing
identically-ordered, identically-scored hit lists whichever search path
it takes: ``search``/``scored_search`` walk the keyword index,
``search_scan``/``scored_search_scan`` walk the heap.  This battery
pins both the TF scoring model and the regression that
``StorM.search`` now visits postings in heap order
(:meth:`KeywordIndex.lookup_ordered`), so index-backed and scan-backed
results agree on *order*, not just set membership — over bulk-loaded,
deleted-hole, and template-cloned stores alike.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StormError
from repro.storm import InMemoryDisk, StorM
from repro.storm.template import StoreTemplate


def _populated(count=30):
    """A store with a score gradient and duplicate-tag objects."""
    store = StorM()
    items = []
    for i in range(count):
        # Vary the tag mix: pure matches, buried matches, repeated
        # tags (TF > 1/len from duplicates), and non-matches.
        if i % 5 == 0:
            keywords = ["jazz"]
        elif i % 5 == 1:
            keywords = ["jazz"] + [f"filler{j}" for j in range(1 + i % 4)]
        elif i % 5 == 2:
            keywords = ["jazz", "jazz", "other"]
        elif i % 5 == 3:
            keywords = ["rock"]
        else:
            keywords = ["jazz", "rock"]
        items.append((keywords, bytes([i % 250]) * (10 + i)))
    store.put_many(items)
    return store


def _punch_holes(store):
    """Delete a third of the records, including some matches."""
    rids = [rid for rid, _obj in store.scan()]
    for rid in rids[::3]:
        store.delete(rid)
    return store


def _clone(store):
    return StoreTemplate.from_store(store).instantiate()


STORES = {
    "bulk-loaded": lambda: _populated(),
    "deleted-holes": lambda: _punch_holes(_populated()),
    "template-clone": lambda: _clone(_populated()),
    "template-clone-with-holes": lambda: _punch_holes(_clone(_populated())),
}


@pytest.fixture(params=sorted(STORES))
def store(request):
    return STORES[request.param]()


class TestSearchConsistency:
    def test_search_and_scan_same_sets_and_order(self, store):
        indexed = store.search("jazz")
        scanned = store.search_scan("jazz")
        assert indexed.matches == scanned.matches  # order included

    def test_scored_paths_identical(self, store):
        indexed = store.scored_search("jazz")
        scanned = store.scored_search_scan("jazz")
        assert indexed.matches == scanned.matches
        assert indexed.scores == scanned.scores
        assert indexed.truncated == scanned.truncated == 0

    def test_scored_paths_identical_truncated(self, store):
        for k in (1, 3, 7):
            indexed = store.scored_search("jazz", k)
            scanned = store.scored_search_scan("jazz", k)
            assert indexed.matches == scanned.matches
            assert indexed.truncated == scanned.truncated
            assert indexed.match_count <= k

    def test_scored_matches_are_the_search_matches(self, store):
        plain = store.search("jazz")
        scored = store.scored_search("jazz")
        assert [(rid, obj) for _s, rid, obj in scored.matches] != [] or not plain.matches
        assert {(rid, obj.payload) for _s, rid, obj in scored.matches} == {
            (rid, obj.payload) for rid, obj in plain.matches
        }


class TestScoringModel:
    def test_scores_come_from_tags_not_postings(self):
        # The index dedupes postings per (keyword, rid); the score must
        # still see the repeated tag (TF 2/3, not 1/3).
        store = StorM()
        rid = store.put(["jazz", "jazz", "other"], b"x")
        (match,) = store.scored_search("jazz").matches
        assert match[0] == pytest.approx(2 / 3)
        assert match[1] == rid

    def test_pure_match_scores_one(self):
        store = StorM()
        store.put(["jazz"], b"x")
        assert store.scored_search("jazz").scores == [1.0]

    def test_normalized_keyword_scoring(self):
        store = StorM()
        store.put(["  JAZZ  "], b"x")
        assert store.scored_search("jazz").scores == [1.0]
        assert store.scored_search_scan("JAZZ").scores == [1.0]

    def test_no_match_empty(self):
        store = StorM()
        store.put(["rock"], b"x")
        result = store.scored_search("jazz")
        assert result.matches == [] and result.truncated == 0

    def test_order_best_first_heap_tiebreak(self):
        store = StorM()
        a = store.put(["jazz", "pad"], b"half-a")  # 0.5
        b = store.put(["jazz"], b"full")  # 1.0
        c = store.put(["jazz", "pad"], b"half-c")  # 0.5
        result = store.scored_search("jazz")
        assert [rid for _s, rid, _o in result.matches] == [b, a, c]
        assert result.scores == [1.0, 0.5, 0.5]

    def test_truncation_counts_cut_matches(self):
        store = StorM()
        for i in range(6):
            store.put(["jazz"] + ["pad"] * i, bytes([i]))
        result = store.scored_search("jazz", 2)
        assert result.match_count == 2
        assert result.truncated == 4
        assert result.objects_examined == 6

    def test_bad_k_rejected(self):
        store = StorM()
        for method in (store.scored_search, store.scored_search_scan):
            with pytest.raises(StormError):
                method("jazz", 0)
            with pytest.raises(StormError):
                method("jazz", -3)

    def test_persistent_index_parity(self):
        disk, index_disk = InMemoryDisk(), InMemoryDisk()
        store = StorM(disk=disk, index_disk=index_disk)
        for i in range(12):
            store.put(["jazz"] + ["pad"] * (i % 3), bytes([i]))
        indexed = store.scored_search("jazz", 5)
        scanned = store.scored_search_scan("jazz", 5)
        assert indexed.matches == scanned.matches
        assert indexed.truncated == scanned.truncated


class TestScoredSearchProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        tag_picks=st.lists(
            st.lists(st.sampled_from(["jazz", "rock", "pop", "pad"]), min_size=1, max_size=5),
            min_size=0,
            max_size=25,
        ),
        deletes=st.sets(st.integers(min_value=0, max_value=24)),
        k=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    )
    def test_paths_agree_under_arbitrary_stores(self, tag_picks, deletes, k):
        store = StorM()
        rids = store.put_many(
            [(tags, bytes([i]) * 4) for i, tags in enumerate(tag_picks)]
        )
        for i in sorted(deletes):
            if i < len(rids):
                store.delete(rids[i])
        indexed = store.scored_search("jazz", k)
        scanned = store.scored_search_scan("jazz", k)
        assert indexed.matches == scanned.matches
        assert indexed.truncated == scanned.truncated
        # scored results are exactly the plain search results, re-ranked
        plain = {rid for rid, _obj in store.search("jazz").matches}
        full = store.scored_search("jazz")
        assert {rid for _s, rid, _o in full.matches} == plain
