"""Bulk-load fast path: bit-identical to the per-record reference.

``StorM.put_many`` / ``HeapFile.insert_many`` / ``SlottedPage.insert_many``
must produce exactly what a per-record loop would: same record ids, same
page bytes, same free-space map, same index postings, same buffer
statistics, same WAL recovery outcome.  These tests drive both paths
side by side and compare everything observable.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageError
from repro.storm.disk import InMemoryDisk
from repro.storm.page import SlottedPage
from repro.storm.store import StorM


def _mirror_stores():
    return StorM(disk=InMemoryDisk()), StorM(disk=InMemoryDisk())


def _items(seed, count, sizes=(1, 17, 300, 1024, 2000, 4000)):
    rng = random.Random(seed)
    return [
        (
            tuple(f"kw{rng.randrange(20):03d}" for _ in range(rng.randrange(1, 4))),
            bytes([rng.randrange(256)]) * rng.choice(sizes),
        )
        for _ in range(count)
    ]


def _put_loop(store, items):
    return [store.put(keywords, payload) for keywords, payload in items]


def _pages(store):
    return [
        bytes(store.disk.read_page(page_id))
        for page_id in range(store.disk.num_pages)
    ]


def _assert_equivalent(reference, bulk):
    assert _pages(reference) == _pages(bulk)
    assert reference.index.snapshot() == bulk.index.snapshot()
    assert dict(reference.heap._free_space.items()) == dict(
        bulk.heap._free_space.items()
    )
    assert reference.count == bulk.count


class TestBulkEquivalence:
    def test_rids_pages_index_identical(self):
        items = _items(seed=1, count=300)
        reference, bulk = _mirror_stores()
        assert _put_loop(reference, items) == bulk.put_many(items)
        _assert_equivalent(reference, bulk)

    def test_search_results_and_io_identical(self):
        items = _items(seed=2, count=200)
        reference, bulk = _mirror_stores()
        _put_loop(reference, items)
        bulk.put_many(items)
        for keyword in ("kw000", "kw007", "kw019", "missing"):
            a = reference.search_scan(keyword)
            b = bulk.search_scan(keyword)
            assert [rid for rid, _ in a.matches] == [rid for rid, _ in b.matches]
            assert a.io == b.io
            a = reference.search(keyword)
            b = bulk.search(keyword)
            assert [rid for rid, _ in a.matches] == [rid for rid, _ in b.matches]
            assert a.io == b.io

    def test_buffer_stats_identical_during_population(self):
        items = _items(seed=3, count=250)
        reference, bulk = _mirror_stores()
        _put_loop(reference, items)
        bulk.put_many(items)
        assert reference.stats.logical_reads == bulk.stats.logical_reads
        assert reference.stats.physical_reads == bulk.stats.physical_reads

    def test_bulk_into_deletion_holes(self):
        items = _items(seed=4, count=150)
        reference, bulk = _mirror_stores()
        rids = _put_loop(reference, items)
        bulk.put_many(items)
        for rid in rids[::5]:
            reference.delete(rid)
            bulk.delete(rid)
        more = _items(seed=5, count=80)
        assert _put_loop(reference, more) == bulk.put_many(more)
        _assert_equivalent(reference, bulk)

    def test_interleaved_batches(self):
        reference, bulk = _mirror_stores()
        for seed in range(6, 10):
            batch = _items(seed=seed, count=40)
            assert _put_loop(reference, batch) == bulk.put_many(batch)
        _assert_equivalent(reference, bulk)

    def test_env_bypass_uses_per_record_path(self, monkeypatch):
        from repro.storm import store as store_module

        monkeypatch.setenv(store_module.BULK_LOAD_ENV_VAR, "1")
        items = _items(seed=11, count=60)
        reference, bulk = _mirror_stores()
        assert _put_loop(reference, items) == bulk.put_many(items)
        _assert_equivalent(reference, bulk)


class TestEdges:
    def test_empty_batch(self):
        store = StorM()
        assert store.put_many([]) == []
        assert store.count == 0

    def test_oversized_record_raises_keeping_earlier_inserts(self):
        reference, bulk = _mirror_stores()
        too_big = bytes(reference.heap.max_record_size + 1)
        items = [(("a",), b"x" * 100), (("b",), too_big), (("c",), b"y" * 100)]
        with pytest.raises(PageError):
            _put_loop(reference, items)
        with pytest.raises(PageError):
            bulk.put_many(items)
        # Both paths keep the inserts made before the failing record.
        assert reference.count == bulk.count == 1
        _assert_equivalent(reference, bulk)

    def test_max_size_records_one_per_page(self):
        reference, bulk = _mirror_stores()
        # encode() adds a keyword/payload framing overhead; aim close to
        # the page capacity so every record monopolizes its page.
        items = [((f"k{i}",), bytes(3900)) for i in range(5)]
        assert _put_loop(reference, items) == bulk.put_many(items)
        assert bulk.disk.num_pages == 5
        _assert_equivalent(reference, bulk)

    def test_exact_page_boundary_packing(self):
        # Records sized so each page fits an exact whole number; the run
        # must stop at the boundary and open a fresh page like the
        # reference does.
        reference, bulk = _mirror_stores()
        items = [((f"k{i % 3}",), bytes(500)) for i in range(40)]
        assert _put_loop(reference, items) == bulk.put_many(items)
        _assert_equivalent(reference, bulk)

    def test_shrinking_sizes_end_runs(self):
        # A strictly decreasing size sequence forces every record to end
        # its run (no follower is >= the anchor), exercising the
        # settle-and-requery path on each record.
        reference, bulk = _mirror_stores()
        items = [((f"k{i}",), bytes(2000 - i * 40)) for i in range(40)]
        assert _put_loop(reference, items) == bulk.put_many(items)
        _assert_equivalent(reference, bulk)

    def test_growing_sizes_return_to_earlier_pages(self):
        # Small records leave room on early pages that later, larger
        # records must still skip exactly as first-fit would.
        reference, bulk = _mirror_stores()
        items = [((f"k{i % 5}",), bytes(50 + i * 60)) for i in range(50)]
        assert _put_loop(reference, items) == bulk.put_many(items)
        _assert_equivalent(reference, bulk)


class TestStaleEntryHeal:
    def test_failed_probe_heals_map_entry(self):
        store = StorM()
        store.put(("a",), bytes(3000))
        page_id = 0
        true_free = store.heap._free_space.get(page_id)
        # Force an overestimating (stale) entry, as a buggy caller or
        # future code path might leave behind.
        store.heap._free_space.set(page_id, 4000)
        store.put(("b",), bytes(2000))  # cannot fit in page 0
        assert store.heap._free_space.get(page_id) == true_free

    def test_healed_entry_not_reprobed(self):
        store = StorM()
        store.put(("a",), bytes(3000))
        store.heap._free_space.set(0, 4000)
        store.put(("b",), bytes(2000))
        # After healing, further inserts must not pin page 0 again.
        before = store.stats.logical_reads
        store.put(("c",), bytes(2000))
        after = store.stats.logical_reads
        assert after - before == 1  # only the page that receives the record

    def test_bulk_probe_heals_too(self):
        store = StorM()
        store.put_many([(("a",), bytes(3000))])
        true_free = store.heap._free_space.get(0)
        store.heap._free_space.set(0, 4000)
        store.put_many([(("b",), bytes(2000))])
        assert store.heap._free_space.get(0) == true_free


class TestDurability:
    def test_grouped_commit_recovers_like_per_record(self, tmp_path):
        items = _items(seed=21, count=40)

        def survivors(name, durable_batch):
            disk = InMemoryDisk()
            store = StorM(disk=disk, wal_path=str(tmp_path / name))
            if durable_batch:
                store.put_many(items, durable=True)
            else:
                for keywords, payload in items:
                    store.put(keywords, payload)
                store.commit()
            store.crash()
            reopened = StorM(wal_path=str(tmp_path / name))
            found = sorted(
                (rid, obj.keywords, obj.payload) for rid, obj in reopened.scan()
            )
            reopened.close()
            return found

        assert survivors("bulk.wal", True) == survivors("loop.wal", False)

    def test_durable_without_wal_raises(self):
        store = StorM()
        from repro.errors import StormError

        with pytest.raises(StormError):
            store.put_many([(("a",), b"x")], durable=True)
        # The objects themselves were stored before the commit attempt,
        # matching a per-record loop followed by a failing commit().
        assert store.count == 1


class TestPageLevel:
    def _fresh_page(self, size=1024):
        return SlottedPage.format(bytearray(size))

    def test_page_insert_many_matches_loop(self):
        for seed in range(5):
            rng = random.Random(seed)
            records = [
                bytes([rng.randrange(256)]) * rng.randrange(1, 200)
                for _ in range(30)
            ]
            a = self._fresh_page()
            b = self._fresh_page()
            loop_slots = []
            for record in records:
                slot = a.insert(record)
                if slot is None:
                    break
                loop_slots.append(slot)
            assert b.insert_many(records) == loop_slots
            assert bytes(a.data) == bytes(b.data)

    def test_page_insert_many_reuses_dead_slots_and_compacts(self):
        a = self._fresh_page()
        b = self._fresh_page()
        for page in (a, b):
            for i in range(4):
                page.insert(bytes([i]) * 200)
            page.delete(1)
            page.delete(3)
        records = [b"\xaa" * 150, b"\xbb" * 150, b"\xcc" * 100]
        loop_slots = [a.insert(record) for record in records]
        assert b.insert_many(records) == loop_slots
        assert bytes(a.data) == bytes(b.data)

    def test_page_insert_many_oversize_raises(self):
        page = self._fresh_page()
        page.insert(b"x" * 10)
        with pytest.raises(PageError):
            SlottedPage(bytearray(70000))  # guard: pages stay u16

    def test_page_insert_many_stops_at_first_misfit(self):
        page = self._fresh_page(256)
        records = [b"a" * 100, b"b" * 100, b"c" * 100]
        slots = page.insert_many(records)
        assert len(slots) == 2
        assert page.read(slots[0]) == records[0]
        assert page.read(slots[1]) == records[1]


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=3500), max_size=60),
    delete_every=st.integers(min_value=2, max_value=7),
    data=st.data(),
)
def test_property_bulk_matches_loop(sizes, delete_every, data):
    """Random sizes, with a delete phase, stay bit-identical."""
    items = [((f"k{i % 7}",), bytes(size)) for i, size in enumerate(sizes)]
    split = data.draw(st.integers(min_value=0, max_value=len(items)))
    reference, bulk = _mirror_stores()
    first, second = items[:split], items[split:]
    rids_a = _put_loop(reference, first)
    rids_b = bulk.put_many(first)
    assert rids_a == rids_b
    for rid in rids_a[::delete_every]:
        reference.delete(rid)
        bulk.delete(rid)
    assert _put_loop(reference, second) == bulk.put_many(second)
    _assert_equivalent(reference, bulk)
