"""Tests for the StorM facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageClosedError
from repro.storm import FileDisk, InMemoryDisk, StorM
from repro.storm.replacement import make_strategy


class TestStorM:
    def test_put_get(self):
        store = StorM()
        rid = store.put(["jazz"], b"payload")
        obj = store.get(rid)
        assert obj.keywords == ("jazz",)
        assert obj.payload == b"payload"
        assert store.count == 1

    def test_search_via_index(self):
        store = StorM()
        store.put(["jazz"], b"one")
        store.put(["rock"], b"two")
        store.put(["jazz", "fusion"], b"three")
        result = store.search("jazz")
        assert result.match_count == 2
        assert {obj.payload for _, obj in result.matches} == {b"one", b"three"}
        assert result.objects_examined == 2

    def test_search_scan_examines_everything(self):
        store = StorM()
        for i in range(10):
            store.put(["jazz" if i % 2 else "rock"], bytes([i]))
        result = store.search_scan("jazz")
        assert result.objects_examined == 10
        assert result.match_count == 5

    def test_search_and_scan_agree(self):
        store = StorM()
        for i in range(20):
            store.put([f"kw{i % 4}"], bytes([i]))
        via_index = store.search("kw1")
        via_scan = store.search_scan("kw1")
        assert sorted(rid for rid, _ in via_index.matches) == sorted(
            rid for rid, _ in via_scan.matches
        )

    def test_answer_bytes(self):
        store = StorM()
        store.put(["k"], b"x" * 100)
        store.put(["k"], b"y" * 50)
        assert store.search("k").answer_bytes == 150

    def test_delete_removes_from_index(self):
        store = StorM()
        rid = store.put(["jazz"], b"x")
        store.delete(rid)
        assert store.search("jazz").match_count == 0
        assert store.count == 0

    def test_search_io_counted(self):
        store = StorM(pool_size=2)
        for i in range(50):
            store.put(["k"], bytes([i]) * 200)
        result = store.search_scan("k")
        assert result.io.logical_reads > 0
        # Pool of 2 frames over many pages must miss.
        assert result.io.physical_reads > 0

    def test_scan_order_is_page_order(self):
        store = StorM()
        rids = [store.put(["k"], bytes([i])) for i in range(5)]
        scanned = [rid for rid, _ in store.scan()]
        assert scanned == sorted(rids, key=lambda r: (r.page_id, r.slot))

    def test_closed_store_raises(self):
        store = StorM()
        store.close()
        with pytest.raises(StorageClosedError):
            store.put(["k"], b"")
        store.close()  # idempotent

    def test_context_manager(self):
        with StorM() as store:
            store.put(["k"], b"")
        with pytest.raises(StorageClosedError):
            store.count_check = store.get  # store is closed
            store.scan().__next__()

    def test_persistence_with_file_disk(self, tmp_path):
        path = str(tmp_path / "node.storm")
        with StorM(disk=FileDisk(path, page_size=512)) as store:
            store.put(["blues"], b"muddy waters")
            store.put(["blues", "chicago"], b"howlin wolf")

        with StorM(disk=FileDisk(path, page_size=512)) as reopened:
            assert reopened.count == 2
            # Index was rebuilt from the heap scan.
            result = reopened.search("blues")
            assert result.match_count == 2

    def test_custom_strategy(self):
        store = StorM(pool_size=4, strategy=make_strategy("mru"))
        for i in range(20):
            store.put(["k"], bytes([i]) * 100)
        assert store.search_scan("k").match_count == 20

    def test_grep_searches_payload_content(self):
        store = StorM()
        store.put(["doc"], b"the deadline is friday")
        store.put(["doc"], b"lunch at noon")
        store.put(["doc"], b"deadline moved to monday")
        result = store.grep(b"deadline")
        assert result.match_count == 2
        assert result.objects_examined == 3

    def test_grep_no_match(self):
        store = StorM()
        store.put(["doc"], b"nothing to see")
        assert store.grep(b"absent").match_count == 0

    def test_grep_counts_io(self):
        store = StorM(pool_size=2, disk=InMemoryDisk(page_size=256))
        for i in range(30):
            store.put(["doc"], bytes([i]) * 150)
        result = store.grep(bytes([5]))
        assert result.io.logical_reads > 0
        assert result.match_count == 1

    def test_thousand_objects_of_1kb(self):
        """The paper's per-node workload: 1000 x 1KB objects."""
        store = StorM(pool_size=64)
        for i in range(1000):
            store.put([f"kw{i % 100}"], bytes([i % 256]) * 1024)
        assert store.count == 1000
        result = store.search_scan("kw42")
        assert result.match_count == 10
        assert result.objects_examined == 1000


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.binary(min_size=1, max_size=100),
        ),
        min_size=1,
        max_size=30,
    ),
    st.integers(min_value=1, max_value=8),
)
def test_store_search_matches_model(entries, pool_size):
    """Both search paths agree with a plain-Python model."""
    store = StorM(pool_size=pool_size, disk=InMemoryDisk(page_size=256))
    for keyword, payload in entries:
        store.put([keyword], payload)
    for keyword in ["a", "b", "c"]:
        expected = sorted(p for k, p in entries if k == keyword)
        via_index = sorted(obj.payload for _, obj in store.search(keyword).matches)
        via_scan = sorted(
            obj.payload for _, obj in store.search_scan(keyword).matches
        )
        assert via_index == expected
        assert via_scan == expected
