"""Tests for the page-based B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StormError
from repro.storm.btree import BPlusTree
from repro.storm.buffer import BufferManager
from repro.storm.disk import FileDisk, InMemoryDisk


def make_tree(page_size=256, pool_size=16):
    disk = InMemoryDisk(page_size=page_size)
    return BPlusTree(BufferManager(disk, pool_size=pool_size))


class TestBasicOperations:
    def test_insert_contains(self):
        tree = make_tree()
        assert tree.insert(b"apple")
        assert tree.contains(b"apple")
        assert not tree.contains(b"banana")
        assert tree.entry_count == 1

    def test_duplicate_insert_rejected(self):
        tree = make_tree()
        assert tree.insert(b"key")
        assert not tree.insert(b"key")
        assert tree.entry_count == 1

    def test_delete(self):
        tree = make_tree()
        tree.insert(b"key")
        assert tree.delete(b"key")
        assert not tree.contains(b"key")
        assert not tree.delete(b"key")
        assert tree.entry_count == 0

    def test_scan_all_sorted(self):
        tree = make_tree()
        for word in [b"pear", b"apple", b"mango", b"fig"]:
            tree.insert(word)
        assert list(tree.scan_all()) == [b"apple", b"fig", b"mango", b"pear"]

    def test_scan_prefix(self):
        tree = make_tree()
        for word in [b"app", b"apple", b"apricot", b"banana"]:
            tree.insert(word)
        assert list(tree.scan_prefix(b"ap")) == [b"app", b"apple", b"apricot"]
        assert list(tree.scan_prefix(b"appl")) == [b"apple"]
        assert list(tree.scan_prefix(b"z")) == []

    def test_scan_range(self):
        tree = make_tree()
        for i in range(10):
            tree.insert(bytes([i]))
        assert list(tree.scan_range(bytes([3]), bytes([7]))) == [
            bytes([i]) for i in range(3, 7)
        ]

    def test_empty_entry_allowed(self):
        tree = make_tree()
        tree.insert(b"")
        assert tree.contains(b"")
        assert list(tree.scan_all()) == [b""]

    def test_oversized_entry_rejected(self):
        tree = make_tree(page_size=128)
        with pytest.raises(StormError):
            tree.insert(b"x" * 200)


class TestSplitting:
    def test_many_inserts_force_splits(self):
        tree = make_tree(page_size=128)
        entries = [f"entry-{i:04d}".encode() for i in range(200)]
        for entry in entries:
            tree.insert(entry)
        assert tree.height > 1
        assert list(tree.scan_all()) == sorted(entries)
        tree.check_invariants()

    def test_reverse_insertion_order(self):
        tree = make_tree(page_size=128)
        entries = [f"entry-{i:04d}".encode() for i in reversed(range(200))]
        for entry in entries:
            tree.insert(entry)
        assert list(tree.scan_all()) == sorted(entries)
        tree.check_invariants()

    def test_interleaved_insert_delete(self):
        tree = make_tree(page_size=128)
        entries = [f"k{i:03d}".encode() for i in range(120)]
        for entry in entries:
            tree.insert(entry)
        for entry in entries[::2]:
            assert tree.delete(entry)
        assert list(tree.scan_all()) == sorted(entries[1::2])
        tree.check_invariants()

    def test_contains_after_deep_splits(self):
        tree = make_tree(page_size=128)
        for i in range(300):
            tree.insert(f"{i:06d}".encode())
        assert tree.height >= 3
        for i in range(300):
            assert tree.contains(f"{i:06d}".encode())
        assert not tree.contains(b"999999")

    def test_variable_length_entries(self):
        tree = make_tree(page_size=256)
        entries = [bytes([65 + i % 26]) * (1 + i % 20) for i in range(150)]
        unique = sorted(set(entries))
        for entry in entries:
            tree.insert(entry)
        assert list(tree.scan_all()) == unique
        tree.check_invariants()


class TestPersistence:
    def test_reopen_from_file(self, tmp_path):
        path = str(tmp_path / "index.btree")
        disk = FileDisk(path, page_size=256)
        buffer = BufferManager(disk, pool_size=16)
        tree = BPlusTree(buffer)
        for i in range(100):
            tree.insert(f"persist-{i:03d}".encode())
        buffer.flush_all()
        disk.close()

        reopened_disk = FileDisk(path, page_size=256)
        reopened = BPlusTree(BufferManager(reopened_disk, pool_size=16))
        assert reopened.entry_count == 100
        assert reopened.contains(b"persist-042")
        assert len(list(reopened.scan_prefix(b"persist-"))) == 100
        reopened.check_invariants()
        reopened_disk.close()

    def test_wrong_file_rejected(self):
        disk = InMemoryDisk(page_size=256)
        disk.allocate_page()  # page 0 exists but holds zeros, not magic
        with pytest.raises(StormError):
            BPlusTree(BufferManager(disk, pool_size=4))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.binary(min_size=1, max_size=24)),
        max_size=120,
    )
)
def test_btree_behaves_like_a_set(operations):
    """Model-based test: the tree is an ordered set of byte strings."""
    tree = make_tree(page_size=128, pool_size=8)
    model: set[bytes] = set()
    for is_insert, entry in operations:
        if is_insert:
            assert tree.insert(entry) == (entry not in model)
            model.add(entry)
        else:
            assert tree.delete(entry) == (entry in model)
            model.discard(entry)
    assert list(tree.scan_all()) == sorted(model)
    assert tree.entry_count == len(model)
    tree.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    st.sets(st.binary(min_size=1, max_size=16), max_size=80),
    st.binary(min_size=1, max_size=4),
)
def test_prefix_scan_matches_filter(entries, prefix):
    tree = make_tree(page_size=128, pool_size=8)
    for entry in entries:
        tree.insert(entry)
    expected = sorted(e for e in entries if e.startswith(prefix))
    assert list(tree.scan_prefix(prefix)) == expected
