"""Tests for disk backends."""

import pytest

from repro.errors import PageError, StorageClosedError
from repro.storm.disk import FileDisk, InMemoryDisk


class TestInMemoryDisk:
    def test_allocate_and_round_trip(self):
        disk = InMemoryDisk(page_size=128)
        page_id = disk.allocate_page()
        assert page_id == 0
        assert disk.num_pages == 1
        data = bytearray(b"\x07" * 128)
        disk.write_page(page_id, data)
        assert disk.read_page(page_id) == data

    def test_new_pages_are_zeroed(self):
        disk = InMemoryDisk(page_size=64)
        page_id = disk.allocate_page()
        assert disk.read_page(page_id) == bytearray(64)

    def test_read_returns_copy(self):
        disk = InMemoryDisk(page_size=64)
        page_id = disk.allocate_page()
        copy = disk.read_page(page_id)
        copy[0] = 0xFF
        assert disk.read_page(page_id)[0] == 0

    def test_out_of_range_page(self):
        disk = InMemoryDisk()
        with pytest.raises(PageError):
            disk.read_page(0)
        with pytest.raises(PageError):
            disk.write_page(5, b"\x00" * disk.page_size)

    def test_wrong_size_write(self):
        disk = InMemoryDisk(page_size=64)
        disk.allocate_page()
        with pytest.raises(PageError):
            disk.write_page(0, b"short")

    def test_counters(self):
        disk = InMemoryDisk(page_size=64)
        disk.allocate_page()
        disk.read_page(0)
        disk.write_page(0, b"\x00" * 64)
        assert disk.reads == 1
        assert disk.writes == 1

    def test_tiny_page_size_rejected(self):
        with pytest.raises(ValueError):
            InMemoryDisk(page_size=32)


class TestFileDisk:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "storm.db")
        disk = FileDisk(path, page_size=128)
        page_id = disk.allocate_page()
        disk.write_page(page_id, b"\x09" * 128)
        assert disk.read_page(page_id) == bytearray(b"\x09" * 128)
        disk.close()

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "storm.db")
        disk = FileDisk(path, page_size=128)
        disk.allocate_page()
        disk.allocate_page()
        disk.write_page(1, b"\xab" * 128)
        disk.close()

        reopened = FileDisk(path, page_size=128)
        assert reopened.num_pages == 2
        assert reopened.read_page(1) == bytearray(b"\xab" * 128)
        reopened.close()

    def test_misaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(PageError):
            FileDisk(str(path), page_size=128)

    def test_closed_disk_raises(self, tmp_path):
        disk = FileDisk(str(tmp_path / "storm.db"), page_size=128)
        disk.allocate_page()
        disk.close()
        with pytest.raises(StorageClosedError):
            disk.read_page(0)
        disk.close()  # idempotent

    def test_flush(self, tmp_path):
        disk = FileDisk(str(tmp_path / "storm.db"), page_size=128)
        disk.allocate_page()
        disk.write_page(0, b"\x01" * 128)
        disk.flush()
        disk.close()
