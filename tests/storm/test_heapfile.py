"""Tests for the heap file."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageError, RecordNotFound
from repro.storm.buffer import BufferManager
from repro.storm.disk import FileDisk, InMemoryDisk
from repro.storm.heapfile import HeapFile, RecordId


def make_heap(page_size=256, pool_size=4):
    disk = InMemoryDisk(page_size=page_size)
    return HeapFile(BufferManager(disk, pool_size=pool_size))


class TestHeapFile:
    def test_insert_read_round_trip(self):
        heap = make_heap()
        rid = heap.insert(b"record one")
        assert heap.read(rid) == b"record one"
        assert heap.record_count == 1

    def test_records_span_multiple_pages(self):
        heap = make_heap(page_size=128)
        rids = [heap.insert(bytes([i]) * 50) for i in range(10)]
        assert heap.page_count > 1
        for i, rid in enumerate(rids):
            assert heap.read(rid) == bytes([i]) * 50

    def test_delete_then_read_raises(self):
        heap = make_heap()
        rid = heap.insert(b"x")
        heap.delete(rid)
        with pytest.raises(RecordNotFound):
            heap.read(rid)
        assert heap.record_count == 0

    def test_delete_missing_raises(self):
        heap = make_heap()
        with pytest.raises(RecordNotFound):
            heap.delete(RecordId(0, 0))
        heap.insert(b"x")
        with pytest.raises(RecordNotFound):
            heap.delete(RecordId(0, 99))

    def test_deleted_space_is_reused(self):
        heap = make_heap(page_size=128)
        rids = [heap.insert(b"a" * 50) for _ in range(4)]
        pages_before = heap.page_count
        for rid in rids:
            heap.delete(rid)
        for _ in range(4):
            heap.insert(b"b" * 50)
        assert heap.page_count == pages_before

    def test_scan_yields_all_live_records(self):
        heap = make_heap()
        keep = {heap.insert(f"keep-{i}".encode()): f"keep-{i}".encode()
                for i in range(5)}
        victim = heap.insert(b"victim")
        heap.delete(victim)
        assert dict(heap.scan()) == keep

    def test_exists(self):
        heap = make_heap()
        rid = heap.insert(b"x")
        assert heap.exists(rid)
        heap.delete(rid)
        assert not heap.exists(rid)
        assert not heap.exists(RecordId(99, 0))

    def test_oversized_record_rejected(self):
        heap = make_heap(page_size=128)
        with pytest.raises(PageError):
            heap.insert(b"x" * 128)

    def test_reopen_rebuilds_state(self, tmp_path):
        path = str(tmp_path / "heap.db")
        disk = FileDisk(path, page_size=128)
        buffer = BufferManager(disk, pool_size=4)
        heap = HeapFile(buffer)
        rids = [heap.insert(f"persisted-{i}".encode()) for i in range(6)]
        heap.delete(rids[2])
        buffer.flush_all()
        disk.close()

        reopened_disk = FileDisk(path, page_size=128)
        reopened = HeapFile(BufferManager(reopened_disk, pool_size=4))
        assert reopened.record_count == 5
        assert reopened.read(rids[0]) == b"persisted-0"
        with pytest.raises(RecordNotFound):
            reopened.read(rids[2])
        # Free-space map was rebuilt: inserts go to existing pages.
        pages_before = reopened.page_count
        reopened.insert(b"new")
        assert reopened.page_count == pages_before
        reopened_disk.close()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.binary(min_size=1, max_size=60)),
        min_size=1,
        max_size=60,
    )
)
def test_heapfile_model_property(operations):
    """Heap file behaves like a dict {rid: record} under insert/delete."""
    heap = make_heap(page_size=256, pool_size=2)
    model: dict[RecordId, bytes] = {}
    for is_insert, record in operations:
        if is_insert or not model:
            rid = heap.insert(record)
            assert rid not in model
            model[rid] = record
        else:
            victim = sorted(model, key=lambda r: (r.page_id, r.slot))[0]
            heap.delete(victim)
            del model[victim]
    assert dict(heap.scan()) == model
    assert heap.record_count == len(model)
