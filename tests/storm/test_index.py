"""Tests for the keyword inverted index."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storm.heapfile import RecordId
from repro.storm.index import KeywordIndex


def rid(n):
    return RecordId(n // 10, n % 10)


class TestKeywordIndex:
    def test_add_lookup(self):
        index = KeywordIndex()
        index.add(rid(1), ["jazz", "bebop"])
        index.add(rid(2), ["jazz"])
        assert index.lookup("jazz") == {rid(1), rid(2)}
        assert index.lookup("bebop") == {rid(1)}
        assert index.lookup("rock") == frozenset()

    def test_lookup_normalizes(self):
        index = KeywordIndex()
        index.add(rid(1), ["Jazz"])
        assert index.lookup("  JAZZ ") == {rid(1)}

    def test_remove(self):
        index = KeywordIndex()
        index.add(rid(1), ["jazz"])
        index.add(rid(2), ["jazz"])
        index.remove(rid(1), ["jazz"])
        assert index.lookup("jazz") == {rid(2)}

    def test_remove_last_posting_drops_keyword(self):
        index = KeywordIndex()
        index.add(rid(1), ["solo"])
        index.remove(rid(1), ["solo"])
        assert index.keyword_count == 0

    def test_remove_missing_is_noop(self):
        index = KeywordIndex()
        index.remove(rid(1), ["ghost"])
        assert index.keyword_count == 0

    def test_rebuild(self):
        index = KeywordIndex()
        index.add(rid(9), ["stale"])
        index.rebuild([(rid(1), ["fresh"]), (rid(2), ["fresh", "new"])])
        assert index.lookup("stale") == frozenset()
        assert index.lookup("fresh") == {rid(1), rid(2)}
        assert index.posting_count("new") == 1

    def test_keywords_iteration(self):
        index = KeywordIndex()
        index.add(rid(1), ["a", "b"])
        assert sorted(index.keywords()) == ["a", "b"]


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=3),
        ),
        max_size=40,
    )
)
def test_index_agrees_with_naive_scan(entries):
    """Index lookups must equal a brute-force scan of the entries."""
    index = KeywordIndex()
    for n, keywords in entries:
        index.add(rid(n), keywords)
    for keyword in ["a", "b", "c", "d"]:
        expected = {rid(n) for n, keywords in entries if keyword in keywords}
        assert index.lookup(keyword) == expected
