"""Tests for buffer replacement strategies."""

import pytest

from repro.errors import BufferError_
from repro.storm.replacement import (
    ClockStrategy,
    FifoStrategy,
    LruKStrategy,
    LruStrategy,
    MruStrategy,
    RandomStrategy,
    make_strategy,
)


class TestLru:
    def test_evicts_least_recent(self):
        lru = LruStrategy()
        for frame in [0, 1, 2]:
            lru.on_page_loaded(frame)
        lru.on_page_accessed(0)
        assert lru.choose_victim([0, 1, 2]) == 1

    def test_restricted_candidates(self):
        lru = LruStrategy()
        for frame in [0, 1, 2]:
            lru.on_page_loaded(frame)
        assert lru.choose_victim([1, 2]) == 1

    def test_eviction_forgets_frame(self):
        lru = LruStrategy()
        lru.on_page_loaded(0)
        lru.on_page_loaded(1)
        lru.on_page_evicted(0)
        lru.on_page_loaded(0)  # reloaded - now newest
        assert lru.choose_victim([0, 1]) == 1


class TestMru:
    def test_evicts_most_recent(self):
        mru = MruStrategy()
        for frame in [0, 1, 2]:
            mru.on_page_loaded(frame)
        mru.on_page_accessed(0)
        assert mru.choose_victim([0, 1, 2]) == 0


class TestFifo:
    def test_ignores_accesses(self):
        fifo = FifoStrategy()
        for frame in [0, 1, 2]:
            fifo.on_page_loaded(frame)
        fifo.on_page_accessed(0)
        fifo.on_page_accessed(0)
        assert fifo.choose_victim([0, 1, 2]) == 0


class TestClock:
    def test_second_chance(self):
        clock = ClockStrategy()
        for frame in [0, 1, 2]:
            clock.on_page_loaded(frame)
        # All reference bits set: first sweep clears them, then frame 0 goes.
        assert clock.choose_victim([0, 1, 2]) == 0

    def test_recently_accessed_survives_one_sweep(self):
        clock = ClockStrategy()
        for frame in [0, 1]:
            clock.on_page_loaded(frame)
        victim = clock.choose_victim([0, 1])
        clock.on_page_evicted(victim)
        survivor = 1 - victim
        clock.on_page_accessed(survivor)
        clock.on_page_loaded(victim)
        # survivor was just referenced; the reloaded frame is also referenced,
        # so the hand clears bits then picks deterministically.
        second_victim = clock.choose_victim([0, 1])
        assert second_victim in (0, 1)

    def test_eviction_keeps_ring_consistent(self):
        clock = ClockStrategy()
        for frame in range(5):
            clock.on_page_loaded(frame)
        for _ in range(4):
            victim = clock.choose_victim(list(clock._referenced))
            clock.on_page_evicted(victim)
        assert len(clock._ring) == 1


class TestRandom:
    def test_deterministic_for_seed(self):
        a = RandomStrategy(seed=7)
        b = RandomStrategy(seed=7)
        picks_a = [a.choose_victim(range(10)) for _ in range(20)]
        picks_b = [b.choose_victim(range(10)) for _ in range(20)]
        assert picks_a == picks_b

    def test_always_picks_candidate(self):
        strategy = RandomStrategy(seed=1)
        for _ in range(50):
            assert strategy.choose_victim([3, 5, 9]) in {3, 5, 9}


class TestLruK:
    def test_prefers_frames_with_short_history(self):
        lruk = LruKStrategy(k=2)
        lruk.on_page_loaded(0)
        lruk.on_page_accessed(0)  # 0 has 2 accesses
        lruk.on_page_loaded(1)  # 1 has 1 access: infinite K-distance
        assert lruk.choose_victim([0, 1]) == 1

    def test_evicts_oldest_kth_access(self):
        lruk = LruKStrategy(k=2)
        for frame in [0, 1]:
            lruk.on_page_loaded(frame)
            lruk.on_page_accessed(frame)
        lruk.on_page_accessed(0)
        # Frame 0's accesses: t1,t2,t5 -> 2nd most recent t2.
        # Frame 1's accesses: t3,t4   -> 2nd most recent t3.
        # t2 is older, so LRU-2 evicts frame 0 despite its recent touch.
        assert lruk.choose_victim([0, 1]) == 0

    def test_invalid_k(self):
        with pytest.raises(BufferError_):
            LruKStrategy(k=0)

    def test_eviction_clears_history(self):
        lruk = LruKStrategy(k=2)
        lruk.on_page_loaded(0)
        lruk.on_page_evicted(0)
        lruk.on_page_loaded(0)
        assert lruk.choose_victim([0]) == 0


class TestFactory:
    def test_all_names(self):
        for name in ["lru", "mru", "fifo", "clock", "random", "lru-k"]:
            assert make_strategy(name).name in (name, "lru-k")

    def test_kwargs_forwarded(self):
        strategy = make_strategy("lru-k", k=3)
        assert strategy.k == 3

    def test_unknown_name(self):
        with pytest.raises(BufferError_, match="unknown strategy"):
            make_strategy("belady")
