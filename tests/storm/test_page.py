"""Tests for the slotted-page layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageError
from repro.storm.page import HEADER_SIZE, SLOT_SIZE, SlottedPage


def fresh_page(size=256):
    return SlottedPage.format(bytearray(size))


class TestBasicOperations:
    def test_insert_read_round_trip(self):
        page = fresh_page()
        slot = page.insert(b"hello")
        assert slot == 0
        assert page.read(slot) == b"hello"

    def test_multiple_records(self):
        page = fresh_page()
        slots = [page.insert(f"record-{i}".encode()) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"record-{i}".encode()

    def test_empty_record_allowed(self):
        page = fresh_page()
        slot = page.insert(b"")
        assert page.read(slot) == b""

    def test_read_dead_slot_raises(self):
        page = fresh_page()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.read(slot)

    def test_read_bad_slot_raises(self):
        page = fresh_page()
        with pytest.raises(PageError):
            page.read(0)

    def test_delete_twice_raises(self):
        page = fresh_page()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_records_iterates_live_only(self):
        page = fresh_page()
        keep = page.insert(b"keep")
        kill = page.insert(b"kill")
        page.delete(kill)
        assert list(page.records()) == [(keep, b"keep")]
        assert page.live_count == 1

    def test_dead_slot_reused(self):
        page = fresh_page()
        first = page.insert(b"a")
        page.insert(b"b")
        page.delete(first)
        reused = page.insert(b"c")
        assert reused == first
        assert page.slot_count == 2


class TestCapacity:
    def test_page_fills_up(self):
        page = fresh_page(128)
        inserted = 0
        while page.insert(b"0123456789") is not None:
            inserted += 1
        expected = (128 - HEADER_SIZE) // (10 + SLOT_SIZE)
        assert inserted == expected

    def test_compaction_reclaims_deleted_space(self):
        page = fresh_page(128)
        slots = []
        while True:
            slot = page.insert(b"0123456789")
            if slot is None:
                break
            slots.append(slot)
        # Free every other record, then insert one that needs compaction.
        for slot in slots[::2]:
            page.delete(slot)
        big = b"x" * 15
        assert page.insert(big) is not None

    def test_record_too_large_for_u16(self):
        page = SlottedPage.format(bytearray(0xFFFF))
        with pytest.raises(PageError):
            page.insert(b"x" * 0x10000)

    def test_tiny_page_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(bytearray(4))

    def test_oversized_page_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(bytearray(0x10000))

    def test_free_space_accounting(self):
        page = fresh_page(256)
        initial = page.free_space
        page.insert(b"ten bytes!")
        assert page.free_space == initial - 10 - SLOT_SIZE

    def test_has_room_for(self):
        page = fresh_page(128)
        assert page.has_room_for(50)
        assert not page.has_room_for(1000)


class TestCompaction:
    def test_compact_preserves_live_records_and_slots(self):
        page = fresh_page(512)
        slots = {page.insert(f"value-{i}".encode()): f"value-{i}".encode()
                 for i in range(8)}
        dead = list(slots)[3]
        page.delete(dead)
        del slots[dead]
        page.compact()
        for slot, expected in slots.items():
            assert page.read(slot) == expected

    def test_compact_restores_contiguous_space(self):
        page = fresh_page(256)
        a = page.insert(b"a" * 40)
        page.insert(b"b" * 40)
        page.delete(a)
        before = page.contiguous_free_space
        page.compact()
        assert page.contiguous_free_space == before + 40


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), st.binary(max_size=40)),
        max_size=60,
    )
)
def test_page_model_property(operations):
    """The page behaves like a dict {slot: record} under insert/delete."""
    page = fresh_page(1024)
    model: dict[int, bytes] = {}
    for action, record in operations:
        if action == "insert":
            slot = page.insert(record)
            if slot is not None:
                assert slot not in model
                model[slot] = record
        elif model:
            victim = sorted(model)[0]
            page.delete(victim)
            del model[victim]
    assert dict(page.records()) == model
    for slot, expected in model.items():
        assert page.read(slot) == expected
