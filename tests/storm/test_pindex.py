"""Tests for the persistent keyword index and its StorM integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storm import FileDisk, InMemoryDisk, StorM
from repro.storm.buffer import BufferManager
from repro.storm.heapfile import RecordId
from repro.storm.index import KeywordIndex
from repro.storm.pindex import PersistentKeywordIndex


def make_index(page_size=256, pool_size=16):
    disk = InMemoryDisk(page_size=page_size)
    return PersistentKeywordIndex(BufferManager(disk, pool_size=pool_size))


def rid(n):
    return RecordId(n // 10, n % 10)


class TestPersistentKeywordIndex:
    def test_add_lookup(self):
        index = make_index()
        index.add(rid(1), ["jazz", "bebop"])
        index.add(rid(2), ["jazz"])
        assert index.lookup("jazz") == {rid(1), rid(2)}
        assert index.lookup("bebop") == {rid(1)}
        assert index.lookup("rock") == frozenset()

    def test_lookup_normalizes(self):
        index = make_index()
        index.add(rid(1), ["Jazz"])
        assert index.lookup(" JAZZ ") == {rid(1)}

    def test_remove(self):
        index = make_index()
        index.add(rid(1), ["jazz"])
        index.add(rid(2), ["jazz"])
        index.remove(rid(1), ["jazz"])
        assert index.lookup("jazz") == {rid(2)}
        index.remove(rid(1), ["jazz"])  # missing: no-op

    def test_posting_count_and_keywords(self):
        index = make_index()
        index.add(rid(1), ["a", "b"])
        index.add(rid(2), ["a"])
        assert index.posting_count("a") == 2
        assert index.posting_count("b") == 1
        assert list(index.keywords()) == ["a", "b"]
        assert index.keyword_count == 2

    def test_no_prefix_bleed_between_keywords(self):
        """'jazz' postings must not appear under 'jaz'."""
        index = make_index()
        index.add(rid(1), ["jazz"])
        index.add(rid(2), ["jaz"])
        assert index.lookup("jaz") == {rid(2)}
        assert index.lookup("jazz") == {rid(1)}

    def test_many_postings_span_pages(self):
        index = make_index(page_size=128)
        for i in range(300):
            index.add(rid(i), ["popular"])
        assert index.posting_count("popular") == 300
        index.tree.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.lists(
                    st.sampled_from(["a", "ab", "abc", "b"]),
                    min_size=1,
                    max_size=3,
                    unique=True,
                ),
            ),
            max_size=40,
            unique_by=lambda t: t[0],
        )
    )
    def test_agrees_with_in_memory_index(self, entries):
        persistent = make_index(page_size=128)
        in_memory = KeywordIndex()
        for n, keywords in entries:
            persistent.add(rid(n), keywords)
            in_memory.add(rid(n), keywords)
        for keyword in ["a", "ab", "abc", "b", "zzz"]:
            assert persistent.lookup(keyword) == in_memory.lookup(keyword)


class TestStorMWithPersistentIndex:
    def test_search_uses_persistent_index(self):
        store = StorM(index_disk=InMemoryDisk(page_size=256))
        store.put(["jazz"], b"one")
        store.put(["rock"], b"two")
        result = store.search("jazz")
        assert result.match_count == 1
        assert result.matches[0][1].payload == b"one"

    def test_delete_updates_persistent_index(self):
        store = StorM(index_disk=InMemoryDisk(page_size=256))
        target = store.put(["jazz"], b"bye")
        store.delete(target)
        assert store.search("jazz").match_count == 0

    def test_index_survives_reopen_without_rescan(self, tmp_path):
        heap_path = str(tmp_path / "heap.db")
        index_path = str(tmp_path / "index.db")
        store = StorM(
            disk=FileDisk(heap_path, page_size=512),
            index_disk=FileDisk(index_path, page_size=512),
        )
        for i in range(50):
            store.put([f"kw{i % 5}"], bytes([i]))
        store.close()

        reopened = StorM(
            disk=FileDisk(heap_path, page_size=512),
            index_disk=FileDisk(index_path, page_size=512),
        )
        assert reopened.search("kw3").match_count == 10
        reopened.close()

    def test_fresh_index_over_existing_heap_rebuilds(self, tmp_path):
        heap_path = str(tmp_path / "heap.db")
        store = StorM(disk=FileDisk(heap_path, page_size=512))
        store.put(["late"], b"indexed afterwards")
        store.close()
        # Reopen with a *new* persistent index: it must rebuild from heap.
        reopened = StorM(
            disk=FileDisk(heap_path, page_size=512),
            index_disk=FileDisk(str(tmp_path / "new-index.db"), page_size=512),
        )
        assert reopened.search("late").match_count == 1
        reopened.close()

    def test_search_and_scan_agree_with_persistent_index(self):
        store = StorM(index_disk=InMemoryDisk(page_size=256))
        for i in range(30):
            store.put([f"kw{i % 3}"], bytes([i]))
        via_index = sorted(r for r, _ in store.search("kw1").matches)
        via_scan = sorted(r for r, _ in store.search_scan("kw1").matches)
        assert via_index == via_scan
