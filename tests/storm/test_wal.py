"""Tests for write-ahead logging and crash recovery."""

import os

import pytest

from repro.errors import StormError
from repro.storm import FileDisk, StorM
from repro.storm.wal import WriteAheadLog


class TestWriteAheadLog:
    def test_append_and_replay_committed(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "log.wal"))
        wal.append(0, b"\x01" * 64)
        wal.append(1, b"\x02" * 64)
        wal.mark_commit()
        wal.sync()
        records = list(wal.replay())
        assert [(page, data[0]) for _, page, data in records] == [(0, 1), (1, 2)]
        wal.close()

    def test_uncommitted_batch_dropped(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "log.wal"))
        wal.append(0, b"\x01" * 64)
        wal.mark_commit()
        wal.append(1, b"\x02" * 64)  # no commit marker follows
        wal.sync()
        records = list(wal.replay())
        assert [page for _, page, _ in records] == [0]
        wal.close()

    def test_torn_tail_stops_replay(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.append(0, b"\x01" * 64)
        wal.mark_commit()
        wal.append(1, b"\x02" * 64)
        wal.mark_commit()
        wal.sync()
        wal.close()
        # Simulate a crash mid-write: chop bytes off the tail.
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 10)
        reopened = WriteAheadLog(path)
        records = list(reopened.replay())
        assert [page for _, page, _ in records] == [0]
        reopened.close()

    def test_corrupt_record_stops_replay(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.append(0, b"\x01" * 64)
        wal.mark_commit()
        wal.append(1, b"\x02" * 64)
        wal.mark_commit()
        wal.sync()
        wal.close()
        # Flip a byte inside the second record's payload.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 30)
            handle.write(b"\xff")
        reopened = WriteAheadLog(path)
        assert [page for _, page, _ in reopened.replay()] == [0]
        reopened.close()

    def test_truncate(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "log.wal"))
        wal.append(0, b"\x01" * 64)
        wal.mark_commit()
        wal.truncate()
        assert wal.size_bytes == 0
        assert list(wal.replay()) == []
        wal.close()

    def test_closed_wal_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "log.wal"))
        wal.close()
        with pytest.raises(StormError):
            wal.append(0, b"")
        wal.close()  # idempotent

    def test_lsn_monotone_across_reopen(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        first = wal.append(0, b"x")
        wal.mark_commit()
        wal.sync()
        wal.close()
        reopened = WriteAheadLog(path)
        list(reopened.replay())
        later = reopened.append(0, b"y")
        assert later > first
        reopened.close()


class TestStorMDurability:
    def paths(self, tmp_path):
        return str(tmp_path / "heap.db"), str(tmp_path / "heap.wal")

    def open_store(self, tmp_path):
        heap, wal = self.paths(tmp_path)
        return StorM(disk=FileDisk(heap, page_size=512), wal_path=wal)

    def test_committed_data_survives_crash(self, tmp_path):
        store = self.open_store(tmp_path)
        store.put(["jazz"], b"must survive")
        store.commit()
        store.crash()  # dirty pages never reached the heap file

        recovered = self.open_store(tmp_path)
        result = recovered.search("jazz")
        assert result.match_count == 1
        assert result.matches[0][1].payload == b"must survive"
        recovered.close()

    def test_uncommitted_data_lost_on_crash(self, tmp_path):
        store = self.open_store(tmp_path)
        store.put(["jazz"], b"committed")
        store.commit()
        store.put(["jazz"], b"never committed")
        store.crash()

        recovered = self.open_store(tmp_path)
        payloads = {obj.payload for _, obj in recovered.search("jazz").matches}
        assert payloads == {b"committed"}
        recovered.close()

    def test_multiple_commits_all_replayed(self, tmp_path):
        store = self.open_store(tmp_path)
        for i in range(5):
            store.put(["batch"], bytes([i]) * 32)
            store.commit()
        store.crash()
        recovered = self.open_store(tmp_path)
        assert recovered.search("batch").match_count == 5
        recovered.close()

    def test_checkpoint_truncates_log(self, tmp_path):
        heap, wal_path = self.paths(tmp_path)
        store = self.open_store(tmp_path)
        store.put(["jazz"], b"x")
        store.commit()
        assert os.path.getsize(wal_path) > 0
        store.checkpoint()
        assert os.path.getsize(wal_path) == 0
        store.crash()  # everything already in the heap file
        recovered = self.open_store(tmp_path)
        assert recovered.search("jazz").match_count == 1
        recovered.close()

    def test_clean_close_leaves_empty_log(self, tmp_path):
        _, wal_path = self.paths(tmp_path)
        store = self.open_store(tmp_path)
        store.put(["jazz"], b"x")
        store.commit()
        store.close()
        assert os.path.getsize(wal_path) == 0

    def test_commit_without_wal_raises(self):
        store = StorM()
        with pytest.raises(StormError):
            store.commit()
        with pytest.raises(StormError):
            store.checkpoint()

    def test_crash_recovery_is_idempotent(self, tmp_path):
        store = self.open_store(tmp_path)
        store.put(["jazz"], b"x")
        store.commit()
        store.crash()
        once = self.open_store(tmp_path)
        once.crash()  # recovered, then crashed again without commits
        twice = self.open_store(tmp_path)
        assert twice.search("jazz").match_count == 1
        twice.close()
