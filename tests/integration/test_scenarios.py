"""Cross-subsystem integration scenarios."""

import pytest

from repro.agents.costs import AgentCosts
from repro.baselines.client_server import VARIANT_MCS, build_cs_network
from repro.baselines.gnutella import build_gnutella_network
from repro.core import BestPeerConfig, build_network
from repro.topology import line, random_graph, tree
from repro.workloads import KeywordCorpus, generate_objects

FAST = AgentCosts(
    class_install_time=0.004,
    state_install_time=0.001,
    execute_overhead=0.0005,
    page_io_time=0.0001,
    object_match_time=0.000002,
)


def config(**overrides):
    defaults = dict(agent_costs=FAST)
    defaults.update(overrides)
    return BestPeerConfig(**defaults)


def load(storm, index, count=30, corpus=None):
    corpus = corpus or KeywordCorpus(size=5)
    for spec in generate_objects(index, count=count, size=64, corpus=corpus):
        storm.put(spec.keywords, spec.payload)


class TestDeterminism:
    def build_and_run(self):
        net = build_network(8, config=config(), topology=tree(8, branching=2))
        for i, node in enumerate(net.nodes):
            load(node.storm, i)
        results = []
        for _ in range(3):
            handle = net.base.issue_query("kw0000")
            net.sim.run()
            results.append(
                (
                    round(handle.completion_time, 12),
                    tuple(str(a.responder) for a in handle.answers),
                    handle.network_answer_count,
                )
            )
            net.base.finish_query(handle)
        return results

    def test_identical_builds_produce_identical_runs(self):
        assert self.build_and_run() == self.build_and_run()


class TestChurnDuringQuery:
    def test_query_completes_without_the_departed_node(self):
        net = build_network(5, config=config(), topology=line(5))
        for i, node in enumerate(net.nodes):
            load(node.storm, i)
        # Node 2 leaves just before the query: the chain is severed, so
        # only node 1 can answer.
        net.nodes[2].leave()
        handle = net.base.issue_query("kw0000")
        net.sim.run()
        assert {str(b) for b in handle.responders} == {str(net.nodes[1].bpid)}

    def test_network_heals_after_reconfiguration(self):
        """After a severing departure, answers already collected let the
        base reconnect directly past the hole."""
        net = build_network(
            5, config=config(max_direct_peers=3), topology=line(5)
        )
        for i, node in enumerate(net.nodes):
            load(node.storm, i)
        first = net.base.issue_query("kw0000")
        net.sim.run()
        net.base.finish_query(first)  # far nodes are now direct peers
        net.nodes[1].leave()  # the old bridge disappears
        second = net.base.issue_query("kw0000")
        net.sim.run()
        # Despite losing the bridge, reconfigured peers still answer.
        assert len(second.responders) >= 2


class TestMultiLiglo:
    def test_nodes_split_across_liglo_servers(self):
        net = build_network(
            6, config=config(), topology=line(6), liglo_count=3
        )
        liglo_ids = {node.bpid.liglo_id for node in net.nodes}
        assert len(liglo_ids) == 3
        for i, node in enumerate(net.nodes):
            load(node.storm, i)
        handle = net.base.issue_query("kw0000")
        net.sim.run()
        assert len(handle.responders) == 5

    def test_rejoin_resolves_across_liglo_servers(self):
        """A peer registered at a different LIGLO is still refreshable."""
        net = build_network(4, config=config(), topology=line(4), liglo_count=2)
        neighbor = net.nodes[1]
        assert neighbor.bpid.liglo_id != net.base.bpid.liglo_id
        neighbor.leave()
        neighbor.rejoin()
        net.sim.run()
        net.base.leave()
        net.base.rejoin()
        net.sim.run()
        assert net.base.peers.get(neighbor.bpid).address == neighbor.host.address


class TestReconfigurationConvergence:
    def test_peer_set_stabilizes(self):
        # Only the base is capped at 3 peers; relays get room for the
        # random overlay's degree.
        configs = [config(max_direct_peers=3)] + [
            config(max_direct_peers=9) for _ in range(9)
        ]
        net = build_network(
            10, config=configs, topology=random_graph(10, degree=2, seed=4)
        )
        # Answers concentrated at three nodes.
        for holder in (5, 7, 9):
            for i in range(4):
                net.nodes[holder].share(["target"], bytes([holder, i]) * 16)
        peer_sets = []
        for _ in range(4):
            handle = net.base.issue_query("target")
            net.sim.run()
            net.base.finish_query(handle)
            peer_sets.append(frozenset(str(b) for b in net.base.peers.bpids()))
        # After the first reconfiguration the set never changes again.
        assert peer_sets[1] == peer_sets[2] == peer_sets[3]
        expected = {str(net.nodes[h].bpid) for h in (5, 7, 9)}
        assert peer_sets[-1] == expected


class TestHeterogeneousNodes:
    def test_mixed_strategies_and_capacities(self):
        """"Nodes can redefine the number of direct peers ... and
        implement their own reconfiguration strategies."""
        configs = [
            config(max_direct_peers=2, strategy="maxcount"),
            config(max_direct_peers=8, strategy="static"),
            config(max_direct_peers=4, strategy="minhops"),
            config(max_direct_peers=3, strategy="random"),
        ]
        net = build_network(4, config=configs, topology=line(4))
        for i, node in enumerate(net.nodes):
            load(node.storm, i)
        handle = net.base.issue_query("kw0001")
        net.sim.run()
        net.base.finish_query(handle)
        assert len(net.base.peers) <= 2  # the base's own cap held


class TestCrossSystemConsistency:
    def test_all_three_systems_find_the_same_answers(self):
        """BestPeer, CS, and Gnutella must agree on *what* they find -
        they only differ in *how fast*."""
        topology = tree(7, branching=2)
        corpus = KeywordCorpus(size=5)

        net = build_network(7, config=config(), topology=topology)
        for i, node in enumerate(net.nodes):
            load(node.storm, i, corpus=corpus)
        bp_handle = net.base.issue_query("kw0002")
        net.sim.run()

        cs = build_cs_network(topology, VARIANT_MCS, costs=FAST)
        for i, node in enumerate(cs.nodes):
            load(node.storm, i, corpus=corpus)
        cs_handle = cs.base.issue_query("kw0002", search_own_store=False)
        cs.sim.run()

        gnutella = build_gnutella_network(topology, costs=FAST)
        for i, servent in enumerate(gnutella.servents):
            load(servent.storm, i, corpus=corpus)
        g_handle = gnutella.base.issue_query("kw0002")
        gnutella.sim.run()

        assert (
            bp_handle.network_answer_count
            == cs_handle.network_answer_count
            == g_handle.network_answer_count
        )
        assert len(bp_handle.responders) == len(cs_handle.responders) == len(
            g_handle.responders
        )
