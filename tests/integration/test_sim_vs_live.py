"""Cross-validation: the simulator and the live runtime agree.

The same scenario — same topology, same shared objects, same keyword —
must yield the *same answers* whether the agents travel a simulated LAN
or real TCP connections.  Timing differs (one is simulated, one is wall
clock); the answer multiset must not.
"""

import pytest

from repro.agents.costs import AgentCosts
from repro.core import BestPeerConfig, build_network
from repro.live import LivePeer
from repro.topology import line, star

FAST = AgentCosts(
    class_install_time=0.001,
    state_install_time=0.001,
    execute_overhead=0.0,
    page_io_time=0.0,
    object_match_time=0.0,
)

SCENARIO = {
    # node index -> list of (keywords, payload)
    1: [(["jazz"], b"bitches brew"), (["rock"], b"paranoid")],
    2: [(["jazz"], b"a love supreme")],
    3: [(["jazz"], b"kind of blue"), (["jazz"], b"sketches of spain")],
}


def answers_from_simulator(topology):
    net = build_network(
        4, config=BestPeerConfig(agent_costs=FAST), topology=topology
    )
    for index, objects in SCENARIO.items():
        for keywords, payload in objects:
            net.nodes[index].share(keywords, payload)
    handle = net.base.issue_query("jazz")
    net.sim.run()
    return sorted(
        item.payload for answer in handle.answers for item in answer.items
    )


def answers_from_live(wire):
    peers = [LivePeer(f"xval-{i}") for i in range(4)]
    try:
        for a, b in wire:
            peers[a].connect_to(peers[b])
        for index, objects in SCENARIO.items():
            for keywords, payload in objects:
                peers[index].share(keywords, payload)
        query = peers[0].issue_query("jazz")
        assert query.wait_for_answers(3, timeout=8.0)
        return sorted(
            item.payload for answer in query.answers for item in answer.items
        )
    finally:
        for peer in peers:
            peer.close()


EXPECTED = sorted(
    payload
    for objects in SCENARIO.values()
    for keywords, payload in objects
    if "jazz" in keywords
)


class TestSimVsLive:
    def test_star_answers_identical(self):
        simulated = answers_from_simulator(star(4))
        live = answers_from_live([(0, 1), (0, 2), (0, 3)])
        assert simulated == live == EXPECTED

    def test_line_answers_identical(self):
        simulated = answers_from_simulator(line(4))
        live = answers_from_live([(0, 1), (1, 2), (2, 3)])
        assert simulated == live == EXPECTED
