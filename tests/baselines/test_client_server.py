"""Tests for the SCS/MCS client-server baselines."""

import pytest

from repro.agents.costs import AgentCosts
from repro.baselines.client_server import (
    VARIANT_MCS,
    VARIANT_SCS,
    build_cs_network,
)
from repro.errors import BestPeerError, TopologyError
from repro.topology import line, star, tree
from repro.topology.builders import Topology

FAST = AgentCosts(
    class_install_time=0.005,
    state_install_time=0.001,
    execute_overhead=0.001,
    page_io_time=0.0001,
    object_match_time=0.000001,
)


def fill(node, index, keyword="jazz", count=2):
    for i in range(count):
        node.storm.put([keyword], bytes([index]) * 64)


class TestMcs:
    def test_collects_all_answers(self):
        deployment = build_cs_network(tree(7, branching=2), VARIANT_MCS, costs=FAST)
        deployment.populate(fill, skip_base=True)
        handle = deployment.base.issue_query("jazz")
        deployment.sim.run()
        assert handle.done
        assert handle.network_answer_count == 12  # 6 nodes x 2 answers
        assert len(handle.responders) == 6

    def test_base_local_search(self):
        deployment = build_cs_network(line(2), VARIANT_MCS, costs=FAST)
        deployment.base.storm.put(["jazz"], b"mine")
        handle = deployment.base.issue_query("jazz")
        deployment.sim.run()
        assert handle.local_result.match_count == 1

    def test_results_relay_through_path(self):
        """A deep node's answers arrive later than a shallow node's."""
        deployment = build_cs_network(line(4), VARIANT_MCS, costs=FAST)
        deployment.populate(fill, skip_base=True)
        handle = deployment.base.issue_query("jazz")
        deployment.sim.run()
        by_responder = {resp: t for t, resp, _ in handle.arrivals}
        assert by_responder["cs-1"] < by_responder["cs-3"]

    def test_done_signal_completes_empty_network(self):
        deployment = build_cs_network(line(3), VARIANT_MCS, costs=FAST)
        handle = deployment.base.issue_query("nothing-matches")
        deployment.sim.run()
        assert handle.done
        assert handle.arrivals == []

    def test_single_node(self):
        deployment = build_cs_network(star(1), VARIANT_MCS, costs=FAST)
        handle = deployment.base.issue_query("jazz")
        deployment.sim.run()
        assert handle.done


class TestScs:
    def test_collects_all_answers(self):
        deployment = build_cs_network(star(4), VARIANT_SCS, costs=FAST)
        deployment.populate(fill, skip_base=True)
        handle = deployment.base.issue_query("jazz")
        deployment.sim.run()
        assert handle.done
        assert handle.network_answer_count == 6

    def test_children_are_sequential(self):
        """On a star, SCS completes children one after another."""
        deployment = build_cs_network(star(4), VARIANT_SCS, costs=FAST)
        deployment.populate(fill, skip_base=True)
        handle = deployment.base.issue_query("jazz")
        deployment.sim.run()
        arrival_times = [t for t, _, _ in handle.arrivals]
        gaps = [b - a for a, b in zip(arrival_times, arrival_times[1:])]
        # Each child's search runs only after the previous child finished,
        # so consecutive arrivals are separated by a full search time.
        assert all(gap > FAST.execute_overhead for gap in gaps)

    def test_scs_slower_than_mcs_on_star(self):
        """The paper's headline SCS result."""
        results = {}
        for variant in (VARIANT_SCS, VARIANT_MCS):
            deployment = build_cs_network(star(8), variant, costs=FAST)
            deployment.populate(
                lambda node, i: [
                    node.storm.put(["jazz"], bytes([i]) * 512) for _ in range(20)
                ],
                skip_base=True,
            )
            handle = deployment.base.issue_query("jazz")
            deployment.sim.run()
            results[variant] = handle.completion_time
        assert results[VARIANT_SCS] > 2 * results[VARIANT_MCS]


class TestValidation:
    def test_disconnected_topology_rejected(self):
        disconnected = Topology("islands", 4, frozenset({(0, 1), (2, 3)}))
        with pytest.raises(TopologyError):
            build_cs_network(disconnected, VARIANT_MCS)

    def test_unknown_variant_rejected(self):
        with pytest.raises(BestPeerError):
            build_cs_network(line(2), "quantum")
