"""Edge cases for the client/server baselines."""

import pytest

from repro.agents.costs import AgentCosts
from repro.baselines.client_server import (
    VARIANT_MCS,
    VARIANT_SCS,
    build_cs_network,
)
from repro.topology import line, star, tree

FAST = AgentCosts(
    class_install_time=0.002,
    state_install_time=0.001,
    execute_overhead=0.001,
    page_io_time=0.0001,
    object_match_time=0.000001,
)


class TestConcurrentQueries:
    def test_two_in_flight_queries_stay_separate(self):
        deployment = build_cs_network(tree(7, branching=2), VARIANT_MCS, costs=FAST)
        deployment.populate(
            lambda node, i: node.storm.put([f"kw{i % 2}"], bytes([i])),
            skip_base=True,
        )
        first = deployment.base.issue_query("kw0")
        second = deployment.base.issue_query("kw1")
        deployment.sim.run()
        assert first.done and second.done
        assert first.network_answer_count == 3  # nodes 2, 4, 6 hold kw0
        assert second.network_answer_count == 3  # nodes 1, 3, 5 hold kw1
        assert first.responders == {"cs-2", "cs-4", "cs-6"}
        assert second.responders == {"cs-1", "cs-3", "cs-5"}

    def test_repeated_queries_have_stable_results(self):
        deployment = build_cs_network(line(5), VARIANT_MCS, costs=FAST)
        deployment.populate(
            lambda node, i: node.storm.put(["k"], bytes([i]) * 8), skip_base=True
        )
        counts = []
        for _ in range(3):
            handle = deployment.base.issue_query("k")
            deployment.sim.run()
            counts.append(handle.network_answer_count)
        assert counts == [4, 4, 4]


class TestScsSequencing:
    def test_done_signals_unblock_next_child(self):
        """An SCS node with three children finishes them strictly in
        sequence; the completion handle closes only after the last."""
        deployment = build_cs_network(star(4), VARIANT_SCS, costs=FAST)
        deployment.populate(
            lambda node, i: node.storm.put(["k"], bytes([i])), skip_base=True
        )
        handle = deployment.base.issue_query("k")
        deployment.sim.run()
        assert handle.done
        assert handle.done_at >= handle.arrivals[-1][0]

    def test_deep_scs_line_completes(self):
        deployment = build_cs_network(line(6), VARIANT_SCS, costs=FAST)
        deployment.populate(
            lambda node, i: node.storm.put(["k"], bytes([i])), skip_base=True
        )
        handle = deployment.base.issue_query("k")
        deployment.sim.run()
        assert handle.done
        assert handle.network_answer_count == 5


class TestRelayDeath:
    def test_relay_dies_mid_query_strands_subtree(self):
        deployment = build_cs_network(line(4), VARIANT_MCS, costs=FAST)
        deployment.populate(
            lambda node, i: node.storm.put(["k"], bytes([i])), skip_base=True
        )
        # The first relay dies immediately: its whole subtree is lost
        # and, CS being connection-oriented, "done" never arrives.
        deployment.node(1).host.disconnect()
        handle = deployment.base.issue_query("k")
        deployment.sim.run()
        assert handle.network_answer_count == 0
        assert not handle.done
