"""Tests for the Gnutella baseline."""

from repro.agents.costs import AgentCosts
from repro.baselines.gnutella import build_gnutella_network
from repro.topology import line, random_graph, ring, star

FAST = AgentCosts(
    class_install_time=0.005,
    state_install_time=0.001,
    execute_overhead=0.001,
    page_io_time=0.0001,
    object_match_time=0.000001,
)


def fill(servent, index, keyword="mp3", count=3):
    for i in range(count):
        servent.storm.put([keyword], bytes([index]) * 64)


class TestQueryFlooding:
    def test_hits_route_back_to_origin(self):
        deployment = build_gnutella_network(line(4), costs=FAST)
        deployment.populate(fill, skip_base=True)
        handle = deployment.base.issue_query("mp3")
        deployment.sim.run()
        assert handle.network_answer_count == 9
        assert handle.responders == {"gnut-1", "gnut-2", "gnut-3"}

    def test_hits_carry_names_not_payloads(self):
        deployment = build_gnutella_network(line(2), costs=FAST)
        deployment.servent(1).storm.put(["mp3"], b"x" * 1024)
        handle = deployment.base.issue_query("mp3")
        deployment.sim.run()
        # The handle records hits; files are (name, size) pairs only.
        assert handle.network_answer_count == 1

    def test_ttl_bounds_flooding(self):
        deployment = build_gnutella_network(line(5), costs=FAST)
        deployment.populate(fill, skip_base=True)
        handle = deployment.base.issue_query("mp3", ttl=2)
        deployment.sim.run()
        assert handle.responders == {"gnut-1", "gnut-2"}

    def test_duplicate_queries_dropped_on_cycles(self):
        deployment = build_gnutella_network(ring(4), costs=FAST)
        deployment.populate(fill, skip_base=True)
        handle = deployment.base.issue_query("mp3")
        deployment.sim.run()
        # Each servent answers exactly once despite the cycle.
        assert len(handle.arrivals) == 3
        assert all(s.queries_handled <= 1 for s in deployment.servents)

    def test_relay_counter(self):
        deployment = build_gnutella_network(line(3), costs=FAST)
        fill(deployment.servent(2), 2)
        handle = deployment.base.issue_query("mp3")
        deployment.sim.run()
        # gnut-2's hit passed through gnut-1.
        assert deployment.servent(1).hits_relayed == 1
        assert handle.network_answer_count == 3

    def test_search_path_is_stable_across_runs(self):
        """Gnutella is 'essentially not affected by the number of times
        the query is run' - same fixed peers, same path, same time."""
        deployment = build_gnutella_network(random_graph(8, 3, seed=2), costs=FAST)
        deployment.populate(fill, skip_base=True)
        times = []
        for _ in range(3):
            handle = deployment.base.issue_query("mp3")
            deployment.sim.run()
            times.append(handle.completion_time)
        assert max(times) - min(times) < 0.2 * max(times)


class TestBootstrap:
    def test_newcomer_adopts_discovered_servents(self):
        from repro.baselines.gnutella import GnutellaServent

        deployment = build_gnutella_network(line(4), costs=FAST)
        deployment.populate(fill, skip_base=True)
        newcomer = GnutellaServent(deployment.network, "newbie", costs=FAST)
        newcomer.bootstrap(
            deployment.base.host.address, max_peers=4, settle_time=1.0
        )
        deployment.sim.run(until=deployment.sim.now + 2.0)
        # Seed plus the three servents discovered through it.
        assert len(newcomer.peers) == 4
        # The newcomer can now query the overlay.
        handle = newcomer.issue_query("mp3")
        deployment.sim.run(until=deployment.sim.now + 5.0)
        assert handle.network_answer_count == 9

    def test_max_peers_cap_respected(self):
        from repro.baselines.gnutella import GnutellaServent

        deployment = build_gnutella_network(star(6), costs=FAST)
        deployment.populate(fill, skip_base=True)
        newcomer = GnutellaServent(deployment.network, "newbie", costs=FAST)
        newcomer.bootstrap(
            deployment.base.host.address, max_peers=3, settle_time=1.0
        )
        deployment.sim.run(until=deployment.sim.now + 2.0)
        assert len(newcomer.peers) == 3

    def test_prefers_servents_sharing_more_files(self):
        from repro.baselines.gnutella import GnutellaServent

        deployment = build_gnutella_network(star(4), costs=FAST)
        fill(deployment.servent(1), 1, count=1)
        fill(deployment.servent(2), 2, count=20)
        fill(deployment.servent(3), 3, count=5)
        newcomer = GnutellaServent(deployment.network, "newbie", costs=FAST)
        newcomer.bootstrap(
            deployment.base.host.address, max_peers=2, settle_time=1.0
        )
        deployment.sim.run(until=deployment.sim.now + 2.0)
        # Seed + the biggest sharer (servent 2).
        assert deployment.servent(2).host.address in newcomer.peers


class TestPingPong:
    def test_ping_discovers_all_reachable_servents(self):
        deployment = build_gnutella_network(star(5), costs=FAST)
        guid = deployment.base.ping_network()
        deployment.sim.run()
        pongs = deployment.base.pongs_for(guid)
        assert {p.responder for p in pongs} == {f"gnut-{i}" for i in range(1, 5)}

    def test_pong_reports_shared_file_count(self):
        deployment = build_gnutella_network(line(2), costs=FAST)
        fill(deployment.servent(1), 1, count=7)
        guid = deployment.base.ping_network()
        deployment.sim.run()
        (pong,) = deployment.base.pongs_for(guid)
        assert pong.shared_files == 7
        assert pong.address == deployment.servent(1).host.address

    def test_pongs_route_back_through_path(self):
        deployment = build_gnutella_network(line(3), costs=FAST)
        guid = deployment.base.ping_network()
        deployment.sim.run()
        assert len(deployment.base.pongs_for(guid)) == 2
