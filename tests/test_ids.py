"""Tests for identifier types and the error hierarchy."""

import pytest

import repro.errors as errors
from repro.ids import BPID, AgentId, QueryId, SerialCounter


class TestBPID:
    def test_equality_and_hash(self):
        assert BPID("liglo-a", 1) == BPID("liglo-a", 1)
        assert BPID("liglo-a", 1) != BPID("liglo-b", 1)
        assert BPID("liglo-a", 1) != BPID("liglo-a", 2)
        assert len({BPID("x", 1), BPID("x", 1), BPID("y", 1)}) == 2

    def test_str_format(self):
        assert str(BPID("10.0.0.1", 42)) == "10.0.0.1/42"

    def test_same_node_id_different_liglo_distinct(self):
        """'Two nodes can register to two different servers and be
        assigned the same name' - the pair is what is unique."""
        a = BPID("server-a", 0)
        b = BPID("server-b", 0)
        assert a != b
        assert a.node_id == b.node_id

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BPID("x", 1).node_id = 5


class TestDerivedIds:
    def test_agent_id(self):
        origin = BPID("l", 3)
        assert str(AgentId(origin, 7)) == "agent:l/3#7"
        assert AgentId(origin, 7) == AgentId(BPID("l", 3), 7)

    def test_query_id(self):
        origin = BPID("l", 3)
        assert str(QueryId(origin, 9)) == "query:l/3#9"
        assert QueryId(origin, 1) != AgentId(origin, 1)


class TestSerialCounter:
    def test_monotone_from_zero(self):
        counter = SerialCounter()
        assert [counter.next() for _ in range(4)] == [0, 1, 2, 3]

    def test_independent_counters(self):
        a, b = SerialCounter(), SerialCounter()
        a.next()
        a.next()
        assert b.next() == 0


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_catching_the_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.BufferFullError("full")
        with pytest.raises(errors.StormError):
            raise errors.RecordNotFound("gone")
        with pytest.raises(errors.BestPeerError):
            raise errors.AccessDeniedError("no")
