"""Tests for the live TCP transport."""

import threading
import time

import pytest

from repro.errors import NetworkError
from repro.live.transport import LiveEndpoint


@pytest.fixture
def endpoints():
    created = []

    def make():
        endpoint = LiveEndpoint()
        created.append(endpoint)
        return endpoint

    yield make
    for endpoint in created:
        endpoint.close()


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestLiveEndpoint:
    def test_send_and_receive(self, endpoints):
        a, b = endpoints(), endpoints()
        received = []
        b.bind("greet", lambda src, payload: received.append((src, payload)))
        a.send(b.address, "greet", {"hello": "world"})
        assert wait_until(lambda: received)
        src, payload = received[0]
        assert payload == {"hello": "world"}
        # The reply-to address is a's *listener*, usable for replies.
        assert tuple(src) == a.address

    def test_reply_round_trip(self, endpoints):
        a, b = endpoints(), endpoints()
        got_reply = []
        a.bind("pong", lambda src, payload: got_reply.append(payload))
        b.bind("ping", lambda src, payload: b.send(tuple(src), "pong", payload + 1))
        a.send(b.address, "ping", 41)
        assert wait_until(lambda: got_reply)
        assert got_reply[0] == 42

    def test_concurrent_senders(self, endpoints):
        sink = endpoints()
        received = []
        lock = threading.Lock()

        def collect(src, payload):
            with lock:
                received.append(payload)

        sink.bind("n", collect)
        senders = [endpoints() for _ in range(4)]
        threads = [
            threading.Thread(
                target=lambda s=s, i=i: [
                    s.send(sink.address, "n", (i, j)) for j in range(10)
                ]
            )
            for i, s in enumerate(senders)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert wait_until(lambda: len(received) == 40)
        assert set(received) == {(i, j) for i in range(4) for j in range(10)}

    def test_send_to_dead_peer_never_breaks_sender(self, endpoints):
        """Sends to a closed peer either fail cleanly (NetworkError /
        False) or vanish into a dead socket — depending on the kernel's
        connection handling — but must never corrupt the sender."""
        a = endpoints()
        dead = LiveEndpoint()
        address = dead.address
        dead.close()
        try:
            a.try_send(address, "x", None)
        except NetworkError:
            pass  # also acceptable: refusal surfaced despite try_send
        # The sender remains fully usable afterwards.
        b = endpoints()
        received = []
        b.bind("ok", lambda src, payload: received.append(payload))
        a.send(b.address, "ok", 1)
        assert wait_until(lambda: received)

    def test_unknown_protocol_dropped_silently(self, endpoints):
        a, b = endpoints(), endpoints()
        a.send(b.address, "nobody-listens", "data")
        time.sleep(0.05)  # must not crash the accept loop
        received = []
        b.bind("real", lambda src, payload: received.append(payload))
        a.send(b.address, "real", 1)
        assert wait_until(lambda: received)

    def test_double_bind_rejected(self, endpoints):
        a = endpoints()
        a.bind("p", lambda src, payload: None)
        with pytest.raises(NetworkError):
            a.bind("p", lambda src, payload: None)

    def test_close_is_idempotent(self, endpoints):
        a = endpoints()
        a.close()
        a.close()

    def test_large_payload(self, endpoints):
        a, b = endpoints(), endpoints()
        received = []
        b.bind("big", lambda src, payload: received.append(payload))
        blob = bytes(range(256)) * 4000  # ~1MB
        a.send(b.address, "big", blob)
        assert wait_until(lambda: received)
        assert received[0] == blob


class TestCompactLiveFraming:
    """Registered control messages cross the live wire as compact frames."""

    def test_registered_message_round_trips(self, endpoints, monkeypatch):
        from repro.liglo.messages import PROTO_PING, Ping
        from repro.net.codec import WIRE_CODEC_ENV_VAR

        monkeypatch.delenv(WIRE_CODEC_ENV_VAR, raising=False)
        a, b = endpoints(), endpoints()
        received = []
        b.bind(PROTO_PING, lambda src, payload: received.append(payload))
        a.send(b.address, PROTO_PING, Ping(token=7))
        assert wait_until(lambda: received)
        assert received[0] == Ping(token=7)

    def test_compact_body_discriminates_from_legacy(self):
        from repro.liglo.messages import Ping
        from repro.net.codec import FRAME_MAGIC
        from repro.live.transport import _decode_body, _encode_body
        from repro.util.compression import DEFAULT_CODEC

        compact = _encode_body("liglo.ping", Ping(token=7), DEFAULT_CODEC)
        assert compact[0] == FRAME_MAGIC
        legacy = _encode_body("blob", {"k": "v"}, DEFAULT_CODEC)
        assert legacy[0] != FRAME_MAGIC  # gzip stream starts 0x1f
        assert _decode_body(compact, DEFAULT_CODEC) == ("liglo.ping", Ping(token=7))
        assert _decode_body(legacy, DEFAULT_CODEC) == ("blob", {"k": "v"})

    def test_pickle_mode_round_trips_and_skips_compact_framing(
        self, endpoints, monkeypatch
    ):
        from repro.liglo.messages import PROTO_PING, Ping
        from repro.net.codec import FRAME_MAGIC, WIRE_CODEC_ENV_VAR
        from repro.live.transport import _encode_body
        from repro.util.compression import DEFAULT_CODEC

        monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "pickle")
        body = _encode_body("liglo.ping", Ping(token=7), DEFAULT_CODEC)
        assert body[0] != FRAME_MAGIC
        a, b = endpoints(), endpoints()
        received = []
        b.bind(PROTO_PING, lambda src, payload: received.append(payload))
        a.send(b.address, PROTO_PING, Ping(token=7))
        assert wait_until(lambda: received)
        assert received[0] == Ping(token=7)

    def test_corrupt_frame_counted_and_does_not_kill_the_serve_loop(
        self, endpoints
    ):
        import socket
        import struct

        from repro.liglo.messages import PROTO_PING, Ping
        from repro.net.codec import encode_message
        from repro.net.faults import FrameFaultInjector
        from repro.live.transport import _PROTO_LEN

        b = endpoints()
        received = []
        b.bind(PROTO_PING, lambda src, payload: received.append(payload))

        # Hand-build a compact live body around a truncated frame and
        # push it straight down a socket (no _reply_to preamble needed).
        frame = FrameFaultInjector(seed=2).truncate(
            encode_message(Ping(token=1)), keep=6
        )
        name = PROTO_PING.encode()
        body = b"\xb7" + _PROTO_LEN.pack(len(name)) + name + frame
        with socket.create_connection(b.address, timeout=5.0) as sock:
            sock.sendall(struct.pack("<I", len(body)) + body)
        assert wait_until(lambda: b.decode_errors == 1)
        assert received == []

        # The endpoint keeps serving well-formed traffic afterwards.
        a = endpoints()
        a.send(b.address, PROTO_PING, Ping(token=2))
        assert wait_until(lambda: received)
        assert received == [Ping(token=2)]
        assert b.decode_errors == 1

    def test_corrupt_legacy_body_also_counted(self, endpoints):
        import socket
        import struct

        b = endpoints()
        body = b"\x1f\x8b" + b"\x00" * 16  # gzip magic, garbage stream
        with socket.create_connection(b.address, timeout=5.0) as sock:
            sock.sendall(struct.pack("<I", len(body)) + body)
        assert wait_until(lambda: b.decode_errors == 1)


class TestDataLiveFraming:
    """Data-registered messages cross the live wire as stream frames."""

    def test_answer_round_trips_as_stream_frame(self, endpoints, monkeypatch):
        from repro.agents.messages import _sample_answer
        from repro.net import datacodec
        from repro.live.transport import _encode_body
        from repro.util.compression import DEFAULT_CODEC

        monkeypatch.delenv(datacodec.WIRE_DATA_ENV_VAR, raising=False)
        body = _encode_body("live.answer", _sample_answer(), DEFAULT_CODEC)
        assert body[0] == datacodec.FRAME_MAGIC

        a, b = endpoints(), endpoints()
        received = []
        b.bind("live.answer", lambda src, payload: received.append(payload))
        a.send(b.address, "live.answer", _sample_answer())
        assert wait_until(lambda: received)
        assert received[0] == _sample_answer()

    def test_batch_round_trips_and_stays_a_batch(self, endpoints, monkeypatch):
        from repro.agents.messages import BatchedAnswers, _sample_answer
        from repro.net import datacodec

        monkeypatch.delenv(datacodec.WIRE_DATA_ENV_VAR, raising=False)
        batch = BatchedAnswers([_sample_answer(1), _sample_answer(2)])
        a, b = endpoints(), endpoints()
        received = []
        b.bind("live.answer", lambda src, payload: received.append(payload))
        a.send(b.address, "live.answer", batch)
        assert wait_until(lambda: received)
        assert isinstance(received[0], BatchedAnswers)
        assert received[0] == batch

    def test_pickle_mode_skips_stream_framing(self, monkeypatch):
        from repro.agents.messages import _sample_answer
        from repro.net import datacodec
        from repro.live.transport import _decode_body, _encode_body
        from repro.util.compression import DEFAULT_CODEC

        monkeypatch.setenv(datacodec.WIRE_DATA_ENV_VAR, "pickle")
        body = _encode_body("live.answer", _sample_answer(), DEFAULT_CODEC)
        assert body[0] == 0x1F  # gzip'd pickle, not a stream frame
        assert _decode_body(body, DEFAULT_CODEC) == (
            "live.answer",
            _sample_answer(),
        )

    def test_corrupt_data_frame_counted_and_serve_loop_survives(self, endpoints):
        import socket
        import struct

        from repro.agents.messages import _sample_answer
        from repro.net import datacodec
        from repro.net.faults import FrameFaultInjector
        from repro.live.transport import _PROTO_LEN

        b = endpoints()
        received = []
        b.bind("live.answer", lambda src, payload: received.append(payload))

        injector = FrameFaultInjector(
            seed=2, max_frame_bytes=datacodec.MAX_FRAME_BYTES
        )
        frame = injector.truncate(
            datacodec.encode_message(_sample_answer()), keep=10
        )
        name = b"live.answer"
        body = b"\xd7" + _PROTO_LEN.pack(len(name)) + name + frame
        with socket.create_connection(b.address, timeout=5.0) as sock:
            sock.sendall(struct.pack("<I", len(body)) + body)
        assert wait_until(lambda: b.decode_errors == 1)
        assert received == []

        a = endpoints()
        a.send(b.address, "live.answer", _sample_answer(2))
        assert wait_until(lambda: received)
        assert received == [_sample_answer(2)]
        assert b.decode_errors == 1

    def test_lazy_batch_corruption_counted_in_serve_loop(self, endpoints):
        import socket
        import struct

        from repro.agents.messages import BatchedAnswers, _sample_answer
        from repro.net import datacodec
        from repro.live.transport import _PROTO_LEN

        b = endpoints()
        received = []
        # The handler materializes the batch — inside the serve loop's
        # decode-error guard, so deferred corruption is still counted.
        b.bind(
            "live.answer",
            lambda src, payload: received.append(tuple(payload.answers)),
        )

        frame = bytearray(
            datacodec.encode_message(BatchedAnswers([_sample_answer(1)]))
        )
        frame[-1] = 2  # trailing opt-presence byte: must be 0 or 1
        name = b"live.answer"
        body = b"\xd7" + _PROTO_LEN.pack(len(name)) + name + bytes(frame)
        with socket.create_connection(b.address, timeout=5.0) as sock:
            sock.sendall(struct.pack("<I", len(body)) + body)
        assert wait_until(lambda: b.decode_errors == 1)
        assert received == []
