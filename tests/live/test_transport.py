"""Tests for the live TCP transport."""

import threading
import time

import pytest

from repro.errors import NetworkError
from repro.live.transport import LiveEndpoint


@pytest.fixture
def endpoints():
    created = []

    def make():
        endpoint = LiveEndpoint()
        created.append(endpoint)
        return endpoint

    yield make
    for endpoint in created:
        endpoint.close()


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestLiveEndpoint:
    def test_send_and_receive(self, endpoints):
        a, b = endpoints(), endpoints()
        received = []
        b.bind("greet", lambda src, payload: received.append((src, payload)))
        a.send(b.address, "greet", {"hello": "world"})
        assert wait_until(lambda: received)
        src, payload = received[0]
        assert payload == {"hello": "world"}
        # The reply-to address is a's *listener*, usable for replies.
        assert tuple(src) == a.address

    def test_reply_round_trip(self, endpoints):
        a, b = endpoints(), endpoints()
        got_reply = []
        a.bind("pong", lambda src, payload: got_reply.append(payload))
        b.bind("ping", lambda src, payload: b.send(tuple(src), "pong", payload + 1))
        a.send(b.address, "ping", 41)
        assert wait_until(lambda: got_reply)
        assert got_reply[0] == 42

    def test_concurrent_senders(self, endpoints):
        sink = endpoints()
        received = []
        lock = threading.Lock()

        def collect(src, payload):
            with lock:
                received.append(payload)

        sink.bind("n", collect)
        senders = [endpoints() for _ in range(4)]
        threads = [
            threading.Thread(
                target=lambda s=s, i=i: [
                    s.send(sink.address, "n", (i, j)) for j in range(10)
                ]
            )
            for i, s in enumerate(senders)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert wait_until(lambda: len(received) == 40)
        assert set(received) == {(i, j) for i in range(4) for j in range(10)}

    def test_send_to_dead_peer_never_breaks_sender(self, endpoints):
        """Sends to a closed peer either fail cleanly (NetworkError /
        False) or vanish into a dead socket — depending on the kernel's
        connection handling — but must never corrupt the sender."""
        a = endpoints()
        dead = LiveEndpoint()
        address = dead.address
        dead.close()
        try:
            a.try_send(address, "x", None)
        except NetworkError:
            pass  # also acceptable: refusal surfaced despite try_send
        # The sender remains fully usable afterwards.
        b = endpoints()
        received = []
        b.bind("ok", lambda src, payload: received.append(payload))
        a.send(b.address, "ok", 1)
        assert wait_until(lambda: received)

    def test_unknown_protocol_dropped_silently(self, endpoints):
        a, b = endpoints(), endpoints()
        a.send(b.address, "nobody-listens", "data")
        time.sleep(0.05)  # must not crash the accept loop
        received = []
        b.bind("real", lambda src, payload: received.append(payload))
        a.send(b.address, "real", 1)
        assert wait_until(lambda: received)

    def test_double_bind_rejected(self, endpoints):
        a = endpoints()
        a.bind("p", lambda src, payload: None)
        with pytest.raises(NetworkError):
            a.bind("p", lambda src, payload: None)

    def test_close_is_idempotent(self, endpoints):
        a = endpoints()
        a.close()
        a.close()

    def test_large_payload(self, endpoints):
        a, b = endpoints(), endpoints()
        received = []
        b.bind("big", lambda src, payload: received.append(payload))
        blob = bytes(range(256)) * 4000  # ~1MB
        a.send(b.address, "big", blob)
        assert wait_until(lambda: received)
        assert received[0] == blob
