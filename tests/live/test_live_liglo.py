"""Tests for the live LIGLO server."""

import pytest

from repro.errors import BestPeerError
from repro.live import LiveLigloServer, LivePeer


@pytest.fixture
def rig():
    created = []

    def make_peer(name, **kwargs):
        peer = LivePeer(name, **kwargs)
        created.append(peer)
        return peer

    server = LiveLigloServer()
    created.append(server)
    yield server, make_peer
    for thing in created:
        thing.close()


class TestLiveLiglo:
    def test_registration_assigns_bpid(self, rig):
        server, make_peer = rig
        peer = make_peer("a")
        original = peer.bpid
        assert peer.register_with(server.address)
        assert peer.bpid != original
        assert peer.bpid.liglo_id == server.server_id
        assert server.member_count() == 1

    def test_sequential_node_ids(self, rig):
        server, make_peer = rig
        bpids = []
        for i in range(3):
            peer = make_peer(f"p{i}")
            assert peer.register_with(server.address)
            bpids.append(peer.bpid)
        assert sorted(b.node_id for b in bpids) == [0, 1, 2]

    def test_initial_peers_handed_out(self, rig):
        server, make_peer = rig
        early = make_peer("early")
        early.register_with(server.address)
        late = make_peer("late")
        late.register_with(server.address)
        assert early.bpid in late.peer_bpids()

    def test_resolution(self, rig):
        server, make_peer = rig
        a = make_peer("a")
        b = make_peer("b")
        a.register_with(server.address)
        b.register_with(server.address)
        assert a.resolve_peer(b.bpid) == b.address
        from repro.ids import BPID

        assert a.resolve_peer(BPID(server.server_id, 999)) is None

    def test_capacity_rejection(self):
        server = LiveLigloServer(capacity=1)
        a = LivePeer("a")
        b = LivePeer("b")
        try:
            assert a.register_with(server.address)
            assert not b.register_with(server.address)
            assert server.registrations_rejected == 1
        finally:
            for thing in (a, b, server):
                thing.close()

    def test_resolve_without_registration_raises(self, rig):
        server, make_peer = rig
        peer = make_peer("loner")
        with pytest.raises(BestPeerError):
            peer.resolve_peer(peer.bpid)

    def test_registered_peers_can_query_each_other(self, rig):
        server, make_peer = rig
        a = make_peer("a")
        b = make_peer("b")
        a.register_with(server.address)
        b.register_with(server.address)  # b adopts a as initial peer
        a.add_peer(b.bpid, b.address)
        a.share(["jazz"], b"registered and sharing")
        query = b.issue_query("jazz")
        assert query.wait_for_answers(1, timeout=5.0)
        assert query.responders == {a.bpid}
