"""Live-runtime robustness: send retries, loss injection, LIGLO retry."""

import threading

import pytest

from repro.errors import LigloUnreachableError, NetworkError, RetryExhaustedError
from repro.live import LiveLigloServer, LivePeer
from repro.live.transport import LiveEndpoint
from repro.util.retry import RetryPolicy

#: Zero-delay policy (tests inject sleep anyway; nothing should block).
POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.0
)


def dead_address():
    """An address with nothing listening (bind, grab the port, close)."""
    import socket

    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


class TestSendWithRetry:
    def test_succeeds_against_live_peer(self):
        a = LiveEndpoint()
        b = LiveEndpoint()
        got = threading.Event()
        b.bind("test/ping", lambda _src, _payload: got.set())
        try:
            a.send_with_retry(b.address, "test/ping", b"x", POLICY)
            assert got.wait(timeout=5.0)
            assert a.send_retries == 0
        finally:
            a.close()
            b.close()

    def test_exhaustion_raises_and_counts(self):
        endpoint = LiveEndpoint()
        slept = []
        try:
            with pytest.raises(RetryExhaustedError) as excinfo:
                endpoint.send_with_retry(
                    dead_address(), "test/ping", b"x", POLICY, sleep=slept.append
                )
            assert excinfo.value.attempts == POLICY.max_attempts
            assert isinstance(excinfo.value.__cause__, NetworkError)
            assert endpoint.send_retries == POLICY.max_attempts - 1
            assert slept == [0.01, 0.02]
        finally:
            endpoint.close()

    def test_recovers_when_listener_appears(self):
        # First attempt hits a dead port; the sleep hook brings a
        # listener up on that exact port before the retry.
        address = dead_address()
        got = threading.Event()
        late: list[LiveEndpoint] = []

        def revive(_delay):
            if not late:
                endpoint = LiveEndpoint(port=address[1])
                endpoint.bind("test/ping", lambda _s, _p: got.set())
                late.append(endpoint)

        sender = LiveEndpoint()
        try:
            sender.send_with_retry(
                tuple(address), "test/ping", b"x", POLICY, sleep=revive
            )
            assert got.wait(timeout=5.0)
            assert sender.send_retries >= 1
        finally:
            sender.close()
            for endpoint in late:
                endpoint.close()


class TestLossInjection:
    def test_validates_probability(self):
        with pytest.raises(NetworkError):
            LiveEndpoint(loss_probability=1.5)

    def test_total_loss_drops_everything(self):
        sender = LiveEndpoint()
        receiver = LiveEndpoint(loss_probability=1.0)
        received = threading.Event()
        receiver.bind("test/data", lambda _s, _p: received.set())
        try:
            for _ in range(5):
                sender.send(receiver.address, "test/data", b"x")
            assert not received.wait(timeout=0.3)
            pause = threading.Event()
            for _ in range(50):  # workers race the assertion; poll briefly
                if receiver.loss_drops == 5:
                    break
                pause.wait(0.05)
            assert receiver.loss_drops == 5
            assert receiver.messages_received == 0
        finally:
            sender.close()
            receiver.close()

    def test_zero_loss_delivers_everything(self):
        sender = LiveEndpoint()
        receiver = LiveEndpoint(loss_probability=0.0)
        count = []
        done = threading.Event()

        def on_message(_src, _payload):
            count.append(1)
            if len(count) == 5:
                done.set()

        receiver.bind("test/data", on_message)
        try:
            for _ in range(5):
                sender.send(receiver.address, "test/data", b"x")
            assert done.wait(timeout=5.0)
            assert receiver.loss_drops == 0
        finally:
            sender.close()
            receiver.close()


class TestRegisterWithRetry:
    def test_unreachable_liglo_raises_typed_error(self):
        peer = LivePeer("loner")
        slept = []
        try:
            with pytest.raises(LigloUnreachableError) as excinfo:
                peer.register_with(
                    dead_address(),
                    timeout=0.2,
                    retry_policy=POLICY,
                    sleep=slept.append,
                )
            assert excinfo.value.attempts == POLICY.max_attempts
            assert slept == [0.01, 0.02]
        finally:
            peer.close()

    def test_no_policy_still_returns_false(self):
        peer = LivePeer("loner")
        try:
            assert peer.register_with(dead_address(), timeout=0.2) is False
        finally:
            peer.close()

    def test_rejection_is_not_retried(self):
        server = LiveLigloServer(capacity=1)
        first = LivePeer("first")
        second = LivePeer("second")
        slept = []
        try:
            assert first.register_with(server.address)
            assert (
                second.register_with(
                    server.address, retry_policy=POLICY, sleep=slept.append
                )
                is False
            )
            assert slept == []  # the server answered; no backoff happened
        finally:
            for thing in (first, second, server):
                thing.close()

    def test_healthy_registration_with_policy(self):
        server = LiveLigloServer()
        peer = LivePeer("healthy")
        try:
            assert peer.register_with(server.address, retry_policy=POLICY)
            assert peer.bpid.liglo_id == server.server_id
        finally:
            peer.close()
            server.close()
