"""End-to-end tests for LivePeer: real sockets, real agents."""

import time

import pytest

from repro.live import LivePeer


@pytest.fixture
def peers():
    created = []

    def make(name, **kwargs):
        peer = LivePeer(name, **kwargs)
        created.append(peer)
        return peer

    yield make
    for peer in created:
        peer.close()


def line_of(make, count):
    nodes = [make(f"live-{i}") for i in range(count)]
    for left, right in zip(nodes, nodes[1:]):
        left.connect_to(right)
    return nodes


class TestLiveQueries:
    def test_direct_peer_answers(self, peers):
        a, b = line_of(peers, 2)
        b.share(["jazz"], b"live payload")
        query = a.issue_query("jazz")
        assert query.wait_for_answers(1, timeout=5.0)
        assert query.answer_count == 1
        assert query.responders == {b.bpid}
        (answer,) = query.answers
        assert answer.items[0].payload == b"live payload"

    def test_multi_hop_flood_and_direct_return(self, peers):
        a, b, c, d = line_of(peers, 4)
        c.share(["jazz"], b"two hops away")
        d.share(["jazz"], b"three hops away")
        query = a.issue_query("jazz")
        assert query.wait_for_answers(2, timeout=5.0)
        assert query.responders == {c.bpid, d.bpid}
        hops = {answer.responder: answer.hops for answer in query.answers}
        assert hops[c.bpid] == 2
        assert hops[d.bpid] == 3

    def test_code_ships_once_per_destination(self, peers):
        a, b = line_of(peers, 2)
        b.share(["jazz"], b"x")
        first = a.issue_query("jazz")
        assert first.wait_for_answers(1, timeout=5.0)
        assert b.engine.registry.installs == 1
        second = a.issue_query("jazz")
        assert second.wait_for_answers(1, timeout=5.0)
        assert b.engine.registry.installs == 1  # cached class reused

    def test_ttl_limits_live_flood(self, peers):
        a, b, c = line_of(peers, 3)
        b.share(["k"], b"near")
        c.share(["k"], b"far")
        query = a.issue_query("k", ttl=1)
        assert query.wait_for_answers(1, timeout=5.0)
        time.sleep(0.2)  # give a (wrong) far answer time to arrive
        assert query.responders == {b.bpid}
        assert c.engine.agents_executed == 0

    def test_dedup_on_cycles(self, peers):
        a = peers("a")
        b = peers("b")
        c = peers("c")
        a.connect_to(b)
        b.connect_to(c)
        c.connect_to(a)
        b.share(["k"], b"1")
        c.share(["k"], b"2")
        query = a.issue_query("k")
        assert query.wait_for_answers(2, timeout=5.0)
        time.sleep(0.2)
        assert b.engine.agents_executed == 1
        assert c.engine.agents_executed == 1

    def test_dead_peer_does_not_break_query(self, peers):
        a = peers("a")
        b = peers("b")
        c = peers("c")
        a.connect_to(b)
        a.connect_to(c)
        c.share(["k"], b"alive")
        b.close()  # b is gone; sends to it must be swallowed
        query = a.issue_query("k")
        assert query.wait_for_answers(1, timeout=5.0)
        assert query.responders == {c.bpid}


class TestLiveReconfiguration:
    def test_answerers_become_direct_peers(self, peers):
        a, b, c, d = line_of(peers, 4)
        d.share(["jazz"], b"the far answer")
        query = a.issue_query("jazz")
        assert query.wait_for_answers(1, timeout=5.0)
        a.reconfigure(query)
        assert d.bpid in a.peer_bpids()
        # A follow-up query now reaches d in one hop.
        second = a.issue_query("jazz")
        assert second.wait_for_answers(1, timeout=5.0)
        hops = {ans.responder: ans.hops for ans in second.answers}
        assert hops[d.bpid] == 1

    def test_peer_cap_enforced(self, peers):
        a = peers("a", max_peers=1)
        b = peers("b")
        c = peers("c")
        a.connect_to(b)
        with pytest.raises(Exception):
            a.add_peer(c.bpid, c.address)


class TestLiveDiscovery:
    def test_discovery_reports_over_tcp(self, peers):
        import time

        a, b, c = line_of(peers, 3)
        b.share(["jazz"], b"x" * 100)
        c.share(["rock"], b"y" * 50)
        c.share(["rock"], b"z" * 50)
        a.discover()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and len(a.knowledge) < 2:
            time.sleep(0.02)
        assert len(a.knowledge) == 2
        report_c = a.knowledge.report_for(c.bpid)
        assert report_c.object_count == 2
        assert report_c.count_for("rock") == 2
        assert a.knowledge.best_providers(["rock"], k=1) == [c.bpid]


class TestLivePeerBasics:
    def test_context_manager(self):
        with LivePeer("ctx") as peer:
            assert peer.address[1] > 0
        # closed: port released, second close fine
        peer.close()

    def test_distinct_identities(self, peers):
        a, b = peers("a"), peers("b")
        assert a.bpid != b.bpid


class TestLiveBatchedAnswers:
    def test_batch_is_recorded_answer_by_answer(self, peers):
        """A remote sender may coalesce answers; the live node must
        record each one individually (batch-blind query accounting)."""
        from repro.agents.messages import AnswerItem, AnswerMessage, BatchedAnswers
        from repro.live.engine import PROTO_ANSWER
        from repro.storm.heapfile import RecordId

        a, b = line_of(peers, 2)
        query = a.issue_query("nothing-stored")
        answers = tuple(
            AnswerMessage(
                query_id=query.query_id,
                responder=b.bpid,
                responder_address=b.endpoint.address,
                hops=1,
                items=(
                    AnswerItem(
                        rid=RecordId(0, i), keywords=("k",), size=1, payload=b"x"
                    ),
                ),
            )
            for i in range(3)
        )
        b.endpoint.send(a.endpoint.address, PROTO_ANSWER, BatchedAnswers(answers))
        assert query.wait_for_answers(3, timeout=5.0)
        assert tuple(query.answers) == answers
