"""Churn against the live runtime: a fault plan driving real peers.

The simulator's churn experiment has a live twin here: a
:class:`LiveFaultShim` fires a seeded crash/restart timeline whose
handlers close and recreate actual :class:`LivePeer` processes while a
base peer keeps querying over real sockets.  The assertions mirror the
graceful-degradation contract — a query during the outage still
completes with the surviving peers' answers, and a query after the
restart sees the full answer set again.
"""

import threading
import time

import pytest

from repro.faults import FaultEvent, FaultPlan, LiveFaultShim
from repro.faults.plan import KIND_NODE_CRASH, KIND_NODE_RESTART
from repro.live import LivePeer


@pytest.fixture
def peers():
    created = []

    def make(name, **kwargs):
        peer = LivePeer(name, **kwargs)
        created.append(peer)
        return peer

    yield make
    for peer in created:
        peer.close()


class TestLiveChurn:
    def test_query_survives_crash_and_recovers_after_restart(self, peers):
        base = peers("churn-base")
        victim = peers("churn-victim")
        survivor = peers("churn-survivor")
        base.connect_to(victim)
        base.connect_to(survivor)
        victim.share_many([(["jazz"], b"from the victim")])
        survivor.share_many([(["jazz"], b"from the survivor")])

        crashed = threading.Event()
        may_restart = threading.Event()
        restarted = threading.Event()
        replacement: list[LivePeer] = []

        def on_crash(_event):
            victim.close()
            crashed.set()

        def on_restart(_event):
            # Hold the restart until the test has observed the outage,
            # so the degraded-query assertion cannot race the recovery.
            assert may_restart.wait(timeout=10.0)
            peer = peers("churn-victim-2")
            peer.connect_to(base)
            peer.share_many([(["jazz"], b"back from the dead")])
            replacement.append(peer)
            restarted.set()

        plan = FaultPlan(
            (
                FaultEvent(0.01, KIND_NODE_CRASH, "churn-victim"),
                FaultEvent(0.02, KIND_NODE_RESTART, "churn-victim"),
            )
        )
        shim = LiveFaultShim(plan)
        shim.on(KIND_NODE_CRASH, on_crash).on(KIND_NODE_RESTART, on_restart)

        # Before any fault: both peers answer.
        healthy = base.issue_query("jazz")
        assert healthy.wait_for_answers(2, timeout=5.0)
        assert healthy.responders == {victim.bpid, survivor.bpid}

        shim.start()
        assert crashed.wait(timeout=5.0)

        # During the outage: the query still completes, answered by the
        # survivor alone — sends to the dead peer are swallowed.
        degraded = base.issue_query("jazz")
        assert degraded.wait_for_answers(1, timeout=5.0)
        time.sleep(0.2)  # a late (impossible) victim answer would land here
        assert degraded.responders == {survivor.bpid}

        may_restart.set()
        assert restarted.wait(timeout=10.0)
        assert shim.wait(timeout=5.0)

        # After the restart: the replacement peer answers again.
        recovered = base.issue_query("jazz")
        assert recovered.wait_for_answers(2, timeout=5.0)
        assert recovered.responders == {survivor.bpid, replacement[0].bpid}
        assert shim.errors == []
        assert shim.fired == {KIND_NODE_CRASH: 1, KIND_NODE_RESTART: 1}
        shim.stop()
