"""Tests for the replication workload."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import ReplicationSpec


class TestReplicationSpec:
    def test_factor_one_is_no_replication(self):
        spec = ReplicationSpec(node_count=10, factor=1, distinct_objects=6)
        all_payloads = [p for i in range(10) for p in spec.objects_for(i)]
        assert len(all_payloads) == 6
        assert len(set(all_payloads)) == 6  # every object exactly once

    def test_each_object_has_factor_copies(self):
        spec = ReplicationSpec(node_count=10, factor=3, distinct_objects=4)
        all_payloads = [p for i in range(10) for p in spec.objects_for(i)]
        assert len(all_payloads) == spec.total_copies == 12
        for payload in set(all_payloads):
            assert all_payloads.count(payload) == 3

    def test_copies_of_one_object_on_distinct_nodes(self):
        spec = ReplicationSpec(node_count=8, factor=4, distinct_objects=3)
        for payload in {p for ps in spec.placements.values() for p in ps}:
            holders = [i for i in spec.placements if payload in spec.placements[i]]
            assert len(holders) == 4

    def test_base_never_holds_copies(self):
        spec = ReplicationSpec(node_count=6, factor=5, distinct_objects=10)
        assert spec.objects_for(0) == []
        assert 0 not in spec.holders

    def test_object_size(self):
        spec = ReplicationSpec(node_count=5, factor=2, object_size=256)
        payload = next(iter(spec.placements.values()))[0]
        assert len(payload) == 256

    def test_deterministic(self):
        a = ReplicationSpec(node_count=10, factor=3, seed=5)
        b = ReplicationSpec(node_count=10, factor=3, seed=5)
        assert a.placements == b.placements

    def test_impossible_factor(self):
        with pytest.raises(WorkloadError):
            ReplicationSpec(node_count=4, factor=4)  # only 3 eligible
        with pytest.raises(WorkloadError):
            ReplicationSpec(node_count=4, factor=0)

    def test_no_objects_rejected(self):
        with pytest.raises(WorkloadError):
            ReplicationSpec(node_count=4, factor=1, distinct_objects=0)

    @given(
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=50),
    )
    def test_total_copies_invariant(self, nodes, objects, seed):
        factor = max(1, (nodes - 1) // 2)
        spec = ReplicationSpec(
            node_count=nodes, factor=factor, distinct_objects=objects or 1, seed=seed
        )
        placed = sum(len(ps) for ps in spec.placements.values())
        assert placed == spec.total_copies
