"""Tests for workload generation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    AnswerPlacement,
    KeywordCorpus,
    QueryWorkload,
    generate_objects,
)


class TestKeywordCorpus:
    def test_deterministic_and_wrapping(self):
        corpus = KeywordCorpus(size=10)
        assert corpus.keyword(3) == corpus.keyword(13)
        assert len(set(corpus.keywords())) == 10

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            KeywordCorpus(size=0)


class TestGenerateObjects:
    def test_paper_workload_shape(self):
        """1000 objects, 1KB each, unique across nodes."""
        objects = generate_objects(node_index=3, count=1000, size=1024)
        assert len(objects) == 1000
        assert all(len(spec.payload) == 1024 for spec in objects)
        assert len({spec.payload for spec in objects}) == 1000

    def test_no_replication_across_nodes(self):
        node_a = generate_objects(0, count=50)
        node_b = generate_objects(1, count=50)
        payloads_a = {spec.payload for spec in node_a}
        payloads_b = {spec.payload for spec in node_b}
        assert payloads_a.isdisjoint(payloads_b)

    def test_deterministic(self):
        assert generate_objects(2, count=20) == generate_objects(2, count=20)

    def test_keywords_cycle_through_corpus(self):
        corpus = KeywordCorpus(size=10)
        objects = generate_objects(0, count=100, corpus=corpus)
        first_keywords = [spec.keywords[0] for spec in objects]
        for keyword in corpus.keywords():
            assert first_keywords.count(keyword) == 10

    def test_multi_keyword_objects(self):
        objects = generate_objects(0, count=10, keywords_per_object=3)
        assert all(1 <= len(spec.keywords) <= 3 for spec in objects)

    def test_size_too_small_for_header(self):
        with pytest.raises(WorkloadError):
            generate_objects(0, count=1, size=4)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_objects(0, count=-1)
        with pytest.raises(WorkloadError):
            generate_objects(0, count=1, size=0)


class TestAnswerPlacement:
    def test_holders_exclude_base(self):
        placement = AnswerPlacement(node_count=10, holder_count=3)
        assert 0 not in placement.holders
        assert len(placement.holders) == 3

    def test_deterministic(self):
        a = AnswerPlacement(node_count=10, holder_count=3, seed=7)
        b = AnswerPlacement(node_count=10, holder_count=3, seed=7)
        assert a.holders == b.holders

    def test_objects_only_at_holders(self):
        placement = AnswerPlacement(node_count=8, holder_count=2, answers_per_holder=4)
        total = 0
        for i in range(8):
            payloads = placement.objects_for(i)
            if placement.holds_answers(i):
                assert len(payloads) == 4
                total += len(payloads)
            else:
                assert payloads == []
        assert total == placement.total_answers == 8

    def test_object_sizes(self):
        placement = AnswerPlacement(node_count=5, holder_count=1)
        holder = next(iter(placement.holders))
        assert all(len(p) == 1024 for p in placement.objects_for(holder))

    def test_impossible_placement(self):
        with pytest.raises(WorkloadError):
            AnswerPlacement(node_count=3, holder_count=5)

    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=20),
    )
    def test_holder_count_always_respected(self, nodes, seed):
        holder_count = max(1, (nodes - 1) // 2)
        placement = AnswerPlacement(
            node_count=nodes, holder_count=holder_count, seed=seed
        )
        assert len(placement.holders) == holder_count
        assert all(0 < h < nodes for h in placement.holders)


class TestQueryWorkload:
    def test_uniform_deterministic(self):
        corpus = KeywordCorpus(size=20)
        a = QueryWorkload(corpus, seed=1).keywords(50)
        b = QueryWorkload(corpus, seed=1).keywords(50)
        assert a == b

    def test_zipf_concentrates_on_head(self):
        corpus = KeywordCorpus(size=50)
        skewed = QueryWorkload(corpus, skew=1.5, seed=0).keywords(500)
        head = corpus.keyword(0)
        tail = corpus.keyword(49)
        assert skewed.count(head) > skewed.count(tail)
        assert skewed.count(head) >= 25

    def test_keywords_come_from_corpus(self):
        corpus = KeywordCorpus(size=5)
        vocabulary = set(corpus.keywords())
        for skew in (0.0, 1.0):
            chosen = QueryWorkload(corpus, skew=skew, seed=3).keywords(40)
            assert set(chosen) <= vocabulary

    def test_validation(self):
        corpus = KeywordCorpus()
        with pytest.raises(WorkloadError):
            QueryWorkload(corpus, skew=-1.0)
        with pytest.raises(WorkloadError):
            QueryWorkload(corpus).keywords(-1)
